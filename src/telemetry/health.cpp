#include "telemetry/health.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::telemetry {

std::string_view to_string(HealthFn fn) noexcept {
  switch (fn) {
    case HealthFn::rate:
      return "rate";
    case HealthFn::value:
      return "value";
    case HealthFn::min:
      return "min";
    case HealthFn::mean:
      return "mean";
    case HealthFn::max:
      return "max";
    case HealthFn::p50:
      return "p50";
    case HealthFn::p99:
      return "p99";
    case HealthFn::p999:
      return "p999";
  }
  return "?";
}

std::string_view to_string(HealthCmp cmp) noexcept {
  switch (cmp) {
    case HealthCmp::gt:
      return ">";
    case HealthCmp::ge:
      return ">=";
    case HealthCmp::lt:
      return "<";
    case HealthCmp::le:
      return "<=";
  }
  return "?";
}

std::string_view to_string(AlertState state) noexcept {
  switch (state) {
    case AlertState::inactive:
      return "inactive";
    case AlertState::pending:
      return "pending";
    case AlertState::firing:
      return "firing";
    case AlertState::resolved:
      return "resolved";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

double HealthExpr::evaluate(const TimeSeriesStore& store) const {
  switch (kind) {
    case Kind::constant:
      return constant;
    case Kind::selector: {
      const double window =
          window_seconds > 0.0 ? window_seconds : store.config().tick_seconds;
      const std::optional<WindowAggregate> agg =
          store.aggregate(metric, filter, window);
      if (!agg) return 0.0;  // unsampled family: quietly zero, never NaN
      switch (fn) {
        case HealthFn::rate:
          return agg->rate;
        case HealthFn::value:
          return agg->last;
        case HealthFn::min:
          return agg->min;
        case HealthFn::mean:
          return agg->mean;
        case HealthFn::max:
          return agg->max;
        case HealthFn::p50:
          return static_cast<double>(agg->delta.quantile_upper_bound(0.50));
        case HealthFn::p99:
          return static_cast<double>(agg->delta.quantile_upper_bound(0.99));
        case HealthFn::p999:
          return static_cast<double>(agg->delta.quantile_upper_bound(0.999));
      }
      return 0.0;
    }
    case Kind::binary: {
      const double a = lhs->evaluate(store);
      const double b = rhs->evaluate(store);
      switch (op) {
        case '+':
          return a + b;
        case '-':
          return a - b;
        case '*':
          return a * b;
        case '/':
          return b == 0.0 ? 0.0 : a / b;  // 0/0 resolves, never latches NaN
      }
      return 0.0;
    }
  }
  return 0.0;
}

namespace {

std::string format_number(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string window_text(double seconds) {
  if (seconds >= 1.0 && seconds == static_cast<double>(
                                       static_cast<std::uint64_t>(seconds))) {
    return std::to_string(static_cast<std::uint64_t>(seconds)) + "s";
  }
  return std::to_string(static_cast<std::uint64_t>(seconds * 1000.0)) + "ms";
}

}  // namespace

std::string HealthExpr::to_text() const {
  switch (kind) {
    case Kind::constant:
      return format_number(constant);
    case Kind::selector: {
      std::string out(to_string(fn));
      out += '(';
      out += metric;
      if (!filter.empty()) {
        out += '{';
        for (std::size_t i = 0; i < filter.size(); ++i) {
          if (i != 0) out += ',';
          out += filter[i].first;
          out += "=\"";
          out += filter[i].second;
          out += '"';
        }
        out += '}';
      }
      if (fn != HealthFn::value) {
        out += '[';
        out += window_text(window_seconds);
        out += ']';
      }
      out += ')';
      return out;
    }
    case Kind::binary:
      return "(" + lhs->to_text() + " " + op + " " + rhs->to_text() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Rule parsing: a small hand-rolled lexer + recursive-descent parser.
// ---------------------------------------------------------------------------

namespace {

class RuleParser {
 public:
  RuleParser(std::string_view line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  HealthRule parse() {
    HealthRule rule;
    rule.name = expect_ident("rule name");
    expect(':');
    rule.expr = expr();
    rule.cmp = comparison();
    rule.threshold = expect_number("threshold");
    skip_ws();
    if (!at_end()) {
      const std::string kw = expect_ident("'for'");
      if (kw != "for") fail("expected 'for', got '" + kw + "'");
      const double n = expect_number("tick count");
      if (n < 1.0 || n != static_cast<double>(static_cast<std::uint32_t>(n))) {
        fail("'for' wants a positive integer tick count");
      }
      rule.for_ticks = static_cast<std::uint32_t>(n);
      skip_ws();
      if (!at_end()) {
        const std::string unit = expect_ident("'ticks'");
        if (unit != "ticks" && unit != "tick") {
          fail("expected 'ticks', got '" + unit + "'");
        }
      }
    }
    skip_ws();
    if (!at_end()) fail("trailing input after rule");
    return rule;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error(ErrorKind::semantic, "health rules line " +
                                         std::to_string(line_no_) + ": " +
                                         what);
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= line_.size();
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }
  bool accept(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void expect(char c) {
    if (!accept(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  // Identifiers are [A-Za-z_][A-Za-z0-9_]* — the ':' Prometheus allows in
  // metric names is reserved for the rule-name separator here, and no
  // opendesc_* family uses it.
  std::string expect_ident(const char* what) {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail(std::string("expected ") + what);
    return std::string(line_.substr(start, pos_ - start));
  }

  double expect_number(const char* what) {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isdigit(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '.' || line_[pos_] == 'e' || line_[pos_] == 'E' ||
            ((line_[pos_] == '+' || line_[pos_] == '-') && pos_ > start &&
             (line_[pos_ - 1] == 'e' || line_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) fail(std::string("expected ") + what);
    try {
      return std::stod(std::string(line_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail(std::string("malformed number for ") + what);
    }
  }

  HealthCmp comparison() {
    skip_ws();
    if (accept('>')) return accept('=') ? HealthCmp::ge : HealthCmp::gt;
    if (accept('<')) return accept('=') ? HealthCmp::le : HealthCmp::lt;
    fail("expected comparison (>, >=, <, <=)");
  }

  HealthExpr expr() {
    HealthExpr left = term();
    while (true) {
      const char c = peek();
      if (c != '+' && c != '-') return left;
      ++pos_;
      HealthExpr parent;
      parent.kind = HealthExpr::Kind::binary;
      parent.op = c;
      parent.lhs = std::make_unique<HealthExpr>(std::move(left));
      parent.rhs = std::make_unique<HealthExpr>(term());
      left = std::move(parent);
    }
  }

  HealthExpr term() {
    HealthExpr left = factor();
    while (true) {
      const char c = peek();
      if (c != '*' && c != '/') return left;
      ++pos_;
      HealthExpr parent;
      parent.kind = HealthExpr::Kind::binary;
      parent.op = c;
      parent.lhs = std::make_unique<HealthExpr>(std::move(left));
      parent.rhs = std::make_unique<HealthExpr>(factor());
      left = std::move(parent);
    }
  }

  HealthExpr factor() {
    const char c = peek();
    if (c == '(') {
      ++pos_;
      HealthExpr inner = expr();
      expect(')');
      return inner;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      HealthExpr node;
      node.kind = HealthExpr::Kind::constant;
      node.constant = expect_number("number");
      return node;
    }
    return selector_fn();
  }

  HealthExpr selector_fn() {
    const std::string fn_name = expect_ident("function name");
    HealthExpr node;
    node.kind = HealthExpr::Kind::selector;
    bool windowed = true;
    if (fn_name == "rate") {
      node.fn = HealthFn::rate;
    } else if (fn_name == "value") {
      node.fn = HealthFn::value;
      windowed = false;
    } else if (fn_name == "min") {
      node.fn = HealthFn::min;
    } else if (fn_name == "mean") {
      node.fn = HealthFn::mean;
    } else if (fn_name == "max") {
      node.fn = HealthFn::max;
    } else if (fn_name == "p50") {
      node.fn = HealthFn::p50;
    } else if (fn_name == "p99") {
      node.fn = HealthFn::p99;
    } else if (fn_name == "p999") {
      node.fn = HealthFn::p999;
    } else {
      fail("unknown function '" + fn_name +
           "' (expected rate, value, min, mean, max, p50, p99 or p999)");
    }
    expect('(');
    node.metric = expect_ident("metric name");
    if (accept('{')) {
      while (true) {
        const std::string key = expect_ident("label name");
        expect('=');
        expect('"');
        std::size_t start = pos_;
        while (pos_ < line_.size() && line_[pos_] != '"') ++pos_;
        if (pos_ >= line_.size()) fail("unterminated label value");
        node.filter.emplace_back(key,
                                 std::string(line_.substr(start, pos_ - start)));
        ++pos_;  // closing quote
        if (accept('}')) break;
        expect(',');
      }
    }
    if (windowed) {
      expect('[');
      skip_ws();
      std::size_t start = pos_;
      while (pos_ < line_.size() && line_[pos_] != ']') ++pos_;
      if (pos_ >= line_.size()) fail("unterminated window spec");
      std::string spec(line_.substr(start, pos_ - start));
      while (!spec.empty() &&
             std::isspace(static_cast<unsigned char>(spec.back())) != 0) {
        spec.pop_back();
      }
      ++pos_;  // ']'
      try {
        node.window_seconds = parse_window_seconds(spec);
      } catch (const Error& e) {
        fail(e.what());
      }
    }
    expect(')');
    return node;
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<HealthRule> parse_health_rules(std::string_view text) {
  std::vector<HealthRule> rules;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const bool blank =
        std::all_of(line.begin(), line.end(), [](char c) {
          return std::isspace(static_cast<unsigned char>(c)) != 0;
        });
    if (blank) continue;
    HealthRule rule = RuleParser(line, line_no).parse();
    for (const HealthRule& existing : rules) {
      if (existing.name == rule.name) {
        throw Error(ErrorKind::semantic,
                    "health rules line " + std::to_string(line_no) +
                        ": duplicate rule name '" + rule.name + "'");
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

// ---------------------------------------------------------------------------
// HealthEngine
// ---------------------------------------------------------------------------

HealthEngine::HealthEngine(std::vector<HealthRule> rules,
                           const TimeSeriesStore& store, Sink* sink)
    : store_(store), sink_(sink) {
  states_.reserve(rules.size());
  for (HealthRule& rule : rules) {
    RuleState state;
    state.expr_text = rule.expr.to_text();
    state.status.rule = rule.name;
    state.status.expr = state.expr_text;
    state.status.cmp = rule.cmp;
    state.status.threshold = rule.threshold;
    state.status.for_ticks = rule.for_ticks;
    if (sink_ != nullptr) {
      state.firing_gauge = &sink_->registry().gauge(
          "opendesc_alerts_firing",
          "1 while the named SLO rule is in the firing state.",
          {{"rule", rule.name}});
      state.firing_gauge->set(0.0);
      state.fired_counter = &sink_->registry().counter(
          "opendesc_alerts_fired_total",
          "Pending-to-firing transitions of the named SLO rule.",
          {{"rule", rule.name}});
    }
    state.rule = std::move(rule);
    states_.push_back(std::move(state));
  }
}

void HealthEngine::fire(RuleState& state) {
  state.status.fired_total += 1;
  if (state.fired_counter != nullptr) state.fired_counter->add(1);
  if (sink_ == nullptr) return;
  // Alert-triggered flight capture: the same forensic context a fault
  // incident gets.  Per-queue trace tails give the ordered lead-up; the
  // newest retained fault incident (if any) contributes the offending
  // record bytes the rule most plausibly fired on.
  FlightIncident incident;
  incident.cause = FlightCause::alert_fired;
  incident.detail = static_cast<std::uint8_t>(
      std::min<std::uint64_t>(state.status.fired_total, 0xFF));
  incident.sequence = evaluations_;
  incident.layout_id = "alert/" + state.rule.name;
  // Nearest sampled packet at firing time: the causal starting point for
  // "what was the datapath doing when this rule tripped".
  incident.trace_id = sink_->last_trace_id();
  const std::vector<FlightIncident> prior = sink_->flight().snapshot();
  for (auto it = prior.rbegin(); it != prior.rend(); ++it) {
    if (it->cause != FlightCause::alert_fired) {
      incident.queue = it->queue;
      incident.record = it->record;
      incident.frame_head = it->frame_head;
      if (it->trace_id != 0) {
        // The fault incident the rule most plausibly fired on is more
        // causal than "nearest sampled packet" — prefer its trace.
        incident.trace_id = it->trace_id;
      }
      break;
    }
  }
  const std::size_t queues = sink_->queues();
  const std::size_t per_queue = std::max<std::size_t>(
      1, sink_->flight().context_events() / std::max<std::size_t>(1, queues));
  for (std::size_t q = 0; q < queues; ++q) {
    const std::vector<TraceEvent> tail = sink_->ring(q).tail(per_queue);
    incident.recent.insert(incident.recent.end(), tail.begin(), tail.end());
  }
  state.status.capture_id = sink_->flight().record(std::move(incident));
}

void HealthEngine::evaluate() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t tick = evaluations_++;
  for (RuleState& state : states_) {
    const double value = state.rule.expr.evaluate(store_);
    state.status.value = value;
    bool condition = false;
    switch (state.rule.cmp) {
      case HealthCmp::gt:
        condition = value > state.rule.threshold;
        break;
      case HealthCmp::ge:
        condition = value >= state.rule.threshold;
        break;
      case HealthCmp::lt:
        condition = value < state.rule.threshold;
        break;
      case HealthCmp::le:
        condition = value <= state.rule.threshold;
        break;
    }
    AlertStatus& status = state.status;
    if (condition) {
      status.consecutive += 1;
      switch (status.state) {
        case AlertState::inactive:
        case AlertState::resolved:
          status.consecutive = 1;
          status.state = AlertState::pending;
          status.since_tick = tick;
          if (status.consecutive >= state.rule.for_ticks) {
            status.state = AlertState::firing;
            fire(state);
          }
          break;
        case AlertState::pending:
          if (status.consecutive >= state.rule.for_ticks) {
            status.state = AlertState::firing;
            status.since_tick = tick;
            fire(state);
          }
          break;
        case AlertState::firing:
          break;
      }
    } else {
      status.consecutive = 0;
      switch (status.state) {
        case AlertState::pending:
          status.state = AlertState::inactive;
          status.since_tick = tick;
          break;
        case AlertState::firing:
          status.state = AlertState::resolved;
          status.since_tick = tick;
          break;
        case AlertState::inactive:
        case AlertState::resolved:
          break;
      }
    }
    if (state.firing_gauge != nullptr) {
      state.firing_gauge->set(status.state == AlertState::firing ? 1.0 : 0.0);
    }
  }
}

std::uint64_t HealthEngine::evaluations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

std::size_t HealthEngine::firing() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(states_.begin(), states_.end(), [](const RuleState& s) {
        return s.status.state == AlertState::firing;
      }));
}

std::vector<AlertStatus> HealthEngine::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AlertStatus> out;
  out.reserve(states_.size());
  for (const RuleState& state : states_) {
    out.push_back(state.status);
  }
  return out;
}

std::string HealthEngine::to_json() const {
  std::vector<AlertStatus> alerts;
  std::uint64_t evaluations = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    evaluations = evaluations_;
    alerts.reserve(states_.size());
    for (const RuleState& state : states_) alerts.push_back(state.status);
  }
  std::size_t firing = 0;
  for (const AlertStatus& a : alerts) {
    if (a.state == AlertState::firing) ++firing;
  }
  std::ostringstream out;
  out << "{\"enabled\":true,\"evaluations\":" << evaluations
      << ",\"firing\":" << firing << ",\"rules\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const AlertStatus& a = alerts[i];
    out << (i == 0 ? "" : ",") << "{\"name\":\"" << escape_json(a.rule)
        << "\",\"expr\":\"" << escape_json(a.expr) << "\",\"cmp\":\""
        << to_string(a.cmp) << "\",\"threshold\":" << a.threshold
        << ",\"for_ticks\":" << a.for_ticks << ",\"state\":\""
        << to_string(a.state) << "\",\"value\":" << a.value
        << ",\"consecutive\":" << a.consecutive
        << ",\"fired_total\":" << a.fired_total
        << ",\"since_tick\":" << a.since_tick
        << ",\"flight_capture_id\":" << a.capture_id << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace opendesc::telemetry
