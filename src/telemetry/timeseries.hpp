// Windowed time-series layer over the instrument Registry.
//
// Counters, gauges and histograms answer "how much, ever"; operators need
// "how much, lately".  This layer adds the time axis without touching the
// datapath: a sampler thread snapshots the lock-free Registry on a fixed
// tick (default 100 ms) into bounded per-series rings, and rolling-window
// aggregates — rate for counters, min/mean/max for gauges, delta-merged
// quantiles for histograms — are computed on demand from the rings.
//
// Concurrency model, continuing the repo discipline that observability
// never blocks the datapath:
//   * The sampler reads instruments through their existing lock-free
//     snapshot paths (atomic loads, seqlock histogram shards).  The only
//     lock it takes is the Registry's registration mutex (to walk the
//     family table) and the store's own mutex — both off the per-packet
//     hot path by construction.
//   * TimeSeriesStore is mutex-protected: one writer (the sampler tick)
//     and any number of readers (the /timeseries route, the SLO rule
//     engine).  Datapath threads never touch it.
//   * Rings are bounded (default 600 ticks = 60 s at 100 ms); old samples
//     fall off the front, so a long-lived serve loop never grows memory.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace opendesc::telemetry {

/// Parses a window spec ("10s", "1s", "500ms", "2m") into seconds.
/// Throws Error(semantic) on malformed input.
[[nodiscard]] double parse_window_seconds(std::string_view spec);

struct TimeSeriesConfig {
  double tick_seconds = 0.1;   ///< sampling period the rings assume
  std::size_t capacity = 600;  ///< retained ticks per series (60 s default)
};

/// Rolling-window aggregate of one metric family (series summed per tick).
struct WindowAggregate {
  MetricKind kind = MetricKind::counter;
  std::size_t samples = 0;  ///< ticks the window actually covered
  double seconds = 0.0;     ///< wall span of those ticks
  double last = 0.0;        ///< newest summed raw value
  double rate = 0.0;        ///< counters: (newest - oldest) / seconds
  double min = 0.0;         ///< gauges: extrema/mean of the summed series
  double mean = 0.0;
  double max = 0.0;
  HistogramData delta;      ///< histograms: newest minus oldest snapshot
};

/// One series' view of the same window, for per-queue / per-stage detail.
struct SeriesWindow {
  Labels labels;
  std::size_t samples = 0;
  double seconds = 0.0;
  double last = 0.0;
  double rate = 0.0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  HistogramData delta;
};

struct FamilyWindow {
  std::string name;
  MetricKind kind = MetricKind::counter;
  std::vector<SeriesWindow> series;  ///< deterministic (label-sorted) order
  WindowAggregate total;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig config = {});
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Appends one tick: snapshots every registry series into its ring.
  /// Sampler-thread only (one logical writer).
  void sample(const Registry& registry);

  /// Ticks sampled so far.
  [[nodiscard]] std::uint64_t ticks() const;

  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    return config_;
  }

  /// Family names with at least one sampled series, sorted.
  [[nodiscard]] std::vector<std::string> metric_names() const;

  /// Summed-across-series window aggregate of one family; series whose
  /// labels do not contain every (key, value) of `filter` are skipped.
  /// nullopt when the family was never sampled (or nothing matches).
  [[nodiscard]] std::optional<WindowAggregate> aggregate(
      std::string_view metric, const Labels& filter,
      double window_seconds) const;

  /// Per-series windows plus the summed total for one family.
  [[nodiscard]] std::optional<FamilyWindow> family_window(
      std::string_view metric, double window_seconds) const;

 private:
  struct SeriesRing {
    Labels labels;
    std::deque<double> values;        ///< counter/gauge raw samples
    std::deque<HistogramData> hists;  ///< histogram snapshots
    std::deque<std::uint64_t> tick;   ///< tick index of each sample
  };
  struct FamilySlot {
    MetricKind kind = MetricKind::counter;
    std::map<std::string, SeriesRing> series;  ///< canonical labels → ring
  };

  [[nodiscard]] SeriesWindow series_window(const SeriesRing& ring,
                                           MetricKind kind,
                                           std::size_t window_ticks) const;

  TimeSeriesConfig config_;
  mutable std::mutex mutex_;
  std::uint64_t ticks_ = 0;
  std::map<std::string, FamilySlot, std::less<>> families_;
};

/// The background tick: a dedicated thread invoking one callback on a
/// fixed period until stopped.  The callback runs on the sampler thread —
/// typical wiring is live-publish, then TimeSeriesStore::sample(), then
/// HealthEngine::evaluate().  stop() (and the destructor) wake the thread
/// immediately rather than waiting out the period.
class Sampler {
 public:
  Sampler(std::function<void()> tick, std::chrono::milliseconds interval);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Spawns the tick thread.  Idempotent.
  void start();
  /// Joins the tick thread.  Idempotent; also run by the destructor.
  void stop();

  /// Callback invocations so far.
  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_acquire);
  }

 private:
  void loop();

  std::function<void()> tick_;
  std::chrono::milliseconds interval_;
  std::atomic<std::uint64_t> ticks_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace opendesc::telemetry
