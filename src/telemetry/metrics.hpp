// Telemetry instruments: counters, gauges and log-bucketed histograms.
//
// The repro's answer to "is the NIC contract actually paying off" starts
// here: every layer (compiler, hardened rx loop, multi-queue engine, control
// channel) records into these instruments, and telemetry::Exporter renders
// one registry as a Prometheus/JSON scrape.
//
// Concurrency model, chosen for a zero-lock hot path:
//  * Counter / Gauge are single atomic words — add() is a relaxed fetch_add
//    any thread may issue; store() publishes a precomputed total from the
//    one thread that owns the series (how per-queue run totals land).
//  * Histogram is sharded: each shard has exactly one writer (an engine
//    worker observes its own shard) and publishes through the same
//    epoch-seqlock protocol as engine::StatsRegistry — writers never wait on
//    readers, readers retry until they hold an epoch-consistent copy, and a
//    snapshot is always something the writer actually published.  Shard
//    merge is plain HistogramData addition, which is associative and
//    commutative, so any merge order over any sharding reproduces the same
//    totals (tested).
//  * Registry registration takes a mutex; the hot path never registers —
//    components resolve instrument references once at setup.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace opendesc::telemetry {

/// Sorted (key, value) label pairs identifying one series of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.
class Counter {
 public:
  /// Relaxed increment; safe from any thread.
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Publishes a precomputed running total (single-writer series only —
  /// how per-queue totals are exposed without double counting).
  void store(std::uint64_t total) noexcept {
    value_.store(total, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_release);
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Power-of-two ("log") histogram buckets: bucket 0 holds zeros, bucket i
/// (i >= 1) holds values whose bit width is i, i.e. 2^(i-1) <= v <= 2^i - 1.
/// 40 buckets cover 1 ns .. ~550 s of latency with ~2x resolution.
inline constexpr std::size_t kHistogramBuckets = 40;

/// The bucket a value lands in.
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t v) noexcept {
  return v == 0 ? 0
               : std::min<std::size_t>(kHistogramBuckets - 1,
                                       std::bit_width(v));
}

/// Inclusive upper bound of bucket i; the last bucket is unbounded (+Inf).
[[nodiscard]] constexpr std::uint64_t histogram_upper_bound(
    std::size_t bucket) noexcept {
  return bucket == 0 ? 0 : (std::uint64_t{1} << bucket) - 1;
}

/// One histogram's totals — plain data, so merging shards (or merging
/// snapshots from different runs) is ordinary addition.
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  HistogramData& operator+=(const HistogramData& other) noexcept;
  /// Element-wise difference; `other` must be a prefix of this history
  /// (same shards, observed earlier), as when diffing before/after a run.
  HistogramData& operator-=(const HistogramData& other) noexcept;

  /// Upper bound of the smallest bucket at which the cumulative count
  /// reaches q * count (0 when empty) — a conservative quantile estimate.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

[[nodiscard]] inline HistogramData operator+(HistogramData lhs,
                                             const HistogramData& rhs) noexcept {
  lhs += rhs;
  return lhs;
}

/// Sharded log-bucketed histogram.  shard(i).observe() must only be called
/// from the single thread owning shard i; snapshot() may run concurrently
/// from any thread.
class Histogram {
 public:
  /// One single-writer shard, published via the epoch seqlock: the writer
  /// flips the epoch odd, stores the payload words, flips it even; readers
  /// retry until they see a stable even epoch on both sides of the copy.
  class Shard {
   public:
    void observe(std::uint64_t value) noexcept;
    [[nodiscard]] HistogramData snapshot() const noexcept;

    Shard() = default;
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

   private:
    HistogramData local_{};  ///< writer-private running totals
    std::atomic<std::uint64_t> epoch_{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets + 2> words_{};
  };

  explicit Histogram(std::size_t shards);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] Shard& shard(std::size_t i) { return *shards_.at(i); }
  [[nodiscard]] HistogramData shard_snapshot(std::size_t i) const {
    return shards_.at(i)->snapshot();
  }
  /// Lock-free merge of every shard's epoch-consistent snapshot.
  [[nodiscard]] HistogramData snapshot() const;

  /// One OpenMetrics exemplar: the trace id of a sampled observation that
  /// landed in a bucket, plus the observed value — the link from a /metrics
  /// bucket line to a /spans trace.
  struct Exemplar {
    std::uint64_t trace_id = 0;
    double value = 0.0;
  };

  /// Attaches `trace_id` as the exemplar of the bucket `value` lands in.
  /// Safe from any thread: slots are guarded by a per-bucket mini-seqlock,
  /// and a writer that finds the slot mid-store skips — exemplars are
  /// best-effort samples, never accounting.
  void record_exemplar(std::uint64_t value, std::uint64_t trace_id) noexcept;
  /// The bucket's current exemplar, when a consistent one is readable.
  [[nodiscard]] std::optional<Exemplar> exemplar(
      std::size_t bucket) const noexcept;

 private:
  struct ExemplarSlot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> bits{0};  ///< bit_cast observed value
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;
};

/// What a family measures.
enum class MetricKind : std::uint8_t { counter, gauge, histogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// Hierarchical instrument registry.  Families are keyed by metric name
/// (Prometheus grammar: [a-zA-Z_:][a-zA-Z0-9_:]*); each family holds one
/// series per distinct label set.  Registration is idempotent — asking for
/// an existing (name, labels) pair returns the same instrument — and
/// mismatched kinds are rejected.  Registration locks; reads never do.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  /// `shards` only matters on first registration of the series.
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {}, std::size_t shards = 1);

  /// One series of a family, for exposition.  Exactly one instrument
  /// pointer is non-null, matching the family kind.
  struct Series {
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::counter;
    std::vector<Series> series;  ///< sorted by label set
  };

  /// Stable-order copy of the registry structure (instrument pointers stay
  /// valid for the registry's lifetime); values are read through the
  /// instruments at exposition time.
  [[nodiscard]] std::vector<Family> families() const;

 private:
  struct FamilySlot {
    std::string help;
    MetricKind kind;
    // Label-key -> instrument index into the matching storage deque.
    std::map<std::string, std::size_t> series;
    std::map<std::string, Labels> series_labels;
  };

  [[nodiscard]] FamilySlot& family_slot(std::string_view name,
                                        std::string_view help,
                                        MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, FamilySlot, std::less<>> families_;
  // Instrument storage: deques never relocate elements, so references
  // handed to the hot path stay valid as the registry grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<std::unique_ptr<Histogram>> histograms_;
};

/// Canonical text form of a label set ('k1="v1",k2="v2"'), used as the
/// series key; also what sorts series deterministically in expositions.
[[nodiscard]] std::string canonical_labels(const Labels& labels);

/// Sorts by key and validates names; throws Error(semantic) on duplicate or
/// malformed label names.
[[nodiscard]] Labels normalize_labels(Labels labels);

}  // namespace opendesc::telemetry
