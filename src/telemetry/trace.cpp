#include "telemetry/trace.hpp"

namespace opendesc::telemetry {

std::string_view to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::record_validated:
      return "record_validated";
    case TraceEventType::record_quarantined:
      return "record_quarantined";
    case TraceEventType::softnic_fallback:
      return "softnic_fallback";
    case TraceEventType::completion_lost:
      return "completion_lost";
    case TraceEventType::rx_rejected:
      return "rx_rejected";
    case TraceEventType::queue_handoff:
      return "queue_handoff";
    case TraceEventType::ctrl_retry:
      return "ctrl_retry";
    case TraceEventType::ctrl_programmed:
      return "ctrl_programmed";
    case TraceEventType::run_started:
      return "run_started";
    case TraceEventType::run_finished:
      return "run_finished";
  }
  return "?";
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = recorded_ - n;
  for (std::uint64_t i = first; i < recorded_; ++i) {
    out.push_back(buffer_[static_cast<std::size_t>(i % buffer_.size())]);
  }
  return out;
}

}  // namespace opendesc::telemetry
