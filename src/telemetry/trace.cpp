#include "telemetry/trace.hpp"

#include <algorithm>

namespace opendesc::telemetry {

std::string_view to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::record_validated:
      return "record_validated";
    case TraceEventType::record_quarantined:
      return "record_quarantined";
    case TraceEventType::softnic_fallback:
      return "softnic_fallback";
    case TraceEventType::completion_lost:
      return "completion_lost";
    case TraceEventType::rx_rejected:
      return "rx_rejected";
    case TraceEventType::queue_handoff:
      return "queue_handoff";
    case TraceEventType::ctrl_retry:
      return "ctrl_retry";
    case TraceEventType::ctrl_programmed:
      return "ctrl_programmed";
    case TraceEventType::run_started:
      return "run_started";
    case TraceEventType::run_finished:
      return "run_finished";
    case TraceEventType::layout_cutover:
      return "layout_cutover";
  }
  return "?";
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  // Lock-free window copy.  The acquire load of the completion cursor makes
  // every slot below it visible; after the copy, the started-write cursor
  // bounds what the writer may have begun overwriting meanwhile: a write to
  // event j reuses the slot of event j - capacity, so every copied index
  // below writing - capacity is untrustworthy and discarded.  The acquire
  // slot loads pair with record()'s release slot stores: if the copy
  // observed any word of an in-progress write, the started-write cursor
  // load below (ordered after the acquires) observes its advance.  A
  // quiesced writer (writing == end) costs nothing — the full window stays.
  const std::uint64_t end = recorded_.load(std::memory_order_acquire);
  const std::uint64_t base = base_.load(std::memory_order_acquire);
  const std::uint64_t retained =
      std::min<std::uint64_t>(end - base, buffer_.size());
  const std::uint64_t first = end - retained;

  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = first; i < end; ++i) {
    const Slot& slot = buffer_[static_cast<std::size_t>(i) & mask_];
    out.push_back(unpack(slot.head.load(std::memory_order_acquire),
                         slot.sequence.load(std::memory_order_acquire)));
  }

  const std::uint64_t writing = writing_.load(std::memory_order_acquire);
  const std::uint64_t overwritten_below =
      writing > buffer_.size() ? writing - buffer_.size() : 0;
  if (overwritten_below > first) {
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(std::min<std::uint64_t>(
                                overwritten_below - first, out.size())));
  }
  return out;
}

std::vector<TraceEvent> TraceRing::tail(std::size_t n) const {
  std::vector<TraceEvent> events = snapshot();
  if (events.size() > n) {
    events.erase(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(
                                                      events.size() - n));
  }
  return events;
}

}  // namespace opendesc::telemetry
