// The observability plane: one embedded HTTP server over one telemetry
// Sink.
//
// Routes (GET/HEAD, one request per connection):
//
//   /metrics       Prometheus text 0.0.4 exposition of the sink registry
//   /metrics.json  the same registry as JSON
//   /healthz       liveness: 200 as long as the server thread serves
//   /readyz        readiness: 200 only when the injected probe says the
//                  engine is running and every queue is making progress
//                  (503 otherwise; no probe = always ready)
//   /traces        trace-ring snapshots as JSON; ?queue=N picks worker
//                  ring N, ?queue=dispatch / ?queue=ctrl the special rings,
//                  no parameter returns every ring
//   /flight        the fault flight recorder's postmortem buffer as JSON
//   /alerts        SLO rule engine status as JSON (every rule's state,
//                  value, threshold, flight-capture id); {"enabled":false}
//                  when no health engine is attached
//   /timeseries    windowed aggregates: ?metric=NAME&window=10s returns
//                  per-series rate/min/mean/max/quantiles over the window
//                  (&format=tsv for a flat tab-separated rendering); no
//                  parameters lists the sampled families
//   /layout        layout-epoch status: current epoch, swap history and
//                  per-epoch provenance accounting as JSON (?format=tsv
//                  for the `opendesc top` pane form); {"enabled":false}
//                  when no epoch manager is attached
//   /flows         per-tenant flow-table status: active flows, inserts,
//                  evictions, hit rate, memory per flow (?format=tsv for
//                  the `opendesc top` pane form); {"enabled":false} when
//                  no provider is attached
//
// Unknown routes answer a structured JSON 404 ({"error":..,"path":..,
// "routes":[..]}); HEAD is answered with headers only at the http layer.
//
// Everything served is read through the sink's lock-free snapshot
// machinery (seqlock shards, atomic ring slots, the flight recorder's own
// fault-path mutex), so a scrape — even a slow or hostile one — never
// blocks a datapath thread.
#pragma once

#include <functional>
#include <string>

#include "http/server.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::telemetry {

class HealthEngine;
class TimeSeriesStore;

class ObservabilityServer {
 public:
  /// Readiness probe: return true when the datapath is live and making
  /// progress.  Called on a server worker thread, so it must only read
  /// lock-free state.
  using ReadyProbe = std::function<bool()>;

  /// Binds immediately (port 0 = ephemeral; Error(io) on failure), serves
  /// after start().  `sink` must outlive the server.
  explicit ObservabilityServer(Sink& sink, http::ServerConfig config = {});

  /// Installs (or clears, with nullptr) the /readyz probe.  Not
  /// synchronized with serving — install before start().
  void set_ready_probe(ReadyProbe probe) { ready_ = std::move(probe); }

  /// Attaches the /timeseries backing store (nullptr = route answers 404
  /// JSON explaining the monitor is off).  Install before start().
  void set_timeseries(const TimeSeriesStore* store) { store_ = store; }
  /// Attaches the /alerts rule engine (nullptr = {"enabled":false}).
  /// Install before start().
  void set_health(const HealthEngine* health) { health_ = health; }
  /// Attaches the /layout provider: `provider(tsv)` renders the layout
  /// epoch status (JSON, or the flat TSV pane when tsv is true).  No
  /// provider = {"enabled":false}.  Install before start().
  using LayoutProvider = std::function<std::string(bool tsv)>;
  void set_layout(LayoutProvider provider) { layout_ = std::move(provider); }
  /// Attaches the /flows provider: `provider(tsv)` renders the flow-table
  /// status per tenant (JSON, or the flat TSV pane when tsv is true).  No
  /// provider = {"enabled":false}.  Install before start().
  using FlowsProvider = std::function<std::string(bool tsv)>;
  void set_flows(FlowsProvider provider) { flows_ = std::move(provider); }

  void start() { server_.start(); }
  void stop() { server_.stop(); }

  [[nodiscard]] const std::string& address() const noexcept {
    return server_.address();
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] std::string url() const { return server_.url(); }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return server_.requests_served();
  }

  /// The route table, exposed directly so tests can exercise routing
  /// without sockets.
  [[nodiscard]] http::Response handle(const http::Request& request);

 private:
  [[nodiscard]] http::Response traces(const http::Request& request);
  [[nodiscard]] http::Response timeseries(const http::Request& request);

  Sink* sink_;
  ReadyProbe ready_;
  const TimeSeriesStore* store_ = nullptr;
  const HealthEngine* health_ = nullptr;
  LayoutProvider layout_;
  FlowsProvider flows_;
  http::HttpServer server_;
};

/// One trace-ring snapshot as a JSON object ({"ring":name,"recorded":...,
/// "dropped":...,"events":[...]}) — the /traces building block, also used
/// by the CLI's trace dump.
[[nodiscard]] std::string trace_ring_json(const TraceRing& ring,
                                          std::string_view name);

}  // namespace opendesc::telemetry
