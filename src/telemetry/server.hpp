// The observability plane: one embedded HTTP server over one telemetry
// Sink, with every route declared on a http::Router table.
//
// Routes (HTTP/1.1 keep-alive, served by the epoll event loop):
//
//   GET /metrics       Prometheus text 0.0.4 exposition of the sink
//                      registry, streamed family by family (chunked)
//   GET /metrics.json  the same registry as JSON, streamed the same way
//   GET /healthz       liveness: 200 as long as the server thread serves
//   GET /readyz        readiness: 200 only when the injected probe says the
//                      engine is running and every queue is making progress
//                      (503 otherwise; no probe = always ready)
//   GET /traces        trace-ring snapshots as JSON; ?queue=N picks worker
//                      ring N, ?queue=dispatch / ?queue=ctrl the special
//                      rings, no parameter returns every ring
//   GET /flight        the fault flight recorder's postmortem buffer as JSON
//   GET /alerts        SLO rule engine status as JSON (every rule's state,
//                      value, threshold, flight-capture id); {"enabled":
//                      false} when no health engine is attached
//   GET /events        live server-sent events: one "hello" on connect,
//                      then an "alert" event per firing/resolved rule
//                      transition (?max=N closes after N alerts — tests)
//   GET /timeseries    windowed aggregates: ?metric=NAME&window=10s returns
//                      per-series rate/min/mean/max/quantiles over the
//                      window (&format=tsv flat rendering; no parameters
//                      lists the sampled families).  ?follow turns the
//                      response into a live SSE stream with one "tick"
//                      event per sampler tick (?count=N closes after N)
//   GET /layout        layout-epoch status: current epoch, swap history and
//                      per-epoch provenance accounting as JSON (?format=tsv
//                      for the `opendesc top` pane form); {"enabled":false}
//                      when no epoch manager is attached
//   POST /layout       queue a live layout swap on the serving engine.
//                      Guarded by a shared-secret bearer token: 403 when
//                      swaps are not enabled, 401 on a bad token, 202 with
//                      the queued swap otherwise
//   GET /flows         per-tenant flow-table status (?format=tsv for the
//                      `opendesc top` pane; ?records=N|all streams the
//                      flow records themselves page by page);
//                      {"enabled":false} when no provider is attached
//   GET /profile       hot-path profiler capture.  ?seconds=0 (default)
//                      answers the cumulative per-stage cycle accounting
//                      immediately; ?seconds=N baselines, waits N seconds
//                      on the event loop and streams the windowed delta.
//                      ?format=json (default) | collapsed (flamegraph.pl
//                      stacks) | speedscope | tsv (`opendesc top` pane)
//   GET /spans         sampled descriptor-lifecycle traces (causal packet
//                      tracing).  ?format=json (default) | otlp (OTLP/JSON,
//                      POSTable to an OpenTelemetry collector's /v1/traces)
//                      | perfetto (Chrome trace-event JSON).  ?limit=N
//                      keeps only the newest N traces; ?follow turns the
//                      response into a live SSE stream with one "spans"
//                      event per batch of newly recorded spans (?count=N
//                      closes after N events — tests)
//   GET /buildinfo     configure-time build provenance (git sha, compiler,
//                      build type, sanitizer) as JSON
//
// The server also instruments itself into the sink registry:
// opendesc_http_requests_total{route,code}, the
// opendesc_http_connections gauge and the
// opendesc_http_request_duration_ns histogram — scraping /metrics
// observes the scrape plane too.
//
// Unknown paths answer the Router's structured JSON 404 (carrying the full
// route list); a known path with an unregistered method answers 405 with
// an Allow header.  HEAD is served by the GET handlers (the http layer
// strips the body).
//
// Everything served is read through the sink's lock-free snapshot
// machinery (seqlock shards, atomic ring slots, the flight recorder's own
// fault-path mutex), so a scrape — even a slow or hostile one — never
// blocks a datapath thread.
#pragma once

#include <functional>
#include <mutex>
#include <string>

#include "http/server.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::telemetry {

class HealthEngine;
class TimeSeriesStore;
struct FamilyWindow;

class ObservabilityServer {
 public:
  /// Readiness probe: return true when the datapath is live and making
  /// progress.  Called on a server worker thread, so it must only read
  /// lock-free state.
  using ReadyProbe = std::function<bool()>;

  /// Binds immediately (port 0 = ephemeral; Error(io) on failure), serves
  /// after start().  `sink` must outlive the server.
  explicit ObservabilityServer(Sink& sink, http::ServerConfig config = {});

  /// Installs (or clears, with nullptr) the /readyz probe.  Not
  /// synchronized with serving — install before start().
  void set_ready_probe(ReadyProbe probe) { ready_ = std::move(probe); }

  /// Attaches the /timeseries backing store (nullptr = route answers 404
  /// JSON explaining the monitor is off).  Install before start().
  void set_timeseries(const TimeSeriesStore* store) { store_ = store; }
  /// Attaches the /alerts and /events rule engine (nullptr =
  /// {"enabled":false}).  Install before start().
  void set_health(const HealthEngine* health) { health_ = health; }
  /// Attaches the /layout provider: `provider(tsv)` renders the layout
  /// epoch status (JSON, or the flat TSV pane when tsv is true).  No
  /// provider = {"enabled":false}.  Install before start().
  using LayoutProvider = std::function<std::string(bool tsv)>;
  void set_layout(LayoutProvider provider) { layout_ = std::move(provider); }
  /// Attaches the /flows provider: `provider(tsv)` renders the flow-table
  /// status per tenant (JSON, or the flat TSV pane when tsv is true).  No
  /// provider = {"enabled":false}.  Install before start().
  using FlowsProvider = std::function<std::string(bool tsv)>;
  void set_flows(FlowsProvider provider) { flows_ = std::move(provider); }
  /// Optional richer /flows JSON provider (takes the whole request so it
  /// can honour ?records=N and stream pages).  When set it serves every
  /// non-TSV /flows request; set_flows stays the TSV pane source.
  using FlowsJsonProvider = std::function<http::Response(const http::Request&)>;
  void set_flows_json(FlowsJsonProvider provider) {
    flows_json_ = std::move(provider);
  }
  /// Enables POST /layout: `handler` runs an authenticated swap request
  /// (normally MultiQueueEngine::swap_from_request); `token` is the shared
  /// secret required as "Authorization: Bearer <token>".  Install before
  /// start().
  using SwapHandler = std::function<http::Response(const http::Request&)>;
  void set_swap(SwapHandler handler, std::string token) {
    swap_ = std::move(handler);
    swap_token_ = std::move(token);
  }
  /// Tenant label stamped on every /spans export (the engine's serving
  /// tenant).  Install before start().
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }

  void start() { server_.start(); }
  void stop() { server_.stop(); }

  [[nodiscard]] const std::string& address() const noexcept {
    return server_.address();
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] std::string url() const { return server_.url(); }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return server_.requests_served();
  }
  /// Currently-open client connections (the scrape-storm bench reads this).
  [[nodiscard]] std::size_t connections() const noexcept {
    return server_.connections();
  }

  /// Dispatches through the route table directly, so tests can exercise
  /// routing without sockets.
  [[nodiscard]] http::Response handle(const http::Request& request) {
    return server_.router().dispatch(request);
  }

 private:
  [[nodiscard]] http::Router build_router();
  [[nodiscard]] http::Response metrics(bool json);
  [[nodiscard]] http::Response alerts(const http::Request& request);
  [[nodiscard]] http::Response events(const http::Request& request);
  [[nodiscard]] http::Response traces(const http::Request& request);
  [[nodiscard]] http::Response timeseries(const http::Request& request);
  [[nodiscard]] http::Response timeseries_follow(const http::Request& request);
  [[nodiscard]] http::Response layout_status(const http::Request& request);
  [[nodiscard]] http::Response post_layout(const http::Request& request);
  [[nodiscard]] http::Response flows(const http::Request& request);
  [[nodiscard]] http::Response profile(const http::Request& request);
  [[nodiscard]] http::Response spans(const http::Request& request);
  [[nodiscard]] http::Response spans_follow(const http::Request& request);
  /// Registers the server's own request/connection series in the sink
  /// registry and installs the per-request hook that feeds them.
  void install_http_metrics();
  /// The non-TSV /timeseries?metric=... JSON body — shared by the one-shot
  /// response and the ?follow tick events.
  [[nodiscard]] std::string family_window_json(const FamilyWindow& family,
                                               double window_seconds) const;

  Sink* sink_;
  ReadyProbe ready_;
  const TimeSeriesStore* store_ = nullptr;
  const HealthEngine* health_ = nullptr;
  LayoutProvider layout_;
  FlowsProvider flows_;
  FlowsJsonProvider flows_json_;
  SwapHandler swap_;
  std::string swap_token_;
  std::string tenant_ = "default";
  /// Self-instrumentation: the duration histogram is single-writer per
  /// shard, and the hook runs on several event-loop workers, so a small
  /// mutex serializes the observe (the scrape plane is not a hot path).
  Gauge* http_connections_ = nullptr;
  Histogram* http_latency_ = nullptr;
  std::mutex http_metrics_mutex_;
  http::HttpServer server_;
};

/// One trace-ring snapshot as a JSON object ({"ring":name,"recorded":...,
/// "dropped":...,"events":[...]}) — the /traces building block, also used
/// by the CLI's trace dump.
[[nodiscard]] std::string trace_ring_json(const TraceRing& ring,
                                          std::string_view name);

}  // namespace opendesc::telemetry
