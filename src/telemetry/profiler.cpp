#include "telemetry/profiler.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "telemetry/metrics.hpp"

namespace opendesc::telemetry {

std::string_view to_string(ProfileStage stage) noexcept {
  switch (stage) {
    case ProfileStage::steer:
      return "steer";
    case ProfileStage::flow_classify:
      return "flow_classify";
    case ProfileStage::ring:
      return "ring";
    case ProfileStage::validate:
      return "validate";
    case ProfileStage::consume:
      return "consume";
    case ProfileStage::handoff:
      return "handoff";
    case ProfileStage::swap_barrier:
      return "swap_barrier";
    case ProfileStage::wait:
      return "wait";
  }
  return "?";
}

// --- Clock ------------------------------------------------------------------

namespace {

double steady_now_ns() noexcept {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__) || defined(__i386__)
struct TscCalibration {
  bool usable = false;
  double ns_per_tick = 1.0;
};

TscCalibration calibrate_tsc() noexcept {
  // Pair the clocks at both ends of a ~200us steady_clock window; invariant
  // TSC (every x86 this code will meet) makes the ratio stable thereafter.
  const double t0 = steady_now_ns();
  const std::uint64_t c0 = __builtin_ia32_rdtsc();
  while (steady_now_ns() - t0 < 200000.0) {
  }
  const std::uint64_t c1 = __builtin_ia32_rdtsc();
  const double t1 = steady_now_ns();
  if (c1 > c0 && t1 > t0) {
    return {true, (t1 - t0) / static_cast<double>(c1 - c0)};
  }
  return {};
}
#endif

double measure_clock_pair_cost() noexcept {
  constexpr int kPairs = 512;
  double sink = 0.0;
  const double t0 = profile_now_ns();
  for (int i = 0; i < kPairs; ++i) {
    sink += profile_now_ns();
  }
  const double elapsed = profile_now_ns() - t0;
  (void)sink;
  // Each recorded span costs two reads; the loop above did one per
  // iteration, so a pair costs twice the per-read average (floored so the
  // tuner never divides by zero).
  return std::max(1.0, 2.0 * elapsed / kPairs);
}

}  // namespace

double profile_now_ns() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const TscCalibration cal = calibrate_tsc();
  if (cal.usable) {
    return static_cast<double>(__builtin_ia32_rdtsc()) * cal.ns_per_tick;
  }
#endif
  return steady_now_ns();
}

double profile_clock_pair_cost_ns() noexcept {
  static const double cost = measure_clock_pair_cost();
  return cost;
}

// --- ProfileData ------------------------------------------------------------

ProfileData& ProfileData::operator+=(const ProfileData& other) noexcept {
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    stage_ns[s] += other.stage_ns[s];
  }
  loop_ns += other.loop_ns;
  batches += other.batches;
  sampled_batches += other.sampled_batches;
  packets += other.packets;
  sampled_packets += other.sampled_packets;
  stride = std::max(stride, other.stride);
  return *this;
}

ProfileData& ProfileData::operator-=(const ProfileData& base) noexcept {
  const auto sub_u64 = [](std::uint64_t& field, std::uint64_t prev) {
    field = field >= prev ? field - prev : 0;
  };
  const auto sub_ns = [](double& field, double prev) {
    field = field >= prev ? field - prev : 0.0;
  };
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    sub_ns(stage_ns[s], base.stage_ns[s]);
  }
  sub_ns(loop_ns, base.loop_ns);
  sub_u64(batches, base.batches);
  sub_u64(sampled_batches, base.sampled_batches);
  sub_u64(packets, base.packets);
  sub_u64(sampled_packets, base.sampled_packets);
  return *this;
}

std::array<std::uint64_t, kProfileWords> encode_profile(
    const ProfileData& data) noexcept {
  std::array<std::uint64_t, kProfileWords> words{};
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    words[s] = std::bit_cast<std::uint64_t>(data.stage_ns[s]);
  }
  words[kProfileStageCount] = std::bit_cast<std::uint64_t>(data.loop_ns);
  words[kProfileStageCount + 1] = data.batches;
  words[kProfileStageCount + 2] = data.sampled_batches;
  words[kProfileStageCount + 3] = data.packets;
  words[kProfileStageCount + 4] = data.sampled_packets;
  words[kProfileStageCount + 5] = data.stride;
  return words;
}

ProfileData decode_profile(
    const std::array<std::uint64_t, kProfileWords>& words) noexcept {
  ProfileData data;
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    data.stage_ns[s] = std::bit_cast<double>(words[s]);
  }
  data.loop_ns = std::bit_cast<double>(words[kProfileStageCount]);
  data.batches = words[kProfileStageCount + 1];
  data.sampled_batches = words[kProfileStageCount + 2];
  data.packets = words[kProfileStageCount + 3];
  data.sampled_packets = words[kProfileStageCount + 4];
  data.stride = words[kProfileStageCount + 5];
  return data;
}

// --- ProfileShard -----------------------------------------------------------

bool ProfileShard::batch_begin(bool force) noexcept {
  if (owner_ != nullptr) {
    const std::uint64_t override_stride = owner_->stride_override();
    if (override_stride != 0) {
      stride_ = std::clamp<std::uint64_t>(override_stride, 1, 1024);
    }
  }
  records_in_batch_ = 0;
  batch_loop_base_ = pending_.loop_ns;
  if (force) {
    sampling_ = true;
    since_sample_ = 0;
    return true;
  }
  if (++since_sample_ >= stride_) {
    since_sample_ = 0;
    sampling_ = true;
  } else {
    sampling_ = false;
  }
  return sampling_;
}

void ProfileShard::batch_end(std::uint64_t packets) noexcept {
  ++pending_.batches;
  ++pending_.sampled_batches;
  pending_.packets += packets;
  pending_.sampled_packets += packets;
  const bool auto_tune = owner_ == nullptr || owner_->stride_override() == 0;
  if (auto_tune && records_in_batch_ > 0) {
    // One sampled batch paid (records + begin/end) clock pairs; that cost is
    // amortized over stride_ batches of this much work.  Double the stride
    // while the measured fraction exceeds the target, shrink it when the
    // fraction has fallen far below — K settles where overhead ~ target.
    const double work = pending_.loop_ns - batch_loop_base_;
    const double cost = static_cast<double>(records_in_batch_ + 2) *
                        profile_clock_pair_cost_ns();
    const double window = work * static_cast<double>(stride_);
    if (window > 0.0) {
      const double target =
          owner_ != nullptr ? owner_->overhead_target() : 0.03;
      const double overhead = cost / (window + cost);
      if (overhead > target && stride_ < 1024) {
        stride_ *= 2;
      } else if (overhead * 4.0 < target && stride_ > 1) {
        stride_ /= 2;
      }
    }
  }
  pending_.stride = stride_;
  sampling_ = false;
  publish();
}

void ProfileShard::batch_skip(std::uint64_t packets) noexcept {
  ++pending_.batches;
  pending_.packets += packets;
  pending_.stride = stride_;
  publish();
}

void ProfileShard::set_epoch(std::uint64_t epoch) noexcept {
  flush_epoch();
  current_epoch_ = epoch;
}

void ProfileShard::flush() noexcept {
  pending_.stride = stride_;
  publish();
  flush_epoch();
}

void ProfileShard::flush_epoch() noexcept {
  if (owner_ == nullptr) {
    return;
  }
  ProfileData delta = pending_;
  delta -= epoch_base_;
  if (!delta.empty()) {
    owner_->contribute_epoch(current_epoch_, delta);
  }
  epoch_base_ = pending_;
}

void ProfileShard::publish() noexcept {
  // Same protocol (and same reasoning) as StatsRegistry::publish: seq_cst
  // keeps the odd store, the payload and the even store in one total order;
  // publish runs once per batch so the fence cost is irrelevant.
  const std::array<std::uint64_t, kProfileWords> words =
      encode_profile(pending_);
  const std::uint64_t epoch = slot_.epoch.load(std::memory_order_relaxed);
  slot_.epoch.store(epoch + 1);  // odd: write in progress
  for (std::size_t i = 0; i < kProfileWords; ++i) {
    slot_.words[i].store(words[i]);
  }
  slot_.epoch.store(epoch + 2);  // even: stable
}

ProfileData ProfileShard::snapshot() const noexcept {
  std::array<std::uint64_t, kProfileWords> words{};
  for (;;) {
    const std::uint64_t before = slot_.epoch.load();
    if ((before & 1) != 0) {
      continue;  // writer mid-publish
    }
    for (std::size_t i = 0; i < kProfileWords; ++i) {
      words[i] = slot_.words[i].load();
    }
    if (slot_.epoch.load() == before) {
      return decode_profile(words);
    }
  }
}

// --- Profiler ---------------------------------------------------------------

Profiler::Profiler(Config config)
    : shards_(std::max<std::size_t>(1, config.shards)),
      overhead_target_(config.overhead_target > 0.0 ? config.overhead_target
                                                    : 0.03) {
  stride_override_.store(config.stride, std::memory_order_relaxed);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].owner_ = this;
  }
  // Warm the clock + pair-cost calibrations before any writer runs, so the
  // first sampled batch never pays the ~200us TSC calibration spin.
  (void)profile_clock_pair_cost_ns();
}

void Profiler::set_tenant(std::string tenant) {
  const std::lock_guard<std::mutex> lock(tenant_mutex_);
  tenant_ = std::move(tenant);
}

std::string Profiler::tenant() const {
  const std::lock_guard<std::mutex> lock(tenant_mutex_);
  return tenant_;
}

ProfileData Profiler::aggregate() const noexcept {
  ProfileData total;
  for (const ProfileShard& shard : shards_) {
    total += shard.snapshot();
  }
  return total;
}

std::vector<std::pair<std::uint64_t, ProfileData>> Profiler::epochs() const {
  const std::lock_guard<std::mutex> lock(epoch_mutex_);
  return {epochs_.begin(), epochs_.end()};
}

ProfileCapture Profiler::capture() const {
  ProfileCapture capture;
  capture.shards.reserve(shards_.size());
  for (const ProfileShard& shard : shards_) {
    capture.shards.push_back(shard.snapshot());
  }
  capture.queues = shards_.size() > 0 ? shards_.size() - 1 : 0;
  capture.epochs = epochs();
  capture.tenant = tenant();
  return capture;
}

void Profiler::contribute_epoch(std::uint64_t epoch,
                                const ProfileData& delta) {
  const std::lock_guard<std::mutex> lock(epoch_mutex_);
  epochs_[epoch] += delta;
}

void Profiler::publish(Registry& registry) const {
  const ProfileCapture capture = this->capture();
  const ProfileData total = capture.aggregate();
  const auto ns_u64 = [](double ns) {
    return ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0;
  };
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    const auto stage = static_cast<ProfileStage>(s);
    const Labels labels = {{"stage", std::string(to_string(stage))}};
    registry
        .counter("opendesc_profile_stage_ns_total",
                 "Sampled nanoseconds accounted per pipeline stage", labels)
        .store(ns_u64(total.stage_ns[s]));
    registry
        .gauge("opendesc_profile_stage_ns_per_packet",
               "Sampled nanoseconds per packet, by pipeline stage", labels)
        .set(capture.stage_ns_per_packet(stage));
  }
  registry
      .counter("opendesc_profile_work_ns_total",
               "Sampled work nanoseconds (all stages except wait)")
      .store(ns_u64(total.work_ns()));
  registry
      .counter("opendesc_profile_wait_ns_total",
               "Sampled wait/idle-spin nanoseconds")
      .store(ns_u64(total.wait_ns()));
  registry
      .counter("opendesc_profile_batches_total",
               "Batches processed by profiled threads")
      .store(total.batches);
  registry
      .counter("opendesc_profile_sampled_batches_total",
               "Batches whose spans were timed (every Kth)")
      .store(total.sampled_batches);
  registry
      .counter("opendesc_profile_sampled_packets_total",
               "Packets carried by sampled batches")
      .store(total.sampled_packets);
  std::uint64_t stride = 1;
  for (const ProfileData& shard : capture.shards) {
    stride = std::max(stride, shard.stride);
  }
  registry
      .gauge("opendesc_profile_stride",
             "Largest per-shard sampling stride K (auto-tuned)")
      .set(static_cast<double>(stride));
}

// --- ProfileCapture ---------------------------------------------------------

ProfileData ProfileCapture::aggregate() const noexcept {
  ProfileData total;
  for (const ProfileData& shard : shards) {
    total += shard;
  }
  return total;
}

double ProfileCapture::stage_ns_per_packet(ProfileStage stage) const noexcept {
  // Divide by the packets the *owning* side sampled: dispatch stages by the
  // dispatch lane's, worker stages by the worker lanes'.  wait/swap_barrier
  // occur on both sides, so they divide by everything sampled.
  const bool dispatch_only = is_dispatch_stage(stage);
  const bool worker_only = stage == ProfileStage::ring ||
                           stage == ProfileStage::validate ||
                           stage == ProfileStage::consume;
  double ns = 0.0;
  std::uint64_t pkts = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const bool is_dispatch_lane = i == queues;
    if ((dispatch_only && !is_dispatch_lane) ||
        (worker_only && is_dispatch_lane)) {
      continue;
    }
    ns += shards[i].stage_ns[static_cast<std::size_t>(stage)];
    pkts += shards[i].sampled_packets;
  }
  return pkts == 0 ? 0.0 : ns / static_cast<double>(pkts);
}

ProfileCapture ProfileCapture::since(const ProfileCapture& base) const {
  ProfileCapture delta = *this;
  for (std::size_t i = 0; i < delta.shards.size() && i < base.shards.size();
       ++i) {
    delta.shards[i] -= base.shards[i];
  }
  std::vector<std::pair<std::uint64_t, ProfileData>> epoch_delta;
  for (const auto& [epoch, data] : delta.epochs) {
    ProfileData d = data;
    for (const auto& [base_epoch, base_data] : base.epochs) {
      if (base_epoch == epoch) {
        d -= base_data;
        break;
      }
    }
    if (!d.empty()) {
      epoch_delta.emplace_back(epoch, d);
    }
  }
  delta.epochs = std::move(epoch_delta);
  return delta;
}

// --- Renderers --------------------------------------------------------------

namespace {

std::string lane_name(const ProfileCapture& capture, std::size_t index) {
  if (index == capture.queues) {
    return "dispatch";
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "queue%zu", index);
  return buf;
}

void append_num(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

void append_profile_data_json(std::string& out, const ProfileData& data) {
  out += "\"batches\":";
  append_u64(out, data.batches);
  out += ",\"sampled_batches\":";
  append_u64(out, data.sampled_batches);
  out += ",\"packets\":";
  append_u64(out, data.packets);
  out += ",\"sampled_packets\":";
  append_u64(out, data.sampled_packets);
  out += ",\"stride\":";
  append_u64(out, data.stride);
  out += ",\"work_ns\":";
  append_num(out, data.work_ns());
  out += ",\"wait_ns\":";
  append_num(out, data.wait_ns());
  out += ",\"loop_ns\":";
  append_num(out, data.loop_ns);
  out += ",\"work_ns_per_packet\":";
  append_num(out, data.work_ns_per_packet());
  out += ",\"stages\":{";
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    if (s > 0) {
      out += ',';
    }
    out += '"';
    out += to_string(static_cast<ProfileStage>(s));
    out += "\":{\"ns\":";
    append_num(out, data.stage_ns[s]);
    out += ",\"ns_per_packet\":";
    append_num(out, data.ns_per_packet(static_cast<ProfileStage>(s)));
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string render_profile_json(const ProfileCapture& capture) {
  std::string out = "{\"window_seconds\":";
  append_num(out, capture.window_seconds);
  out += ",\"tenant\":\"";
  out += capture.tenant;  // tenant labels are identifier-like; no escaping
  out += "\",\"queues\":";
  append_u64(out, capture.queues);
  out += ",\"lanes\":[";
  for (std::size_t i = 0; i < capture.shards.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "{\"lane\":\"";
    out += lane_name(capture, i);
    out += "\",";
    append_profile_data_json(out, capture.shards[i]);
    out += '}';
  }
  out += "],\"total\":{";
  append_profile_data_json(out, capture.aggregate());
  out += "},\"epochs\":[";
  for (std::size_t e = 0; e < capture.epochs.size(); ++e) {
    if (e > 0) {
      out += ',';
    }
    out += "{\"epoch\":";
    append_u64(out, capture.epochs[e].first);
    out += ',';
    append_profile_data_json(out, capture.epochs[e].second);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render_profile_collapsed(const ProfileCapture& capture) {
  // flamegraph.pl input: `frame;frame;frame value\n`, integer values.
  // Lanes that processed nothing are omitted entirely (PR 5 empty-histogram
  // convention), as are zero stages — flamegraphs have no zero-width boxes.
  std::string out;
  for (std::size_t i = 0; i < capture.shards.size(); ++i) {
    const ProfileData& shard = capture.shards[i];
    if (shard.batches == 0) {
      continue;
    }
    const std::string lane = lane_name(capture, i);
    for (std::size_t s = 0; s < kProfileStageCount; ++s) {
      const auto stage = static_cast<ProfileStage>(s);
      const std::uint64_t ns = static_cast<std::uint64_t>(
          std::max(0.0, shard.stage_ns[s]));
      if (ns == 0) {
        continue;
      }
      out += "opendesc;";
      out += lane;
      out += ';';
      out += stage == ProfileStage::wait ? "wait" : "work";
      if (stage != ProfileStage::wait) {
        out += ';';
        out += to_string(stage);
      }
      out += ' ';
      append_u64(out, ns);
      out += '\n';
    }
  }
  return out;
}

std::string render_profile_speedscope(const ProfileCapture& capture) {
  // https://www.speedscope.app/file-format-schema.json — evented profiles,
  // one per active lane, frames shared.  Each lane lays its stages out
  // sequentially under a work/wait parent frame; values are nanoseconds.
  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"exporter\":\"opendesc\",\"name\":\"opendesc profile\","
      "\"activeProfileIndex\":0,\"shared\":{\"frames\":[";
  // Frame table: [0]=work, [1]=wait, [2..]=one per non-wait stage.
  out += "{\"name\":\"work\"},{\"name\":\"wait\"}";
  std::array<int, kProfileStageCount> frame_of{};
  int next_frame = 2;
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    if (static_cast<ProfileStage>(s) == ProfileStage::wait) {
      frame_of[s] = 1;
      continue;
    }
    frame_of[s] = next_frame++;
    out += ",{\"name\":\"";
    out += to_string(static_cast<ProfileStage>(s));
    out += "\"}";
  }
  out += "]},\"profiles\":[";
  bool first_profile = true;
  for (std::size_t i = 0; i < capture.shards.size(); ++i) {
    const ProfileData& shard = capture.shards[i];
    if (shard.batches == 0) {
      continue;
    }
    if (!first_profile) {
      out += ',';
    }
    first_profile = false;
    std::string events;
    double cursor = 0.0;
    const auto open_close = [&](int frame, double ns) {
      events += "{\"type\":\"O\",\"frame\":";
      append_u64(events, static_cast<std::uint64_t>(frame));
      events += ",\"at\":";
      append_num(events, cursor);
      events += "},";
      cursor += ns;
      events += "{\"type\":\"C\",\"frame\":";
      append_u64(events, static_cast<std::uint64_t>(frame));
      events += ",\"at\":";
      append_num(events, cursor);
      events += "},";
    };
    // work parent open
    const double work = std::max(0.0, shard.work_ns());
    events += "{\"type\":\"O\",\"frame\":0,\"at\":0.0},";
    for (std::size_t s = 0; s < kProfileStageCount; ++s) {
      if (static_cast<ProfileStage>(s) == ProfileStage::wait) {
        continue;
      }
      const double ns = std::max(0.0, shard.stage_ns[s]);
      if (ns > 0.0) {
        open_close(frame_of[s], ns);
      }
    }
    cursor = work;
    events += "{\"type\":\"C\",\"frame\":0,\"at\":";
    append_num(events, cursor);
    events += "},";
    const double wait = std::max(0.0, shard.wait_ns());
    if (wait > 0.0) {
      open_close(1, wait);
    }
    if (!events.empty() && events.back() == ',') {
      events.pop_back();
    }
    out += "{\"type\":\"evented\",\"name\":\"";
    out += lane_name(capture, i);
    out += "\",\"unit\":\"nanoseconds\",\"startValue\":0,\"endValue\":";
    append_num(out, cursor);
    out += ",\"events\":[";
    out += events;
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string render_profile_tsv(const ProfileCapture& capture) {
  // ns/pkt matrix: one row per stage, one column per lane plus a trailing
  // ownership-aware total.  Lanes with zero sampled packets render `-`.
  std::string out = "stage";
  for (std::size_t i = 0; i < capture.shards.size(); ++i) {
    out += '\t';
    out += lane_name(capture, i);
  }
  out += "\ttotal\n";
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    const auto stage = static_cast<ProfileStage>(s);
    out += to_string(stage);
    for (const ProfileData& shard : capture.shards) {
      out += '\t';
      if (shard.sampled_packets == 0) {
        out += '-';
      } else {
        append_num(out, shard.ns_per_packet(stage));
      }
    }
    out += '\t';
    const double total = capture.stage_ns_per_packet(stage);
    if (capture.aggregate().sampled_packets == 0) {
      out += '-';
    } else {
      append_num(out, total);
    }
    out += '\n';
  }
  out += "work_ns_per_packet";
  for (const ProfileData& shard : capture.shards) {
    out += '\t';
    if (shard.sampled_packets == 0) {
      out += '-';
    } else {
      append_num(out, shard.work_ns_per_packet());
    }
  }
  out += '\t';
  const ProfileData total = capture.aggregate();
  if (total.sampled_packets == 0) {
    out += '-';
  } else {
    append_num(out, total.work_ns_per_packet());
  }
  out += '\n';
  out += "stride";
  for (const ProfileData& shard : capture.shards) {
    out += '\t';
    append_u64(out, shard.stride);
  }
  out += "\t-\n";
  return out;
}

}  // namespace opendesc::telemetry
