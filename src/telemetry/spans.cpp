#include "telemetry/spans.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "telemetry/exporter.hpp"

namespace opendesc::telemetry {

std::string_view to_string(SpanStage stage) noexcept {
  switch (stage) {
    case SpanStage::tx_post:
      return "tx_post";
    case SpanStage::steer:
      return "steer";
    case SpanStage::handoff:
      return "handoff";
    case SpanStage::ring:
      return "ring";
    case SpanStage::nic_parse:
      return "nic_parse";
    case SpanStage::completion_write:
      return "completion_write";
    case SpanStage::validate:
      return "validate";
    case SpanStage::consume:
      return "consume";
    case SpanStage::softnic:
      return "softnic";
    case SpanStage::quarantine:
      return "quarantine";
  }
  return "?";
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  return since(0);
}

std::vector<SpanRecord> SpanRing::since(std::uint64_t sequence) const {
  const std::uint64_t end = recorded_.load(std::memory_order_acquire);
  const std::uint64_t base = base_.load(std::memory_order_acquire);
  const std::uint64_t window =
      std::min<std::uint64_t>(end - base, buffer_.size());
  std::uint64_t begin = end - window;
  if (begin < sequence) {
    begin = sequence > end ? end : sequence;
  }
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t idx = begin; idx < end; ++idx) {
    const Slot& slot = buffer_[static_cast<std::size_t>(idx) & mask_];
    SpanRecord r;
    r.trace_id = slot.trace.load(std::memory_order_acquire);
    r.start_ns =
        std::bit_cast<double>(slot.start.load(std::memory_order_acquire));
    r.duration_ns =
        std::bit_cast<double>(slot.duration.load(std::memory_order_acquire));
    const std::uint64_t meta = slot.meta.load(std::memory_order_acquire);
    r.stage = static_cast<SpanStage>(meta & 0xFF);
    r.detail = static_cast<std::uint8_t>((meta >> 8) & 0xFF);
    r.queue = static_cast<std::uint16_t>((meta >> 16) & 0xFFFF);
    r.epoch = static_cast<std::uint32_t>(meta >> 32);
    r.sequence = idx;
    out.push_back(r);
  }
  // Discard whatever the writer started overwriting during the copy: every
  // slot below (started-write cursor - capacity) may have been re-entered,
  // so its copied words could mix two spans.
  const std::uint64_t writing = writing_.load(std::memory_order_acquire);
  const std::uint64_t safe =
      writing > buffer_.size() ? writing - buffer_.size() : 0;
  std::erase_if(out,
                [safe](const SpanRecord& r) { return r.sequence < safe; });
  return out;
}

std::vector<TraceView> group_traces(std::vector<SpanRecord> spans,
                                    std::size_t max_traces) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return static_cast<std::uint8_t>(a.stage) <
                            static_cast<std::uint8_t>(b.stage);
                   });
  std::vector<TraceView> traces;
  std::map<std::uint64_t, std::size_t> index;
  for (SpanRecord& span : spans) {
    if (span.trace_id == 0) {
      continue;  // a slot the writer never finished, or a cleared ring
    }
    const auto [it, inserted] = index.emplace(span.trace_id, traces.size());
    if (inserted) {
      traces.push_back(TraceView{span.trace_id, {}});
    }
    traces[it->second].spans.push_back(span);
  }
  if (max_traces != 0 && traces.size() > max_traces) {
    traces.erase(traces.begin(),
                 traces.end() - static_cast<std::ptrdiff_t>(max_traces));
  }
  return traces;
}

namespace {

std::string lane_name(std::uint16_t queue, std::size_t dispatch_queue) {
  return queue == dispatch_queue ? std::string("dispatch")
                                 : "queue" + std::to_string(queue);
}

/// Deterministic per-span id: distinct from the trace id, stable across
/// exports of the same ring contents.
std::uint64_t span_id(const SpanRecord& span) {
  return mint_trace_id(span.trace_id,
                       static_cast<std::uint64_t>(span.queue) + 1,
                       span.sequence + 1);
}

void append_double(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  out << buf;
}

}  // namespace

std::string render_spans_json(const std::vector<TraceView>& traces,
                              std::string_view tenant,
                              std::size_t dispatch_queue) {
  std::ostringstream out;
  out << "{\"tenant\":\"" << escape_json(std::string(tenant))
      << "\",\"traces\":[";
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const TraceView& trace = traces[t];
    out << (t == 0 ? "" : ",") << "{\"trace_id\":\""
        << trace_id_hex(trace.trace_id) << "\",\"spans\":[";
    for (std::size_t s = 0; s < trace.spans.size(); ++s) {
      const SpanRecord& span = trace.spans[s];
      out << (s == 0 ? "" : ",") << "{\"stage\":\"" << to_string(span.stage)
          << "\",\"lane\":\"" << lane_name(span.queue, dispatch_queue)
          << "\",\"queue\":" << span.queue << ",\"epoch\":" << span.epoch
          << ",\"detail\":" << static_cast<unsigned>(span.detail)
          << ",\"start_ns\":";
      append_double(out, span.start_ns);
      out << ",\"duration_ns\":";
      append_double(out, span.duration_ns);
      out << ",\"sequence\":" << span.sequence << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string render_spans_otlp(const std::vector<TraceView>& traces,
                              std::string_view tenant,
                              std::size_t dispatch_queue) {
  // ExportTraceServiceRequest in proto3 JSON mapping: 128-bit trace ids are
  // 32 hex chars (ours occupy the low 64 bits), span ids 16, and the
  // uint64 nanosecond timestamps are JSON strings.
  std::ostringstream out;
  out << "{\"resourceSpans\":[{\"resource\":{\"attributes\":["
      << "{\"key\":\"service.name\",\"value\":{\"stringValue\":\"opendesc\"}},"
      << "{\"key\":\"tenant\",\"value\":{\"stringValue\":\""
      << escape_json(std::string(tenant)) << "\"}}]},"
      << "\"scopeSpans\":[{\"scope\":{\"name\":\"opendesc.datapath\"},"
      << "\"spans\":[";
  bool first = true;
  for (const TraceView& trace : traces) {
    std::uint64_t parent = 0;  // last pipeline span's id
    for (const SpanRecord& span : trace.spans) {
      const std::uint64_t self = span_id(span);
      out << (first ? "" : ",") << "{\"traceId\":\"0000000000000000"
          << trace_id_hex(trace.trace_id) << "\",\"spanId\":\""
          << trace_id_hex(self) << "\",\"parentSpanId\":\""
          << (parent == 0 ? std::string() : trace_id_hex(parent))
          << "\",\"name\":\"" << to_string(span.stage)
          << "\",\"kind\":1,\"startTimeUnixNano\":\""
          << static_cast<std::uint64_t>(span.start_ns)
          << "\",\"endTimeUnixNano\":\""
          << static_cast<std::uint64_t>(span.start_ns + span.duration_ns)
          << "\",\"attributes\":["
          << "{\"key\":\"lane\",\"value\":{\"stringValue\":\""
          << lane_name(span.queue, dispatch_queue) << "\"}},"
          << "{\"key\":\"epoch\",\"value\":{\"intValue\":\"" << span.epoch
          << "\"}},"
          << "{\"key\":\"detail\",\"value\":{\"intValue\":\""
          << static_cast<unsigned>(span.detail) << "\"}}]}";
      first = false;
      if (!is_child_stage(span.stage)) {
        parent = self;
      }
    }
  }
  out << "]}]}]}";
  return out.str();
}

std::string render_spans_perfetto(const std::vector<TraceView>& traces,
                                  std::string_view tenant,
                                  std::size_t dispatch_queue) {
  // Chrome trace-event JSON: complete events ("ph":"X") with microsecond
  // timestamps, one tid per datapath lane, thread_name metadata so the UI
  // labels lanes instead of numbering them.
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  std::map<std::uint16_t, std::string> lanes;
  for (const TraceView& trace : traces) {
    for (const SpanRecord& span : trace.spans) {
      lanes.emplace(span.queue, lane_name(span.queue, dispatch_queue));
      out << (first ? "" : ",") << "{\"name\":\"" << to_string(span.stage)
          << "\",\"cat\":\"opendesc\",\"ph\":\"X\",\"ts\":";
      append_double(out, span.start_ns / 1000.0);
      out << ",\"dur\":";
      append_double(out, span.duration_ns / 1000.0);
      out << ",\"pid\":1,\"tid\":" << span.queue << ",\"args\":{"
          << "\"trace_id\":\"" << trace_id_hex(trace.trace_id)
          << "\",\"tenant\":\"" << escape_json(std::string(tenant))
          << "\",\"epoch\":" << span.epoch
          << ",\"detail\":" << static_cast<unsigned>(span.detail) << "}}";
      first = false;
    }
  }
  for (const auto& [tid, name] : lanes) {
    out << (first ? "" : ",")
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << name << "\"}}";
    first = false;
  }
  out << "]}";
  return out.str();
}

}  // namespace opendesc::telemetry
