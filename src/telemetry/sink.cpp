#include "telemetry/sink.hpp"

#include <algorithm>
#include <string>

namespace opendesc::telemetry {

Sink::Sink(SinkConfig config)
    : queues_(std::max<std::size_t>(1, config.queues)) {
  rings_.reserve(queues_ + 2);
  for (std::size_t i = 0; i < queues_ + 2; ++i) {
    rings_.emplace_back(config.trace_capacity);
  }
  batch_latency_ = &registry_.histogram(
      "opendesc_batch_latency_ns",
      "Host CPU nanoseconds spent consuming one rx batch", {}, queues_);
}

void Sink::publish_trace_counters() {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (std::size_t t = 0; t < kTraceEventTypeCount; ++t) {
    const auto type = static_cast<TraceEventType>(t);
    std::uint64_t total = 0;
    for (const TraceRing& ring : rings_) {
      total += ring.count(type);
    }
    registry_
        .counter("opendesc_trace_events_total",
                 "Trace events recorded, by event type",
                 {{"event", std::string(to_string(type))}})
        .store(total);
  }
  for (const TraceRing& ring : rings_) {
    recorded += ring.recorded();
    dropped += ring.dropped();
  }
  registry_
      .counter("opendesc_trace_recorded_total",
               "Trace events recorded across all rings")
      .store(recorded);
  registry_
      .counter("opendesc_trace_dropped_total",
               "Trace events overwritten by ring wrap (history lost)")
      .store(dropped);
}

}  // namespace opendesc::telemetry
