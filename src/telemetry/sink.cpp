#include "telemetry/sink.hpp"

#include <algorithm>
#include <string>

namespace opendesc::telemetry {

std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::steer:
      return "steer";
    case Stage::ring:
      return "ring";
    case Stage::validate:
      return "validate";
    case Stage::consume:
      return "consume";
    case Stage::handoff:
      return "handoff";
  }
  return "?";
}

Sink::Sink(SinkConfig config)
    : queues_(std::max<std::size_t>(1, config.queues)),
      flight_(config.flight_capacity, config.flight_context),
      profiler_(Profiler::Config{
          std::max<std::size_t>(1, config.queues) + 1, 0, 0.03}) {
  rings_.reserve(queues_ + 2);
  for (std::size_t i = 0; i < queues_ + 2; ++i) {
    rings_.emplace_back(config.trace_capacity);
  }
  span_rings_.reserve(queues_ + 1);
  for (std::size_t i = 0; i < queues_ + 1; ++i) {
    span_rings_.emplace_back(config.span_capacity);
    span_rings_.back().set_queue(static_cast<std::uint16_t>(i));
  }
  batch_latency_ = &registry_.histogram(
      "opendesc_batch_latency_ns",
      "Host CPU nanoseconds spent consuming one rx batch", {}, queues_);
  // One extra shard beyond the workers for the dispatch thread, which owns
  // the steer and handoff stages.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const auto stage = static_cast<Stage>(s);
    stage_latency_[s] = &registry_.histogram(
        "opendesc_stage_latency_ns",
        "Host CPU nanoseconds one rx batch spent in each pipeline stage",
        {{"stage", std::string(to_string(stage))}}, queues_ + 1);
  }
}

void Sink::publish_trace_counters() {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (std::size_t t = 0; t < kTraceEventTypeCount; ++t) {
    const auto type = static_cast<TraceEventType>(t);
    std::uint64_t total = 0;
    for (const TraceRing& ring : rings_) {
      total += ring.count(type);
    }
    registry_
        .counter("opendesc_trace_events_total",
                 "Trace events recorded, by event type",
                 {{"event", std::string(to_string(type))}})
        .store(total);
  }
  for (const TraceRing& ring : rings_) {
    recorded += ring.recorded();
    dropped += ring.dropped();
  }
  registry_
      .counter("opendesc_trace_recorded_total",
               "Trace events recorded across all rings")
      .store(recorded);
  registry_
      .counter("opendesc_trace_dropped_total",
               "Trace events overwritten by ring wrap (history lost)")
      .store(dropped);
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  for (const SpanRing& ring : span_rings_) {
    spans_recorded += ring.recorded();
    spans_dropped += ring.dropped();
  }
  registry_
      .counter("opendesc_trace_spans_recorded_total",
               "Lifecycle spans recorded for sampled packets")
      .store(spans_recorded);
  registry_
      .counter("opendesc_trace_spans_dropped_total",
               "Lifecycle spans overwritten by span-ring wrap")
      .store(spans_dropped);
  for (std::size_t c = 0; c < kFlightCauseCount; ++c) {
    const auto cause = static_cast<FlightCause>(c);
    registry_
        .counter("opendesc_flight_incidents_total",
                 "Flight-recorder incidents captured, by cause",
                 {{"cause", std::string(to_string(cause))}})
        .store(flight_.count(cause));
  }
  // The profiler families ride the same exposition path: snapshot-based,
  // idempotent stores, safe while the writers are live (seqlock reads).
  profiler_.publish(registry_);
}

}  // namespace opendesc::telemetry
