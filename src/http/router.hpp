// Declarative method+path routing for the embedded HTTP server.
//
// Routes are registered up front — router.get("/metrics", fn),
// router.post("/layout", fn) — and the route table itself generates the
// error surface, the same way the OpenDesc compiler derives accessors from
// a declared contract instead of hand-rolling them per NIC:
//
//   * unknown path   → structured JSON 404 carrying the full route list,
//     so a scraper hitting a typo'd path learns what does exist;
//   * known path, unregistered method → 405 with an `Allow:` header and a
//     JSON body listing the methods that are registered;
//   * HEAD is served by the GET handler (the server strips the body);
//   * HttpError thrown by a handler becomes a structured JSON response
//     with its status; any other exception becomes the classic text 500.
//
// dispatch() is pure request→response (no sockets), which is what the
// socket-free route tests and ObservabilityServer::handle() call directly.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "http/message.hpp"

namespace opendesc::http {

class Router {
 public:
  using Handler = std::function<Response(const Request&)>;

  /// Registers a GET handler (it also answers HEAD).  Re-registering a
  /// (method, path) pair replaces the handler.  Returns *this to chain.
  Router& get(std::string path, Handler handler);
  /// Registers a POST handler.
  Router& post(std::string path, Handler handler);
  /// Explicit-method registration ("GET", "POST", ...; uppercased).
  Router& route(std::string method, std::string path, Handler handler);
  /// Catch-all invoked when no path matches (instead of the 404).  Exists
  /// for the legacy single-handler HttpServer constructor; routed tables
  /// should not need it.
  Router& fallback(Handler handler);

  /// Routes one request: table lookup, then the handler under the error
  /// contract above.  Never throws.
  [[nodiscard]] Response dispatch(const Request& request) const;

  /// Registered paths, sorted — the 404 body's route list.
  [[nodiscard]] std::vector<std::string> paths() const;

  [[nodiscard]] bool empty() const noexcept {
    return routes_.empty() && fallback_ == nullptr;
  }

 private:
  [[nodiscard]] Response not_found(const Request& request) const;
  [[nodiscard]] Response method_not_allowed(
      const Request& request,
      const std::map<std::string, Handler>& methods) const;

  /// path → method → handler; both maps ordered so the 404 route list and
  /// the Allow header are deterministic.
  std::map<std::string, std::map<std::string, Handler>> routes_;
  Handler fallback_;
};

}  // namespace opendesc::http
