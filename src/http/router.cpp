#include "http/router.hpp"

namespace opendesc::http {

namespace {

std::string uppercase(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') {
      c = static_cast<char>(c - 'a' + 'A');
    }
  }
  return s;
}

}  // namespace

Router& Router::get(std::string path, Handler handler) {
  return route("GET", std::move(path), std::move(handler));
}

Router& Router::post(std::string path, Handler handler) {
  return route("POST", std::move(path), std::move(handler));
}

Router& Router::route(std::string method, std::string path, Handler handler) {
  routes_[std::move(path)][uppercase(std::move(method))] = std::move(handler);
  return *this;
}

Router& Router::fallback(Handler handler) {
  fallback_ = std::move(handler);
  return *this;
}

std::vector<std::string> Router::paths() const {
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const auto& [path, methods] : routes_) {
    out.push_back(path);
  }
  return out;
}

Response Router::dispatch(const Request& request) const {
  const Handler* handler = nullptr;
  const auto route_it = routes_.find(request.path);
  if (route_it == routes_.end()) {
    if (fallback_ == nullptr) {
      return not_found(request);
    }
    handler = &fallback_;
  } else {
    const std::map<std::string, Handler>& methods = route_it->second;
    auto handler_it = methods.find(request.method);
    if (handler_it == methods.end() && request.method == "HEAD") {
      handler_it = methods.find("GET");  // HEAD rides the GET handler
    }
    if (handler_it == methods.end()) {
      return method_not_allowed(request, methods);
    }
    handler = &handler_it->second;
  }
  try {
    return (*handler)(request);
  } catch (const HttpError& e) {
    Response response;
    response.status = e.status();
    response.content_type = "application/json";
    response.body = "{\"error\":\"" + json_escape(e.what()) + "\"}";
    return response;
  } catch (const std::exception& e) {
    Response response;
    response.status = 500;
    response.body = std::string("internal error: ") + e.what() + "\n";
    return response;
  }
}

Response Router::not_found(const Request& request) const {
  Response response;
  response.status = 404;
  response.content_type = "application/json";
  response.body =
      "{\"error\":\"not found\",\"path\":\"" + json_escape(request.path) +
      "\",\"routes\":[";
  bool first = true;
  for (const auto& [path, methods] : routes_) {
    response.body += first ? "\"" : ",\"";
    first = false;
    response.body += json_escape(path);
    response.body += '"';
  }
  response.body += "]}";
  return response;
}

Response Router::method_not_allowed(
    const Request& request,
    const std::map<std::string, Handler>& methods) const {
  std::string allow;
  for (const auto& [method, handler] : methods) {
    allow += allow.empty() ? method : ", " + method;
    if (method == "GET") {
      allow += ", HEAD";
    }
  }
  Response response;
  response.status = 405;
  response.content_type = "application/json";
  response.headers["Allow"] = allow;
  response.body = "{\"error\":\"method not allowed\",\"method\":\"" +
                  json_escape(request.method) + "\",\"path\":\"" +
                  json_escape(request.path) + "\",\"allow\":\"" +
                  json_escape(allow) + "\"}";
  return response;
}

}  // namespace opendesc::http
