#include "http/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace opendesc::http {

namespace {

void set_socket_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer or gives up (peer gone / timed out).
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Splits "a=1&b=2" into the query map (no %-decoding: the observability
/// endpoints only take small numeric/identifier values).
void parse_query(const std::string& raw, std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t amp = raw.find('&', pos);
    if (amp == std::string::npos) {
      amp = raw.size();
    }
    const std::string pair = raw.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) {
        out[pair] = "";
      }
    } else {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
}

std::string lowercase(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return s;
}

/// Parses the request head (request line + headers).  Returns false (with
/// `status`) on anything malformed.
bool parse_request(const std::string& head, Request& request, int& status) {
  const std::size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    status = 400;
    return false;
  }
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    status = 400;
    return false;
  }
  if (request.method != "GET" && request.method != "HEAD") {
    status = 405;
    return false;
  }
  if (request.target.empty() || request.target[0] != '/') {
    status = 400;
    return false;
  }
  const std::size_t q = request.target.find('?');
  request.path = request.target.substr(0, q);
  if (q != std::string::npos) {
    parse_query(request.target.substr(q + 1), request.query);
  }

  // Headers: "Key: value" lines until the blank line.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string::npos) {
      end = head.size();
    }
    const std::string header = head.substr(pos, end - pos);
    pos = end + 2;
    if (header.empty()) {
      break;
    }
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) {
      continue;  // tolerate junk header lines
    }
    std::size_t value_at = colon + 1;
    while (value_at < header.size() && header[value_at] == ' ') {
      ++value_at;
    }
    request.headers[lowercase(header.substr(0, colon))] =
        header.substr(value_at);
  }
  return true;
}

}  // namespace

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 503:
      return "Service Unavailable";
    case 500:
    default:
      return "Internal Server Error";
  }
}

ServerConfig parse_listen_address(const std::string& spec, ServerConfig base) {
  std::string host = base.address;
  std::string port = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon != 0) {
      host = spec.substr(0, colon);
    }
    port = spec.substr(colon + 1);
  }
  if (port.empty()) {
    throw Error(ErrorKind::semantic, "listen address '" + spec +
                                         "' has no port (want host:port)");
  }
  unsigned long value = 0;
  try {
    std::size_t used = 0;
    value = std::stoul(port, &used);
    if (used != port.size() || value > 0xFFFF) {
      throw std::invalid_argument(port);
    }
  } catch (const std::exception&) {
    throw Error(ErrorKind::semantic,
                "listen address '" + spec + "' has a malformed port");
  }
  base.address = host;
  base.port = static_cast<std::uint16_t>(value);
  return base;
}

HttpServer::HttpServer(ServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(ErrorKind::io, "http: socket() failed: " +
                                   std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrorKind::io,
                "http: bad listen address '" + config_.address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, static_cast<int>(config_.max_queued)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrorKind::io, "http: cannot listen on " + config_.address +
                                   ":" + std::to_string(config_.port) + ": " +
                                   why);
  }
  socklen_t len = sizeof(addr);
  (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

void HttpServer::start() {
  if (running_) {
    return;
  }
  running_ = true;
  stopping_ = false;
  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // shutdown() unblocks the accept thread; the workers see stopping_ after
  // the queue drains.
  (void)::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : queued_) {
      ::close(fd);
    }
    queued_.clear();
  }
  running_ = false;
}

std::uint64_t HttpServer::requests_served() const noexcept {
  const std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(mutex_));
  return served_;
}

void HttpServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // listen socket gone; nothing left to accept
    }
    set_socket_timeouts(fd, config_.timeout_ms);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        lock.unlock();
        ::close(fd);
        return;
      }
      if (queued_.size() >= config_.max_queued) {
        // Bounded: shed the newest connection instead of queueing without
        // limit.  The peer sees a reset, which any scraper retries.
        lock.unlock();
        ::close(fd);
        continue;
      }
      queued_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queued_.empty(); });
      if (queued_.empty()) {
        return;  // stopping and drained
      }
      fd = queued_.front();
      queued_.pop_front();
    }
    serve_connection(fd);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++served_;
    }
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the request head, the size bound, or the timeout.
  std::string data;
  char buf[2048];
  bool timed_out = false;
  while (data.find("\r\n\r\n") == std::string::npos) {
    if (data.size() > config_.max_request_bytes) {
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      timed_out = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    data.append(buf, static_cast<std::size_t>(n));
  }

  Response response;
  Request request;
  bool head_only = false;
  if (data.size() > config_.max_request_bytes) {
    response = {413, "text/plain; charset=utf-8", "request too large\n"};
  } else if (data.find("\r\n\r\n") == std::string::npos) {
    if (data.empty() && !timed_out) {
      return;  // peer connected and went away; nothing to answer
    }
    response = {timed_out ? 408 : 400, "text/plain; charset=utf-8",
                timed_out ? "request timeout\n" : "malformed request\n"};
  } else {
    int status = 200;
    if (!parse_request(data, request, status)) {
      response = {status, "text/plain; charset=utf-8",
                  std::string(status_reason(status)) + "\n"};
    } else {
      head_only = request.method == "HEAD";
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        response = {500, "text/plain; charset=utf-8",
                    std::string("internal error: ") + e.what() + "\n"};
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(status_reason(response.status)) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (!head_only) {
    out += response.body;
  }
  (void)send_all(fd, out.data(), out.size());
}

Response http_get(const std::string& host, std::uint16_t port,
                  const std::string& target, int timeout_ms) {
  return http_request("GET", host, port, target, timeout_ms);
}

Response http_request(const std::string& method, const std::string& host,
                      std::uint16_t port, const std::string& target,
                      int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(ErrorKind::io, "http_get: socket() failed");
  }
  set_socket_timeouts(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(ErrorKind::io, "http_get: cannot connect to " + host + ":" +
                                   std::to_string(port) + ": " + why);
  }
  const std::string request = method + " " + target + " HTTP/1.1\r\nHost: " +
                              host + "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    throw Error(ErrorKind::io, "http_get: send failed");
  }
  std::string raw;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.", 0) != 0 || head_end == std::string::npos) {
    throw Error(ErrorKind::io, "http_get: malformed response");
  }
  Response response;
  response.status = std::stoi(raw.substr(9, 3));
  const std::string head = raw.substr(0, head_end);
  const std::size_t ct = lowercase(head).find("content-type:");
  if (ct != std::string::npos) {
    std::size_t value_at = ct + 13;
    while (value_at < head.size() && head[value_at] == ' ') {
      ++value_at;
    }
    response.content_type =
        head.substr(value_at, head.find("\r\n", value_at) - value_at);
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace opendesc::http
