#include "http/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace opendesc::http {

namespace {

/// Outgoing-buffer high-water mark: a streaming producer is pumped only
/// while the unsent backlog is below this, which bounds per-connection
/// memory regardless of body size.
constexpr std::size_t kHighWater = 64 * 1024;
/// Unparsed-input bound (head limit + body limit + generous pipelining
/// slack).  A peer that outruns it is abusing the connection and is closed.
constexpr std::size_t kMaxBufferedInput = 1 << 20;

/// Splits "a=1&b=2" into the query map (no %-decoding: the observability
/// endpoints only take small numeric/identifier values).
void parse_query(const std::string& raw,
                 std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t amp = raw.find('&', pos);
    if (amp == std::string::npos) {
      amp = raw.size();
    }
    const std::string pair = raw.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) {
        out[pair] = "";
      }
    } else {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
}

std::string lowercase(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return s;
}

void wake(int event_fd) {
  const std::uint64_t one = 1;
  (void)!::write(event_fd, &one, sizeof(one));
}

Router fallback_router(HttpServer::Handler handler) {
  Router router;
  router.fallback(std::move(handler));
  return router;
}

}  // namespace

ServerConfig parse_listen_address(const std::string& spec, ServerConfig base) {
  std::string host = base.address;
  std::string port = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon != 0) {
      host = spec.substr(0, colon);
    }
    port = spec.substr(colon + 1);
  }
  if (port.empty()) {
    throw Error(ErrorKind::semantic, "listen address '" + spec +
                                         "' has no port (want host:port)");
  }
  unsigned long value = 0;
  try {
    std::size_t used = 0;
    value = std::stoul(port, &used);
    if (used != port.size() || value > 0xFFFF) {
      throw std::invalid_argument(port);
    }
  } catch (const std::exception&) {
    throw Error(ErrorKind::semantic,
                "listen address '" + spec + "' has a malformed port");
  }
  base.address = host;
  base.port = static_cast<std::uint16_t>(value);
  return base;
}

HttpServer::HttpServer(ServerConfig config, Router router)
    : config_(std::move(config)), router_(std::move(router)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(ErrorKind::io, "http: socket() failed: " +
                                   std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrorKind::io,
                "http: bad listen address '" + config_.address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, static_cast<int>(config_.max_queued)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrorKind::io, "http: cannot listen on " + config_.address +
                                   ":" + std::to_string(config_.port) + ": " +
                                   why);
  }
  socklen_t len = sizeof(addr);
  (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

HttpServer::HttpServer(ServerConfig config, Handler handler)
    : HttpServer(std::move(config), fallback_router(std::move(handler))) {}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

void HttpServer::start() {
  if (running_) {
    return;
  }
  running_ = true;
  stopping_.store(false, std::memory_order_relaxed);

  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  (void)::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  accept_event_fd_ = ::eventfd(0, EFD_NONBLOCK);

  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(0);
    worker->event_fd = ::eventfd(0, EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->event_fd < 0) {
      throw Error(ErrorKind::io, "http: cannot create event loop: " +
                                     std::string(std::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->event_fd;
    (void)::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->event_fd, &ev);
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { worker_loop(*raw); });
    workers_.push_back(std::move(worker));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  wake(accept_event_fd_);
  // shutdown() makes later connects fail fast and unblocks any in-flight
  // accept; the fd itself stays open so port() keeps answering.
  (void)::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    wake(worker->event_fd);
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
    ::close(worker->event_fd);
    ::close(worker->epoll_fd);
  }
  workers_.clear();
  ::close(accept_event_fd_);
  accept_event_fd_ = -1;
  running_ = false;
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {accept_event_fd_, POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0 && errno != EINTR) {
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      return;
    }
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED) {
          break;
        }
        return;  // listen socket gone; nothing left to accept
      }
      if (connections_.load(std::memory_order_relaxed) >=
          config_.max_connections) {
        // Bounded: shed the newest connection instead of growing without
        // limit.  The peer sees a reset, which any scraper retries.
        ::close(fd);
        continue;
      }
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Worker& worker = *workers_[next_worker_++ % workers_.size()];
      {
        const std::lock_guard<std::mutex> lock(worker.intake_mutex);
        worker.intake.push_back(fd);
      }
      wake(worker.event_fd);
    }
  }
}

void HttpServer::adopt_intake(Worker& worker) {
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(worker.intake_mutex);
    fds.swap(worker.intake);
  }
  for (const int fd : fds) {
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.deadline = Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
    worker.conns.emplace(fd, std::move(conn));
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::worker_loop(Worker& worker) {
  std::array<epoll_event, 64> events{};
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(worker.epoll_fd, events.data(),
                               static_cast<int>(events.size()),
                               config_.tick_ms);
    if (stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == worker.event_fd) {
        std::uint64_t drain = 0;
        while (::read(worker.event_fd, &drain, sizeof(drain)) > 0) {
        }
        adopt_intake(worker);
        continue;
      }
      const auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) {
        continue;  // closed earlier in this batch
      }
      Conn& conn = it->second;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(worker, fd);
        continue;
      }
      bool peer_gone = false;
      if ((ev & EPOLLIN) != 0) {
        char buf[4096];
        while (conn.in.size() < kMaxBufferedInput) {
          const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
          if (r > 0) {
            conn.in.append(buf, static_cast<std::size_t>(r));
          } else if (r == 0) {
            peer_gone = true;
            break;
          } else {
            break;  // EAGAIN now; a real error raises EPOLLERR next pass
          }
        }
        if (conn.in.size() >= kMaxBufferedInput) {
          close_conn(worker, fd);  // pipelining flood; protect the worker
          continue;
        }
      }
      advance(worker, conn);
      if (!flush_out(worker, conn)) {
        close_conn(worker, fd);
        continue;
      }
      const bool drained = conn.out_off >= conn.out.size();
      if (peer_gone || (conn.close_after_flush && drained && !conn.stream)) {
        close_conn(worker, fd);
        continue;
      }
      update_interest(worker, conn);
    }

    // Tick pass: pump live streams, sweep deadlines.
    const Clock::time_point now = Clock::now();
    std::vector<int> doomed;
    for (auto& [fd, conn] : worker.conns) {
      if (conn.stream && conn.out_off >= conn.out.size()) {
        advance(worker, conn);
        if (!flush_out(worker, conn)) {
          doomed.push_back(fd);
          continue;
        }
        update_interest(worker, conn);
      }
      const bool drained = conn.out_off >= conn.out.size();
      if (conn.close_after_flush && drained && !conn.stream) {
        doomed.push_back(fd);
        continue;
      }
      if (conn.stream && conn.stream_live && drained) {
        // A quiet live stream is healthy; its clock restarts every tick.
        conn.deadline = now + std::chrono::milliseconds(config_.timeout_ms);
        continue;
      }
      if (now < conn.deadline) {
        continue;
      }
      if (!drained) {
        doomed.push_back(fd);  // write stall: peer stopped reading
        continue;
      }
      if (!conn.in.empty() || conn.have_head || conn.served == 0) {
        // Slowloris drip or a connection that never sent a request: answer
        // 408 (best effort — the peer may not read it) and close.
        fail_request(conn, 408, "request timeout");
        (void)flush_out(worker, conn);
      }
      // Idle keep-alive after served requests closes silently.
      doomed.push_back(fd);
    }
    for (const int fd : doomed) {
      close_conn(worker, fd);
    }
  }

  // Shutdown: everything this worker owns goes away.
  {
    const std::lock_guard<std::mutex> lock(worker.intake_mutex);
    for (const int fd : worker.intake) {
      ::close(fd);
    }
    worker.intake.clear();
  }
  for (const auto& [fd, conn] : worker.conns) {
    ::close(fd);
    connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  worker.conns.clear();
}

void HttpServer::advance(Worker& worker, Conn& conn) {
  (void)worker;
  while (!conn.close_after_flush) {
    if (conn.stream) {
      // Fill the out buffer up to the high-water mark; a live producer
      // with nothing new leaves the stream waiting for the next tick.
      while (conn.stream &&
             conn.out.size() - conn.out_off < kHighWater) {
        if (!pump_stream(conn)) {
          break;
        }
      }
      if (conn.stream) {
        return;  // still streaming: wait for drain or tick
      }
      if (!conn.keep_alive) {
        conn.close_after_flush = true;
        return;
      }
      continue;  // stream done: a pipelined request may be buffered
    }
    if (!conn.have_head && !parse_head(conn)) {
      return;  // need more bytes, or an error response was queued
    }
    if (conn.in.size() < conn.body_need) {
      return;  // body incomplete
    }
    conn.req.body = conn.in.substr(0, conn.body_need);
    conn.in.erase(0, conn.body_need);
    conn.body_need = 0;
    dispatch(worker, conn);
    if (!conn.stream && !conn.keep_alive) {
      conn.close_after_flush = true;
      return;
    }
    // Loop: an active stream pumps at the top; keep-alive parses the next
    // pipelined request.
  }
}

bool HttpServer::parse_head(Conn& conn) {
  const std::size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (conn.in.size() > config_.max_request_bytes) {
      fail_request(conn, 413, "request too large");
    }
    return false;
  }
  if (head_end + 4 > config_.max_request_bytes) {
    fail_request(conn, 413, "request too large");
    return false;
  }
  const std::string head = conn.in.substr(0, head_end + 2);
  conn.in.erase(0, head_end + 4);
  conn.req = Request{};

  const std::size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    fail_request(conn, 400, "malformed request");
    return false;
  }
  conn.req.method = line.substr(0, sp1);
  conn.req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0 || conn.req.method.empty() ||
      conn.req.target.empty() || conn.req.target[0] != '/') {
    fail_request(conn, 400, "malformed request");
    return false;
  }
  for (const char c : conn.req.method) {
    if (c < 'A' || c > 'Z') {
      fail_request(conn, 400, "malformed request");
      return false;
    }
  }
  conn.req.http11 = version != "HTTP/1.0";
  const std::size_t q = conn.req.target.find('?');
  conn.req.path = conn.req.target.substr(0, q);
  if (q != std::string::npos) {
    parse_query(conn.req.target.substr(q + 1), conn.req.query);
  }

  // Headers: "Key: value" lines until the blank line; junk lines tolerated.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string::npos) {
      end = head.size();
    }
    const std::string header = head.substr(pos, end - pos);
    pos = end + 2;
    if (header.empty()) {
      break;
    }
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::size_t value_at = colon + 1;
    while (value_at < header.size() && header[value_at] == ' ') {
      ++value_at;
    }
    conn.req.headers[lowercase(header.substr(0, colon))] =
        header.substr(value_at);
  }

  // Body framing.
  if (!conn.req.header("transfer-encoding").empty()) {
    fail_request(conn, 501, "chunked request bodies not supported");
    return false;
  }
  const std::string content_length = conn.req.header("content-length");
  if (!content_length.empty()) {
    std::uint64_t value = 0;
    for (const char c : content_length) {
      if (c < '0' || c > '9' || value > (UINT64_MAX - 9) / 10) {
        fail_request(conn, 400, "malformed request");
        return false;
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value > config_.max_body_bytes) {
      fail_request(conn, 413, "request body too large");
      return false;
    }
    conn.body_need = static_cast<std::size_t>(value);
  }

  const std::string connection = lowercase(conn.req.header("connection"));
  conn.keep_alive = conn.req.http11
                        ? connection.find("close") == std::string::npos
                        : connection.find("keep-alive") != std::string::npos;
  if (config_.max_keepalive_requests != 0 &&
      conn.served + 1 >= config_.max_keepalive_requests) {
    conn.keep_alive = false;
  }
  conn.head_only = conn.req.method == "HEAD";
  conn.have_head = true;
  return true;
}

void HttpServer::dispatch(Worker& worker, Conn& conn) {
  (void)worker;
  const Clock::time_point handled = Clock::now();
  Response response = router_.dispatch(conn.req);
  if (metrics_hook_) {
    metrics_hook_(conn.req, response.status,
                  std::chrono::duration<double, std::nano>(Clock::now() -
                                                           handled)
                      .count());
  }
  serialize_response(conn, std::move(response));
  conn.req = Request{};
  conn.have_head = false;
  // The next request's (or the idle keep-alive) clock starts now; it is
  // deliberately not refreshed per received byte.
  conn.deadline = Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
}

void HttpServer::serialize_response(Conn& conn, Response&& response) {
  served_.fetch_add(1, std::memory_order_relaxed);
  ++conn.served;
  const bool streaming = response.stream != nullptr && !conn.head_only;
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(status_reason(response.status)) +
                     "\r\nContent-Type: " + response.content_type + "\r\n";
  for (const auto& [key, value] : response.headers) {
    head += key + ": " + value + "\r\n";
  }
  if (streaming) {
    head += "Transfer-Encoding: chunked\r\n";
  } else if (!(conn.head_only && response.stream != nullptr)) {
    head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  head += conn.keep_alive ? "Connection: keep-alive\r\n\r\n"
                          : "Connection: close\r\n\r\n";
  conn.out += head;
  if (!conn.head_only && !streaming) {
    conn.out += response.body;
  }
  if (streaming) {
    conn.stream = std::move(response.stream);
    conn.stream_live = response.live;
  }
}

bool HttpServer::pump_stream(Conn& conn) {
  ResponseWriter writer(conn.out, /*chunked=*/true);
  conn.stream(writer);
  if (writer.ended() ||
      (!conn.stream_live && writer.bytes_written() == 0)) {
    conn.out += "0\r\n\r\n";
    conn.stream = nullptr;
    conn.stream_live = false;
    return true;  // finished
  }
  return writer.bytes_written() > 0;
}

bool HttpServer::flush_out(Worker& worker, Conn& conn) {
  (void)worker;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      // Write progress resets the stall clock (the peer is reading).
      conn.deadline =
          Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      return false;  // peer gone
    }
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > kHighWater) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  return true;
}

void HttpServer::update_interest(Worker& worker, Conn& conn) {
  const bool want_out = conn.out_off < conn.out.size();
  if (want_out == conn.want_out) {
    return;
  }
  conn.want_out = want_out;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0U);
  ev.data.fd = conn.fd;
  (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void HttpServer::close_conn(Worker& worker, int fd) {
  const auto it = worker.conns.find(fd);
  if (it == worker.conns.end()) {
    return;
  }
  (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  worker.conns.erase(it);
  connections_.fetch_sub(1, std::memory_order_relaxed);
}

void HttpServer::fail_request(Conn& conn, int status,
                              const std::string& message) {
  conn.keep_alive = false;
  Response response;
  response.status = status;
  response.body = message + "\n";
  serialize_response(conn, std::move(response));
  conn.close_after_flush = true;
  conn.have_head = false;
  conn.body_need = 0;
  conn.in.clear();
}

}  // namespace opendesc::http
