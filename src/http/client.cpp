#include "http/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"

namespace opendesc::http {

namespace {

void set_socket_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int connect_to(const std::string& host, std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(ErrorKind::io, "http client: socket() failed");
  }
  set_socket_timeouts(fd, timeout_ms);
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(ErrorKind::io, "http client: cannot connect to " + host + ":" +
                                   std::to_string(port) + ": " + why);
  }
  return fd;
}

std::string lowercase(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return s;
}

/// Appends whatever is readable; false on EOF or timeout/error.
bool fill(int fd, std::string& buffer) {
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  if (n <= 0) {
    return false;
  }
  buffer.append(buf, static_cast<std::size_t>(n));
  return true;
}

/// Parses "<hex>\r\n<data>\r\n"* from `raw` into `out`.  Returns true once
/// the terminating 0-chunk was consumed; leaves incomplete tail in `raw`.
bool decode_chunks(std::string& raw, std::string& out) {
  while (true) {
    const std::size_t line_end = raw.find("\r\n");
    if (line_end == std::string::npos) {
      return false;
    }
    std::size_t size = 0;
    std::size_t pos = 0;
    while (pos < line_end) {
      const char c = raw[pos];
      if (c >= '0' && c <= '9') {
        size = size * 16 + static_cast<std::size_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        size = size * 16 + static_cast<std::size_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        size = size * 16 + static_cast<std::size_t>(c - 'A' + 10);
      } else {
        break;  // chunk extension; ignore the rest of the line
      }
      ++pos;
    }
    if (pos == 0) {
      throw Error(ErrorKind::io, "http client: malformed chunk size");
    }
    if (raw.size() < line_end + 2 + size + 2) {
      return false;  // whole chunk not here yet
    }
    if (size == 0) {
      raw.erase(0, line_end + 2 + 2);  // "0\r\n" + final "\r\n"
      return true;
    }
    out.append(raw, line_end + 2, size);
    raw.erase(0, line_end + 2 + size + 2);
  }
}

struct ParsedHead {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lowercased keys
};

/// Parses the status line + headers out of `data` (which must contain the
/// full head); returns the body offset.
std::size_t parse_response_head(const std::string& data, ParsedHead& head) {
  const std::size_t head_end = data.find("\r\n\r\n");
  if (data.rfind("HTTP/1.", 0) != 0 || head_end == std::string::npos ||
      data.size() < 12) {
    throw Error(ErrorKind::io, "http client: malformed response");
  }
  head.status = std::stoi(data.substr(9, 3));
  std::size_t pos = data.find("\r\n") + 2;
  while (pos < head_end) {
    std::size_t end = data.find("\r\n", pos);
    if (end == std::string::npos || end > head_end) {
      end = head_end;
    }
    const std::string line = data.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::size_t value_at = colon + 1;
    while (value_at < line.size() && line[value_at] == ' ') {
      ++value_at;
    }
    head.headers[lowercase(line.substr(0, colon))] = line.substr(value_at);
  }
  return head_end + 4;
}

}  // namespace

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_ms_(other.timeout_ms_),
      fd_(other.fd_),
      connects_(other.connects_),
      reconnects_(other.reconnects_),
      requests_(other.requests_),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    timeout_ms_ = other.timeout_ms_;
    fd_ = other.fd_;
    connects_ = other.connects_;
    reconnects_ = other.reconnects_;
    requests_ = other.requests_;
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

void HttpClient::connect() {
  fd_ = connect_to(host_, port_, timeout_ms_);
  if (connects_ > 0) {
    ++reconnects_;
  }
  ++connects_;
  pending_.clear();
}

Response HttpClient::request(const std::string& method,
                             const std::string& target,
                             const std::string& body,
                             const HeaderList& extra_headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\nHost: " + host_ +
                     "\r\n";
  bool has_content_length = false;
  for (const auto& [key, value] : extra_headers) {
    wire += key + ": " + value + "\r\n";
    if (lowercase(key) == "content-length") {
      has_content_length = true;
    }
  }
  if ((!body.empty() || method == "POST") && !has_content_length) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  // A fresh connection gets one attempt; a reused one gets a retry on a
  // fresh socket — the server may have idle-closed it between requests.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = fd_ >= 0;
    if (!reused) {
      connect();
    }
    if (!send_all(fd_, wire.data(), wire.size())) {
      close();
      if (reused) {
        continue;
      }
      throw Error(ErrorKind::io, "http client: send failed");
    }

    // Head first.
    std::string& data = pending_;
    bool dead = false;
    while (data.find("\r\n\r\n") == std::string::npos) {
      if (!fill(fd_, data)) {
        dead = true;
        break;
      }
    }
    if (dead) {
      close();
      if (reused) {
        continue;  // stale keep-alive connection; retry once
      }
      throw Error(ErrorKind::io, "http client: no response from " + host_ +
                                     ":" + std::to_string(port_));
    }

    ParsedHead head;
    const std::size_t body_at = parse_response_head(data, head);
    Response response;
    response.status = head.status;
    response.headers = head.headers;
    const auto ct = head.headers.find("content-type");
    if (ct != head.headers.end()) {
      response.content_type = ct->second;
    }
    data.erase(0, body_at);

    const bool head_request = method == "HEAD";
    const auto te = head.headers.find("transfer-encoding");
    const auto cl = head.headers.find("content-length");
    bool close_framed = false;
    if (head_request) {
      // headers only
    } else if (te != head.headers.end() &&
               lowercase(te->second).find("chunked") != std::string::npos) {
      while (!decode_chunks(data, response.body)) {
        if (!fill(fd_, data)) {
          close();
          throw Error(ErrorKind::io, "http client: truncated chunked body");
        }
      }
    } else if (cl != head.headers.end()) {
      const std::size_t want = std::stoul(cl->second);
      while (data.size() < want) {
        if (!fill(fd_, data)) {
          close();
          throw Error(ErrorKind::io, "http client: truncated body");
        }
      }
      response.body = data.substr(0, want);
      data.erase(0, want);
    } else {
      while (fill(fd_, data)) {
      }
      response.body = std::move(data);
      data.clear();
      close_framed = true;
    }

    ++requests_;
    const auto conn = head.headers.find("connection");
    if (close_framed ||
        (conn != head.headers.end() &&
         lowercase(conn->second).find("close") != std::string::npos)) {
      close();
    }
    return response;
  }
  throw Error(ErrorKind::io, "http client: request failed after reconnect");
}

// --- SSE ---------------------------------------------------------------------

SseClient::SseClient(const std::string& host, std::uint16_t port,
                     const std::string& target, int timeout_ms) {
  fd_ = connect_to(host, port, timeout_ms);
  const std::string wire = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                           "\r\nAccept: text/event-stream\r\n"
                           "Connection: close\r\n\r\n";
  if (!send_all(fd_, wire.data(), wire.size())) {
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorKind::io, "sse client: send failed");
  }
  std::string data;
  while (data.find("\r\n\r\n") == std::string::npos) {
    if (!fill(fd_, data)) {
      ::close(fd_);
      fd_ = -1;
      throw Error(ErrorKind::io, "sse client: no response head");
    }
  }
  ParsedHead head;
  const std::size_t body_at = parse_response_head(data, head);
  if (head.status != 200) {
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorKind::io,
                "sse client: status " + std::to_string(head.status));
  }
  const auto ct = head.headers.find("content-type");
  content_type_ = ct == head.headers.end() ? "" : ct->second;
  const auto te = head.headers.find("transfer-encoding");
  chunked_ = te != head.headers.end() &&
             lowercase(te->second).find("chunked") != std::string::npos;
  raw_ = data.substr(body_at);
  if (chunked_) {
    eof_ = decode_chunks(raw_, decoded_);
  } else {
    decoded_ = std::move(raw_);
    raw_.clear();
  }
}

SseClient::~SseClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::optional<SseEvent> SseClient::take_buffered_event() {
  while (true) {
    const std::size_t block_end = decoded_.find("\n\n");
    if (block_end == std::string::npos) {
      return std::nullopt;
    }
    const std::string block = decoded_.substr(0, block_end);
    decoded_.erase(0, block_end + 2);
    SseEvent event;
    bool has_field = false;
    std::size_t pos = 0;
    while (pos <= block.size()) {
      std::size_t end = block.find('\n', pos);
      if (end == std::string::npos) {
        end = block.size();
      }
      const std::string line = block.substr(pos, end - pos);
      pos = end + 1;
      if (line.empty() || line[0] == ':') {
        continue;  // comment / keep-alive
      }
      const std::size_t colon = line.find(':');
      const std::string field =
          colon == std::string::npos ? line : line.substr(0, colon);
      std::string value =
          colon == std::string::npos ? "" : line.substr(colon + 1);
      if (!value.empty() && value[0] == ' ') {
        value.erase(0, 1);
      }
      if (field == "event") {
        event.event = value;
        has_field = true;
      } else if (field == "data") {
        event.data += event.data.empty() ? value : "\n" + value;
        has_field = true;
      } else if (field == "id") {
        event.id = value;
        has_field = true;
      } else if (field == "retry") {
        has_field = true;  // parsed, unused
      }
    }
    if (has_field) {
      return event;
    }
    // comment-only block: keep scanning
  }
}

std::optional<SseEvent> SseClient::next(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (std::optional<SseEvent> event = take_buffered_event()) {
      return event;
    }
    if (eof_ || fd_ < 0) {
      return std::nullopt;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready <= 0) {
      return std::nullopt;  // timeout or poll error
    }
    if (chunked_) {
      if (!fill(fd_, raw_)) {
        eof_ = true;
      } else {
        eof_ = decode_chunks(raw_, decoded_) || eof_;
      }
    } else {
      if (!fill(fd_, decoded_)) {
        eof_ = true;
      }
    }
  }
}

// --- one-shot helpers --------------------------------------------------------

Response http_get(const std::string& host, std::uint16_t port,
                  const std::string& target, int timeout_ms) {
  return http_request("GET", host, port, target, timeout_ms);
}

Response http_request(const std::string& method, const std::string& host,
                      std::uint16_t port, const std::string& target,
                      int timeout_ms, const std::string& body,
                      const HeaderList& extra_headers) {
  HttpClient client(host, port, timeout_ms);
  HeaderList headers = extra_headers;
  headers.emplace_back("Connection", "close");
  return client.request(method, target, body, headers);
}

}  // namespace opendesc::http
