// HTTP/1.1 clients for tests, benches and the CLI.
//
//   * HttpClient — a persistent keep-alive connection: request() frames
//     responses by Content-Length or chunked transfer-encoding (decoding
//     the chunks), honours the server's Connection header, and
//     transparently reconnects when the server closed between requests
//     (reconnects() counts them, which is how the scrape-storm bench
//     asserts keep-alive actually reused connections).
//   * SseClient — opens a text/event-stream response and yields parsed
//     events one at a time, decoding the chunked framing incrementally.
//   * http_get / http_request — the classic one-shot helpers (Connection:
//     close), kept for the many existing call sites.
//
// All throw Error(io) on connect/send/parse failures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "http/message.hpp"

namespace opendesc::http {

using HeaderList = std::vector<std::pair<std::string, std::string>>;

class HttpClient {
 public:
  /// Connects lazily on the first request.
  HttpClient(std::string host, std::uint16_t port, int timeout_ms = 2000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// One request over the persistent connection.  The response's `headers`
  /// map is populated (keys lowercased) and chunked bodies are decoded.
  Response request(const std::string& method, const std::string& target,
                   const std::string& body = {},
                   const HeaderList& extra_headers = {});
  Response get(const std::string& target) { return request("GET", target); }
  Response post(const std::string& target, const std::string& body,
                const std::string& content_type = "application/json") {
    return request("POST", target, body,
                   {{"Content-Type", content_type}});
  }

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  /// Times the connection had to be re-established after the first.
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }

  void close() noexcept;

 private:
  void connect();

  std::string host_;
  std::uint16_t port_;
  int timeout_ms_;
  int fd_ = -1;
  std::uint64_t connects_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t requests_ = 0;
  std::string pending_;  ///< bytes read past the previous response
};

/// One parsed server-sent event.
struct SseEvent {
  std::string event;  ///< "event:" field ("" = unnamed "message")
  std::string data;   ///< "data:" lines joined with '\n'
  std::string id;     ///< "id:" field
};

/// Reads a text/event-stream response event by event over its own
/// connection.  Construction sends the GET and parses the response head
/// (Error(io) unless the status is 200 and the stream is chunked or
/// close-delimited).
class SseClient {
 public:
  SseClient(const std::string& host, std::uint16_t port,
            const std::string& target, int timeout_ms = 2000);
  ~SseClient();

  SseClient(const SseClient&) = delete;
  SseClient& operator=(const SseClient&) = delete;

  /// Blocks up to `timeout_ms` for the next event; nullopt on stream end
  /// or timeout.  Comment-only blocks (": keep-alive") are skipped.
  std::optional<SseEvent> next(int timeout_ms);

  [[nodiscard]] const std::string& content_type() const noexcept {
    return content_type_;
  }
  /// True once the server ended the stream — the only way to tell a
  /// final nullopt from a timeout.
  [[nodiscard]] bool ended() const noexcept { return eof_; }

 private:
  [[nodiscard]] std::optional<SseEvent> take_buffered_event();

  int fd_ = -1;
  std::string content_type_;
  bool chunked_ = false;
  std::string raw_;      ///< undecoded wire bytes (chunk framing)
  std::string decoded_;  ///< event-stream text not yet consumed
  bool eof_ = false;
};

/// Blocking one-shot HTTP/1.1 GET (Connection: close).
[[nodiscard]] Response http_get(const std::string& host, std::uint16_t port,
                                const std::string& target,
                                int timeout_ms = 2000);

/// One-shot request with an explicit method ("GET", "HEAD", "POST").
[[nodiscard]] Response http_request(const std::string& method,
                                    const std::string& host,
                                    std::uint16_t port,
                                    const std::string& target,
                                    int timeout_ms = 2000,
                                    const std::string& body = {},
                                    const HeaderList& extra_headers = {});

}  // namespace opendesc::http
