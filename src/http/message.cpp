#include "http/message.hpp"

#include <cstdio>

namespace opendesc::http {

const std::string* Request::query_get(const std::string& key) const {
  const auto it = query.find(key);
  return it == query.end() ? nullptr : &it->second;
}

std::optional<std::uint64_t> Request::query_u64(const std::string& key) const {
  const std::string* raw = query_get(key);
  if (raw == nullptr) {
    return std::nullopt;
  }
  if (raw->empty()) {
    throw HttpError(400, "query parameter '" + key + "' is empty");
  }
  std::uint64_t value = 0;
  for (const char c : *raw) {
    if (c < '0' || c > '9' || value > (UINT64_MAX - 9) / 10) {
      throw HttpError(400, "query parameter '" + key + "' is not an unsigned"
                           " integer: '" + *raw + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::optional<double> Request::query_double(const std::string& key) const {
  const std::string* raw = query_get(key);
  if (raw == nullptr) {
    return std::nullopt;
  }
  try {
    std::size_t used = 0;
    const double value = std::stod(*raw, &used);
    if (used != raw->size()) {
      throw std::invalid_argument(*raw);
    }
    return value;
  } catch (const std::exception&) {
    throw HttpError(400, "query parameter '" + key + "' is not a number: '" +
                             *raw + "'");
  }
}

bool Request::query_flag(const std::string& key) const {
  return query.find(key) != query.end();
}

std::string Request::header(const std::string& lowercase_key) const {
  const auto it = headers.find(lowercase_key);
  return it == headers.end() ? std::string() : it->second;
}

void ResponseWriter::write(std::string_view chunk) {
  if (chunk.empty()) {
    return;
  }
  written_ += chunk.size();
  if (!chunked_) {
    out_->append(chunk.data(), chunk.size());
    return;
  }
  char size_line[32];
  const int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                              chunk.size());
  out_->append(size_line, static_cast<std::size_t>(n));
  out_->append(chunk.data(), chunk.size());
  out_->append("\r\n");
}

std::string Response::full_body() const {
  if (stream == nullptr) {
    return body;
  }
  BodyProducer producer = stream;  // copy: the cursor state stays ours
  std::string out;
  ResponseWriter writer(out, /*chunked=*/false);
  while (!writer.ended()) {
    const std::size_t before = writer.bytes_written();
    producer(writer);
    if (!writer.ended() && writer.bytes_written() == before) {
      break;  // finite: done; live: drained of what exists now
    }
  }
  return out;
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 500:
    default:
      return "Internal Server Error";
  }
}

std::string json_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace opendesc::http
