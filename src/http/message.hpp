// Message vocabulary of the embedded HTTP layer: Request, Response, the
// streaming ResponseWriter and the HttpError handlers throw for structured
// non-500 failures.
//
// Split out of server.hpp so the Router and the client helpers share these
// types without pulling in the event-loop server.  Two deliberate API
// choices:
//
//   * Request carries the body (POST support) and *typed* query accessors:
//     query_u64()/query_double() turn a malformed parameter into an
//     HttpError(400) at the point of use, so route handlers stop
//     hand-rolling stoul-with-try/catch per endpoint.
//   * Response is either a materialized string body or a pull-based
//     streaming body: `stream` is invoked repeatedly by the event loop and
//     emits chunks through a ResponseWriter (sent with chunked
//     transfer-encoding, memory bounded by the loop's high-water mark
//     instead of the body size).  `live` marks never-ending sources (SSE):
//     a live producer call that emits nothing means "no data yet, poll me
//     again on the next loop tick", where a non-live one means "done".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace opendesc::http {

/// Thrown by route handlers (and the typed Request accessors) to produce a
/// structured response with a specific status instead of a blanket 500.
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& message)
      : std::runtime_error(message), status_(status) {}

  [[nodiscard]] int status() const noexcept { return status_; }

 private:
  int status_;
};

/// One parsed request: request line, decoded query parameters, lowercased
/// headers, and the body (empty for GET/HEAD).
struct Request {
  std::string method;  ///< "GET" / "HEAD" / "POST"
  std::string target;  ///< raw request target, e.g. "/traces?queue=2"
  std::string path;    ///< target up to '?'
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;  ///< keys lowercased
  std::string body;                            ///< request body (POST)
  bool http11 = true;  ///< HTTP/1.1 (keep-alive default) vs 1.0

  /// Raw parameter lookup: nullptr when absent.
  [[nodiscard]] const std::string* query_get(const std::string& key) const;
  /// Typed lookup: nullopt when absent, HttpError(400) when present but not
  /// a decimal unsigned integer.
  [[nodiscard]] std::optional<std::uint64_t> query_u64(
      const std::string& key) const;
  /// Typed lookup: nullopt when absent, HttpError(400) when malformed.
  [[nodiscard]] std::optional<double> query_double(const std::string& key) const;
  /// True when the parameter is present at all ("?follow", "?follow=1").
  [[nodiscard]] bool query_flag(const std::string& key) const;
  /// Header value by lowercased name ("" when absent).
  [[nodiscard]] std::string header(const std::string& lowercase_key) const;
};

/// The streaming body sink handed to a Response::BodyProducer.  Each
/// write() emits one chunk (framed as chunked transfer-encoding on the
/// wire); end() marks the stream finished.  A producer call that neither
/// writes nor ends means "no data yet" for live streams and "done" for
/// finite ones.
class ResponseWriter {
 public:
  /// `chunked` selects wire framing (event loop) vs raw append
  /// (Response::full_body()).
  ResponseWriter(std::string& out, bool chunked)
      : out_(&out), chunked_(chunked) {}

  /// Emits one chunk.  Empty writes are ignored (an empty wire chunk would
  /// terminate the stream).
  void write(std::string_view chunk);
  /// Marks the stream complete; the producer is not called again.
  void end() noexcept { done_ = true; }

  [[nodiscard]] bool ended() const noexcept { return done_; }
  /// Bytes emitted through this writer so far.
  [[nodiscard]] std::size_t bytes_written() const noexcept { return written_; }

 private:
  std::string* out_;
  bool chunked_;
  bool done_ = false;
  std::size_t written_ = 0;
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. "Allow", "Cache-Control").  Content-Type,
  /// Content-Length/Transfer-Encoding and Connection are owned by the
  /// server and must not be set here.
  std::map<std::string, std::string> headers;

  /// Pull-based streaming body: called repeatedly by the event loop; each
  /// call appends zero or more chunks through the writer and calls end()
  /// when finished.  Non-null => `body` is ignored and the response is sent
  /// with chunked transfer-encoding.
  using BodyProducer = std::function<void(ResponseWriter&)>;
  BodyProducer stream;
  /// Live stream (SSE-style): a producer call that emits nothing does not
  /// end the response; the loop re-polls it on its tick.
  bool live = false;

  /// Materializes the complete body: `body` for plain responses, or the
  /// streaming producer run to completion (on a copy, so the response can
  /// still be served).  A live producer is drained only of the data it has
  /// now.  Test/CLI helper — the event loop never materializes.
  [[nodiscard]] std::string full_body() const;
};

[[nodiscard]] std::string_view status_reason(int status) noexcept;

/// Escapes a JSON string body (no surrounding quotes).  Local to the http
/// layer so Router/server error bodies do not depend on telemetry.
[[nodiscard]] std::string json_escape(std::string_view value);

}  // namespace opendesc::http
