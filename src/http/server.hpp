// Minimal embedded HTTP/1.1 server for the observability plane.
//
// Deliberately tiny and dependency-free (raw POSIX sockets): the point is a
// scrape endpoint an operator's Prometheus/curl can hit while the engine
// runs, in the embedded-management style of bmcweb — not a general web
// framework.  Scope:
//
//   * GET/HEAD only, one request per connection (`Connection: close`);
//   * one blocking accept thread feeding a small fixed worker pool through
//     a bounded queue — the connection count can never grow unbounded, a
//     slow peer occupies one worker, and the datapath threads are never
//     involved in serving;
//   * per-connection receive/send timeouts (SO_RCVTIMEO/SO_SNDTIMEO), a
//     bounded request size, and loopback binding by default;
//   * handlers are plain functions Request -> Response; whatever they
//     throw becomes a 500 with the Error text.
//
// Port 0 binds an ephemeral port; port() reports the bound one, which is
// what the tests and `--listen 127.0.0.1:0` use.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace opendesc::http {

/// One parsed request.  Only the pieces the observability plane needs:
/// method, path, decoded query parameters and (lowercased) headers.
struct Request {
  std::string method;  ///< "GET" / "HEAD"
  std::string target;  ///< raw request target, e.g. "/traces?queue=2"
  std::string path;    ///< target up to '?'
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;  ///< keys lowercased
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

[[nodiscard]] std::string_view status_reason(int status) noexcept;

struct ServerConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;          ///< 0 = ephemeral; see HttpServer::port()
  std::size_t workers = 2;         ///< connection-serving threads
  std::size_t max_queued = 16;     ///< accepted-but-unserved connection bound
  std::size_t max_request_bytes = 8192;
  int timeout_ms = 2000;           ///< per-connection recv/send timeout
};

/// Parses "host:port", ":port" or "port" into a ServerConfig address/port
/// pair (host defaults to 127.0.0.1).  Throws Error(semantic) on malformed
/// input.
[[nodiscard]] ServerConfig parse_listen_address(const std::string& spec,
                                                ServerConfig base = {});

class HttpServer {
 public:
  using Handler = std::function<Response(const Request&)>;

  /// Binds and listens immediately (Error(io) on failure) but serves
  /// nothing until start().
  HttpServer(ServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Spawns the accept thread and the worker pool.  Idempotent.
  void start();
  /// Closes the listen socket, drains queued connections and joins every
  /// thread.  Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] const std::string& address() const noexcept {
    return config_.address;
  }
  /// The actually-bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::string url() const {
    return "http://" + config_.address + ":" + std::to_string(port_);
  }

  /// Requests served so far (including error responses).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  ServerConfig config_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queued_;  ///< accepted fds awaiting a worker
  bool stopping_ = false;
  std::uint64_t served_ = 0;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  bool running_ = false;
};

/// Blocking single-request HTTP/1.1 GET against a local server; used by the
/// tests and the scrape-latency bench.  Throws Error(io) on connect/t/o.
[[nodiscard]] Response http_get(const std::string& host, std::uint16_t port,
                                const std::string& target,
                                int timeout_ms = 2000);

/// Same client with an explicit method ("GET" or "HEAD") — how the tests
/// verify HEAD answers headers-only.
[[nodiscard]] Response http_request(const std::string& method,
                                    const std::string& host,
                                    std::uint16_t port,
                                    const std::string& target,
                                    int timeout_ms = 2000);

}  // namespace opendesc::http
