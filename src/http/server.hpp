// Non-blocking embedded HTTP/1.1 server for the observability plane.
//
// Still deliberately tiny and dependency-free (raw POSIX sockets + epoll):
// the point is a scrape endpoint an operator's Prometheus/curl can hit
// while the engine runs — not a general web framework.  The serving model
// is an event loop rather than thread-per-connection:
//
//   * one acceptor thread (epoll on the listen socket) hands accepted
//     connections round-robin to N event-driven workers over an eventfd-
//     woken intake queue;
//   * each worker owns an epoll instance and a set of per-connection state
//     machines (read head → read body → dispatch → write/stream), so
//     hundreds of keep-alive scrapers cost file descriptors, not threads;
//   * HTTP/1.1 keep-alive with pipelining: buffered follow-up requests are
//     parsed and answered in order on the same connection;
//   * bounded everything: request-head and body size limits (413), a
//     connection cap, an idle/slow-peer deadline that is *not* refreshed
//     per byte (slowloris drip gets a 408, not a reset clock), and a
//     write-stall deadline for peers that stop reading;
//   * streaming responses: a Response with a BodyProducer is sent with
//     chunked transfer-encoding, pumped incrementally so a 1M-flow dump
//     never materializes; `live` producers (SSE) are re-polled on the
//     loop tick and live for the life of the connection.
//
// Routing is declarative: the server owns a Router (method+path table) and
// every connection dispatches through it.  Port 0 binds an ephemeral port;
// port() reports the bound one, which is what tests and
// `--listen 127.0.0.1:0` use.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "http/client.hpp"  // http_get/http_request, long declared here
#include "http/message.hpp"
#include "http/router.hpp"

namespace opendesc::http {

struct ServerConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;       ///< 0 = ephemeral; see HttpServer::port()
  std::size_t workers = 2;      ///< event-loop threads
  std::size_t max_queued = 64;  ///< listen(2) backlog
  std::size_t max_request_bytes = 8192;  ///< request line + headers bound
  int timeout_ms = 2000;        ///< idle / slow-peer / write-stall deadline
  std::size_t max_body_bytes = 1 << 16;  ///< request body bound (413 above)
  std::size_t max_connections = 1024;    ///< open connections across workers
  /// Keep-alive requests served per connection before the server closes it
  /// (0 = unlimited).
  std::size_t max_keepalive_requests = 0;
  int tick_ms = 25;  ///< loop tick: live-stream poll + deadline sweep cadence
};

/// Parses "host:port", ":port" or "port" into a ServerConfig address/port
/// pair (host defaults to 127.0.0.1).  Throws Error(semantic) on malformed
/// input.
[[nodiscard]] ServerConfig parse_listen_address(const std::string& spec,
                                                ServerConfig base = {});

class HttpServer {
 public:
  /// Kept as an alias for the transition away from the single-handler API;
  /// new code registers routes on a Router instead.
  using Handler = Router::Handler;

  /// Binds and listens immediately (Error(io) on failure) but serves
  /// nothing until start().
  HttpServer(ServerConfig config, Router router);
  /// Single-handler compatibility constructor: the handler becomes the
  /// fallback for every request (no route table, no structured 404/405).
  HttpServer(ServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Spawns the acceptor and the worker event loops.  Idempotent.
  void start();
  /// Shuts the listen socket, closes every connection and joins all
  /// threads.  Idempotent; also run by the destructor.  Live streams are
  /// terminated mid-flight.
  void stop();

  [[nodiscard]] const std::string& address() const noexcept {
    return config_.address;
  }
  /// The actually-bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::string url() const {
    return "http://" + config_.address + ":" + std::to_string(port_);
  }

  /// The route table requests dispatch through (socket-free testing entry).
  [[nodiscard]] const Router& router() const noexcept { return router_; }

  /// Per-request observation hook: invoked on the worker event-loop thread
  /// after every dispatch with the request, the response status and the
  /// handler's wall time.  Must be cheap and thread-safe (several workers
  /// call it concurrently).  Install before start().
  using MetricsHook =
      std::function<void(const Request&, int status, double duration_ns)>;
  void set_metrics_hook(MetricsHook hook) { metrics_hook_ = std::move(hook); }

  /// Requests served so far (including error responses).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }
  /// Currently-open connections across all workers.
  [[nodiscard]] std::size_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// One connection's state machine.
  struct Conn {
    int fd = -1;
    std::string in;        ///< bytes read, not yet parsed
    std::string out;       ///< serialized bytes not yet written
    std::size_t out_off = 0;
    Request req;
    bool have_head = false;
    std::size_t body_need = 0;  ///< body bytes still missing
    bool head_only = false;     ///< HEAD: suppress the body
    bool keep_alive = true;
    Response::BodyProducer stream;  ///< active streaming body, if any
    bool stream_live = false;
    bool close_after_flush = false;
    bool want_out = false;  ///< EPOLLOUT currently registered
    std::uint64_t served = 0;  ///< requests answered on this connection
    Clock::time_point deadline{};
  };

  /// One event-loop thread: epoll fd + eventfd wakeup + its connections.
  struct Worker {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::mutex intake_mutex;
    std::vector<int> intake;  ///< fds handed over by the acceptor
    std::unordered_map<int, Conn> conns;
  };

  void accept_loop();
  void worker_loop(Worker& worker);
  void adopt_intake(Worker& worker);
  /// Drives the state machine as far as the buffered input allows.
  void advance(Worker& worker, Conn& conn);
  bool parse_head(Conn& conn);
  void dispatch(Worker& worker, Conn& conn);
  void serialize_response(Conn& conn, Response&& response);
  /// Runs the streaming producer once; returns false when the connection
  /// must close.
  bool pump_stream(Conn& conn);
  /// Opportunistic send + EPOLLOUT bookkeeping; false = connection dead.
  bool flush_out(Worker& worker, Conn& conn);
  void update_interest(Worker& worker, Conn& conn);
  void close_conn(Worker& worker, int fd);
  void fail_request(Conn& conn, int status, const std::string& message);

  ServerConfig config_;
  Router router_;
  MetricsHook metrics_hook_;
  int listen_fd_ = -1;
  int accept_event_fd_ = -1;  ///< wakes the acceptor for shutdown
  std::uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::size_t> connections_{0};

  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t next_worker_ = 0;  ///< acceptor round-robin cursor
  bool running_ = false;
};

}  // namespace opendesc::http
