// Owning packet buffer, zero-copy parsed view, and fluent builder.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "net/headers.hpp"

namespace opendesc::net {

/// An owning packet: wire bytes plus out-of-band receive context that real
/// hardware would know (arrival timestamp, ingress port).
struct Packet {
  std::vector<std::uint8_t> data;
  std::uint64_t rx_timestamp_ns = 0;
  std::uint16_t rx_port = 0;
  /// Causal-tracing id minted at TX post for head-sampled packets (0 =
  /// unsampled).  Out-of-band, like the timestamp: it models the opaque
  /// cookie real NICs carry per descriptor, so corruption faults can never
  /// destroy the trace identity itself.
  std::uint64_t trace_id = 0;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept { return data; }
  [[nodiscard]] std::span<std::uint8_t> bytes() noexcept { return data; }
  [[nodiscard]] std::size_t size() const noexcept { return data.size(); }
};

/// Which L3/L4 protocols a parsed packet carries.
enum class L3Kind : std::uint8_t { none, ipv4, ipv6 };
enum class L4Kind : std::uint8_t { none, tcp, udp, other };

/// Zero-copy parse result: header offsets into the original buffer plus the
/// decoded fixed headers.  This is the ground truth the simulated NIC
/// pipeline and the SoftNIC fallbacks both compute from.
class PacketView {
 public:
  /// Parses Ethernet[/802.1Q]/IPv4|IPv6/TCP|UDP.  Throws
  /// std::invalid_argument / std::out_of_range on truncated or non-IP input.
  static PacketView parse(std::span<const std::uint8_t> frame);

  [[nodiscard]] std::span<const std::uint8_t> frame() const noexcept { return frame_; }

  [[nodiscard]] const EthernetHeader& eth() const noexcept { return eth_; }
  [[nodiscard]] bool has_vlan() const noexcept { return vlan_.has_value(); }
  [[nodiscard]] const VlanTag& vlan() const { return vlan_.value(); }

  [[nodiscard]] L3Kind l3_kind() const noexcept { return l3_kind_; }
  [[nodiscard]] const Ipv4Header& ipv4() const { return ipv4_.value(); }
  [[nodiscard]] const Ipv6Header& ipv6() const { return ipv6_.value(); }

  [[nodiscard]] L4Kind l4_kind() const noexcept { return l4_kind_; }
  [[nodiscard]] std::uint16_t src_port() const noexcept { return src_port_; }
  [[nodiscard]] std::uint16_t dst_port() const noexcept { return dst_port_; }

  /// Byte offsets of each layer within frame(); l4_offset==frame size when
  /// there is no L4 header.
  [[nodiscard]] std::size_t l3_offset() const noexcept { return l3_offset_; }
  [[nodiscard]] std::size_t l4_offset() const noexcept { return l4_offset_; }
  [[nodiscard]] std::size_t payload_offset() const noexcept { return payload_offset_; }

  [[nodiscard]] std::span<const std::uint8_t> l3_bytes() const noexcept;
  [[nodiscard]] std::span<const std::uint8_t> l4_bytes() const noexcept;
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept;

 private:
  std::span<const std::uint8_t> frame_;
  EthernetHeader eth_{};
  std::optional<VlanTag> vlan_;
  L3Kind l3_kind_ = L3Kind::none;
  std::optional<Ipv4Header> ipv4_;
  std::optional<Ipv6Header> ipv6_;
  L4Kind l4_kind_ = L4Kind::none;
  std::uint16_t src_port_ = 0;
  std::uint16_t dst_port_ = 0;
  std::size_t l3_offset_ = 0;
  std::size_t l4_offset_ = 0;
  std::size_t payload_offset_ = 0;
};

/// Fluent builder producing well-formed frames with correct (or, for failure
/// injection, deliberately corrupted) checksums.
class PacketBuilder {
 public:
  PacketBuilder& eth(const MacAddress& src, const MacAddress& dst);
  PacketBuilder& vlan(std::uint16_t tci);
  PacketBuilder& ipv4(std::uint32_t src, std::uint32_t dst);
  PacketBuilder& ipv6(const std::array<std::uint8_t, 16>& src,
                      const std::array<std::uint8_t, 16>& dst);
  PacketBuilder& ip_id(std::uint16_t id);
  PacketBuilder& ttl(std::uint8_t value);
  PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& payload(std::span<const std::uint8_t> bytes);
  PacketBuilder& payload_text(std::string_view text);
  /// Pads the payload with zero bytes so the final frame is exactly
  /// `frame_size` bytes (throws if headers alone already exceed it).
  PacketBuilder& frame_size(std::size_t size);
  /// Corrupt the IPv4 header checksum (failure injection).
  PacketBuilder& corrupt_ip_checksum();
  /// Corrupt the L4 checksum (failure injection).
  PacketBuilder& corrupt_l4_checksum();
  PacketBuilder& rx_timestamp(std::uint64_t ns);
  PacketBuilder& rx_port(std::uint16_t port);

  /// Assembles the frame.  The builder can be reused afterwards.
  [[nodiscard]] Packet build() const;

 private:
  EthernetHeader eth_{};
  std::optional<VlanTag> vlan_;
  L3Kind l3_ = L3Kind::none;
  std::uint32_t ip4_src_ = 0, ip4_dst_ = 0;
  std::array<std::uint8_t, 16> ip6_src_{}, ip6_dst_{};
  std::uint16_t ip_id_ = 0;
  std::uint8_t ttl_ = 64;
  L4Kind l4_ = L4Kind::none;
  std::uint16_t sport_ = 0, dport_ = 0;
  std::vector<std::uint8_t> payload_;
  std::optional<std::size_t> frame_size_;
  bool corrupt_ip_csum_ = false;
  bool corrupt_l4_csum_ = false;
  std::uint64_t rx_timestamp_ns_ = 0;
  std::uint16_t rx_port_num_ = 0;
};

}  // namespace opendesc::net
