#include "net/headers.hpp"

#include <cstdio>
#include <stdexcept>

namespace opendesc::net {

namespace {

void require_size(std::size_t actual, std::size_t needed, const char* what) {
  if (actual < needed) {
    throw std::out_of_range(std::string(what) + ": buffer too small");
  }
}

}  // namespace

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

MacAddress make_mac(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d, std::uint8_t e, std::uint8_t f) {
  return MacAddress{{a, b, c, d, e, f}};
}

void EthernetHeader::serialize(std::span<std::uint8_t> out) const {
  require_size(out.size(), kWireSize, "EthernetHeader::serialize");
  std::copy(dst.bytes.begin(), dst.bytes.end(), out.begin());
  std::copy(src.bytes.begin(), src.bytes.end(), out.begin() + 6);
  store_be16(out.data() + 12, ethertype);
}

EthernetHeader EthernetHeader::parse(std::span<const std::uint8_t> in) {
  require_size(in.size(), kWireSize, "EthernetHeader::parse");
  EthernetHeader h;
  std::copy(in.begin(), in.begin() + 6, h.dst.bytes.begin());
  std::copy(in.begin() + 6, in.begin() + 12, h.src.bytes.begin());
  h.ethertype = load_be16(in.data() + 12);
  return h;
}

void VlanTag::serialize(std::span<std::uint8_t> out) const {
  require_size(out.size(), kWireSize, "VlanTag::serialize");
  store_be16(out.data(), tci);
  store_be16(out.data() + 2, inner_ethertype);
}

VlanTag VlanTag::parse(std::span<const std::uint8_t> in) {
  require_size(in.size(), kWireSize, "VlanTag::parse");
  VlanTag t;
  t.tci = load_be16(in.data());
  t.inner_ethertype = load_be16(in.data() + 2);
  return t;
}

void Ipv4Header::serialize(std::span<std::uint8_t> out) const {
  require_size(out.size(), kWireSize, "Ipv4Header::serialize");
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = dscp_ecn;
  store_be16(out.data() + 2, total_length);
  store_be16(out.data() + 4, identification);
  store_be16(out.data() + 6, flags_fragment);
  out[8] = ttl;
  out[9] = protocol;
  store_be16(out.data() + 10, header_checksum);
  store_be32(out.data() + 12, src);
  store_be32(out.data() + 16, dst);
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> in) {
  require_size(in.size(), kWireSize, "Ipv4Header::parse");
  if ((in[0] >> 4) != 4) {
    throw std::invalid_argument("Ipv4Header::parse: not an IPv4 packet");
  }
  Ipv4Header h;
  h.dscp_ecn = in[1];
  h.total_length = load_be16(in.data() + 2);
  h.identification = load_be16(in.data() + 4);
  h.flags_fragment = load_be16(in.data() + 6);
  h.ttl = in[8];
  h.protocol = in[9];
  h.header_checksum = load_be16(in.data() + 10);
  h.src = load_be32(in.data() + 12);
  h.dst = load_be32(in.data() + 16);
  return h;
}

void Ipv6Header::serialize(std::span<std::uint8_t> out) const {
  require_size(out.size(), kWireSize, "Ipv6Header::serialize");
  store_be32(out.data(), (std::uint32_t{6} << 28) | (flow_label & 0xFFFFF));
  store_be16(out.data() + 4, payload_length);
  out[6] = next_header;
  out[7] = hop_limit;
  std::copy(src.begin(), src.end(), out.begin() + 8);
  std::copy(dst.begin(), dst.end(), out.begin() + 24);
}

Ipv6Header Ipv6Header::parse(std::span<const std::uint8_t> in) {
  require_size(in.size(), kWireSize, "Ipv6Header::parse");
  const std::uint32_t first = load_be32(in.data());
  if ((first >> 28) != 6) {
    throw std::invalid_argument("Ipv6Header::parse: not an IPv6 packet");
  }
  Ipv6Header h;
  h.flow_label = first & 0xFFFFF;
  h.payload_length = load_be16(in.data() + 4);
  h.next_header = in[6];
  h.hop_limit = in[7];
  std::copy(in.begin() + 8, in.begin() + 24, h.src.begin());
  std::copy(in.begin() + 24, in.begin() + 40, h.dst.begin());
  return h;
}

void TcpHeader::serialize(std::span<std::uint8_t> out) const {
  require_size(out.size(), kWireSize, "TcpHeader::serialize");
  store_be16(out.data(), src_port);
  store_be16(out.data() + 2, dst_port);
  store_be32(out.data() + 4, seq);
  store_be32(out.data() + 8, ack);
  out[12] = 0x50;  // data offset 5 words
  out[13] = flags;
  store_be16(out.data() + 14, window);
  store_be16(out.data() + 16, checksum);
  store_be16(out.data() + 18, urgent);
}

TcpHeader TcpHeader::parse(std::span<const std::uint8_t> in) {
  require_size(in.size(), kWireSize, "TcpHeader::parse");
  TcpHeader h;
  h.src_port = load_be16(in.data());
  h.dst_port = load_be16(in.data() + 2);
  h.seq = load_be32(in.data() + 4);
  h.ack = load_be32(in.data() + 8);
  h.flags = in[13];
  h.window = load_be16(in.data() + 14);
  h.checksum = load_be16(in.data() + 16);
  h.urgent = load_be16(in.data() + 18);
  return h;
}

void UdpHeader::serialize(std::span<std::uint8_t> out) const {
  require_size(out.size(), kWireSize, "UdpHeader::serialize");
  store_be16(out.data(), src_port);
  store_be16(out.data() + 2, dst_port);
  store_be16(out.data() + 4, length);
  store_be16(out.data() + 6, checksum);
}

UdpHeader UdpHeader::parse(std::span<const std::uint8_t> in) {
  require_size(in.size(), kWireSize, "UdpHeader::parse");
  UdpHeader h;
  h.src_port = load_be16(in.data());
  h.dst_port = load_be16(in.data() + 2);
  h.length = load_be16(in.data() + 4);
  h.checksum = load_be16(in.data() + 6);
  return h;
}

std::uint32_t ipv4_from_string(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("ipv4_from_string: bad address '" + dotted + "'");
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

std::string ipv4_to_string(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

}  // namespace opendesc::net
