#include "net/offload.hpp"

#include <stdexcept>

#include "net/checksum.hpp"

namespace opendesc::net {

void patch_l4_checksum(std::span<std::uint8_t> frame) {
  const PacketView view = PacketView::parse(frame);
  if (view.l4_kind() != L4Kind::tcp && view.l4_kind() != L4Kind::udp) {
    return;
  }
  const std::size_t csum_offset =
      view.l4_offset() + (view.l4_kind() == L4Kind::tcp ? 16 : 6);
  frame[csum_offset] = 0;
  frame[csum_offset + 1] = 0;
  const std::uint8_t proto =
      view.l4_kind() == L4Kind::tcp ? kIpProtoTcp : kIpProtoUdp;
  const std::span<const std::uint8_t> l4 =
      std::span<const std::uint8_t>(frame).subspan(view.l4_offset());
  std::uint16_t csum = 0;
  if (view.l3_kind() == L3Kind::ipv4) {
    csum = l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst, proto, l4);
  } else if (view.l3_kind() == L3Kind::ipv6) {
    csum = l4_checksum_ipv6(view.ipv6().src, view.ipv6().dst, proto, l4);
  } else {
    return;
  }
  store_be16(frame.data() + csum_offset, csum);
}

void patch_ipv4_checksum(std::span<std::uint8_t> frame) {
  const PacketView view = PacketView::parse(frame);
  if (view.l3_kind() != L3Kind::ipv4) {
    return;
  }
  const std::size_t l3 = view.l3_offset();
  frame[l3 + 10] = 0;
  frame[l3 + 11] = 0;
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(frame).subspan(l3, Ipv4Header::kWireSize));
  store_be16(frame.data() + l3 + 10, csum);
}

std::vector<std::uint8_t> insert_vlan(std::span<const std::uint8_t> frame,
                                      std::uint16_t tci) {
  if (frame.size() < EthernetHeader::kWireSize) {
    throw std::invalid_argument("insert_vlan: frame too short");
  }
  const EthernetHeader eth = EthernetHeader::parse(frame);
  if (eth.ethertype == kEthertypeVlan) {
    throw std::invalid_argument("insert_vlan: frame already tagged");
  }
  std::vector<std::uint8_t> out;
  out.reserve(frame.size() + VlanTag::kWireSize);
  // dst + src MACs unchanged.
  out.insert(out.end(), frame.begin(), frame.begin() + 12);
  // TPID + TCI + original ethertype.
  out.resize(12 + 4 + 2);
  store_be16(out.data() + 12, kEthertypeVlan);
  store_be16(out.data() + 14, tci);
  store_be16(out.data() + 16, eth.ethertype);
  // Rest of the original frame.
  out.insert(out.end(), frame.begin() + EthernetHeader::kWireSize, frame.end());
  return out;
}

std::vector<std::vector<std::uint8_t>> tso_segment(
    std::span<const std::uint8_t> frame, std::size_t mss) {
  const PacketView view = PacketView::parse(frame);
  std::vector<std::vector<std::uint8_t>> segments;

  const bool segmentable = view.l3_kind() == L3Kind::ipv4 &&
                           view.l4_kind() == L4Kind::tcp && mss > 0 &&
                           view.payload().size() > mss;
  if (!segmentable) {
    segments.emplace_back(frame.begin(), frame.end());
    return segments;
  }

  const std::size_t header_len = view.payload_offset();
  const std::span<const std::uint8_t> payload = view.payload();
  const TcpHeader tcp = TcpHeader::parse(frame.subspan(view.l4_offset()));
  const Ipv4Header ip = view.ipv4();

  std::size_t offset = 0;
  std::uint16_t ip_id = ip.identification;
  while (offset < payload.size()) {
    const std::size_t chunk = std::min(mss, payload.size() - offset);
    const bool last = offset + chunk == payload.size();

    std::vector<std::uint8_t> seg;
    seg.reserve(header_len + chunk);
    seg.insert(seg.end(), frame.begin(),
               frame.begin() + static_cast<std::ptrdiff_t>(header_len));
    seg.insert(seg.end(), payload.begin() + static_cast<std::ptrdiff_t>(offset),
               payload.begin() + static_cast<std::ptrdiff_t>(offset + chunk));

    // IPv4: total_length, identification.
    const std::size_t l3 = view.l3_offset();
    store_be16(seg.data() + l3 + 2,
               static_cast<std::uint16_t>(Ipv4Header::kWireSize +
                                          TcpHeader::kWireSize + chunk));
    store_be16(seg.data() + l3 + 4, ip_id++);

    // TCP: sequence number; FIN(0x01)/PSH(0x08) only on the last segment.
    const std::size_t l4 = view.l4_offset();
    store_be32(seg.data() + l4 + 4,
               tcp.seq + static_cast<std::uint32_t>(offset));
    if (!last) {
      seg[l4 + 13] = static_cast<std::uint8_t>(seg[l4 + 13] & ~0x09);
    }

    patch_ipv4_checksum(seg);
    patch_l4_checksum(seg);
    segments.push_back(std::move(seg));
    offset += chunk;
  }
  return segments;
}

}  // namespace opendesc::net
