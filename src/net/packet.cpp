#include "net/packet.hpp"

#include <stdexcept>

#include "net/checksum.hpp"

namespace opendesc::net {

PacketView PacketView::parse(std::span<const std::uint8_t> frame) {
  PacketView v;
  v.frame_ = frame;
  v.eth_ = EthernetHeader::parse(frame);
  std::size_t offset = EthernetHeader::kWireSize;
  std::uint16_t ethertype = v.eth_.ethertype;

  if (ethertype == kEthertypeVlan) {
    v.vlan_ = VlanTag::parse(frame.subspan(offset));
    offset += VlanTag::kWireSize;
    ethertype = v.vlan_->inner_ethertype;
  }

  v.l3_offset_ = offset;
  std::uint8_t l4_proto = 0;
  if (ethertype == kEthertypeIpv4) {
    v.l3_kind_ = L3Kind::ipv4;
    v.ipv4_ = Ipv4Header::parse(frame.subspan(offset));
    offset += Ipv4Header::kWireSize;
    l4_proto = v.ipv4_->protocol;
  } else if (ethertype == kEthertypeIpv6) {
    v.l3_kind_ = L3Kind::ipv6;
    v.ipv6_ = Ipv6Header::parse(frame.subspan(offset));
    offset += Ipv6Header::kWireSize;
    l4_proto = v.ipv6_->next_header;
  } else {
    // Non-IP frame: everything after Ethernet is opaque payload.
    v.l4_offset_ = offset;
    v.payload_offset_ = offset;
    return v;
  }

  v.l4_offset_ = offset;
  if (l4_proto == kIpProtoTcp) {
    v.l4_kind_ = L4Kind::tcp;
    const TcpHeader tcp = TcpHeader::parse(frame.subspan(offset));
    v.src_port_ = tcp.src_port;
    v.dst_port_ = tcp.dst_port;
    offset += TcpHeader::kWireSize;
  } else if (l4_proto == kIpProtoUdp) {
    v.l4_kind_ = L4Kind::udp;
    const UdpHeader udp = UdpHeader::parse(frame.subspan(offset));
    v.src_port_ = udp.src_port;
    v.dst_port_ = udp.dst_port;
    offset += UdpHeader::kWireSize;
  } else {
    v.l4_kind_ = L4Kind::other;
  }
  v.payload_offset_ = offset;
  return v;
}

std::span<const std::uint8_t> PacketView::l3_bytes() const noexcept {
  return frame_.subspan(l3_offset_, l4_offset_ - l3_offset_);
}

std::span<const std::uint8_t> PacketView::l4_bytes() const noexcept {
  return frame_.subspan(l4_offset_);
}

std::span<const std::uint8_t> PacketView::payload() const noexcept {
  return frame_.subspan(payload_offset_);
}

PacketBuilder& PacketBuilder::eth(const MacAddress& src, const MacAddress& dst) {
  eth_.src = src;
  eth_.dst = dst;
  return *this;
}

PacketBuilder& PacketBuilder::vlan(std::uint16_t tci) {
  vlan_ = VlanTag{.tci = tci, .inner_ethertype = kEthertypeIpv4};
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(std::uint32_t src, std::uint32_t dst) {
  l3_ = L3Kind::ipv4;
  ip4_src_ = src;
  ip4_dst_ = dst;
  return *this;
}

PacketBuilder& PacketBuilder::ipv6(const std::array<std::uint8_t, 16>& src,
                                   const std::array<std::uint8_t, 16>& dst) {
  l3_ = L3Kind::ipv6;
  ip6_src_ = src;
  ip6_dst_ = dst;
  return *this;
}

PacketBuilder& PacketBuilder::ip_id(std::uint16_t id) {
  ip_id_ = id;
  return *this;
}

PacketBuilder& PacketBuilder::ttl(std::uint8_t value) {
  ttl_ = value;
  return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port, std::uint16_t dst_port) {
  l4_ = L4Kind::tcp;
  sport_ = src_port;
  dport_ = dst_port;
  return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port, std::uint16_t dst_port) {
  l4_ = L4Kind::udp;
  sport_ = src_port;
  dport_ = dst_port;
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::span<const std::uint8_t> bytes) {
  payload_.assign(bytes.begin(), bytes.end());
  return *this;
}

PacketBuilder& PacketBuilder::payload_text(std::string_view text) {
  payload_.assign(text.begin(), text.end());
  return *this;
}

PacketBuilder& PacketBuilder::frame_size(std::size_t size) {
  frame_size_ = size;
  return *this;
}

PacketBuilder& PacketBuilder::corrupt_ip_checksum() {
  corrupt_ip_csum_ = true;
  return *this;
}

PacketBuilder& PacketBuilder::corrupt_l4_checksum() {
  corrupt_l4_csum_ = true;
  return *this;
}

PacketBuilder& PacketBuilder::rx_timestamp(std::uint64_t ns) {
  rx_timestamp_ns_ = ns;
  return *this;
}

PacketBuilder& PacketBuilder::rx_port(std::uint16_t port) {
  rx_port_num_ = port;
  return *this;
}

Packet PacketBuilder::build() const {
  if (l3_ == L3Kind::none || l4_ == L4Kind::none) {
    throw std::logic_error("PacketBuilder: L3 and L4 layers are required");
  }

  std::size_t header_size = EthernetHeader::kWireSize;
  if (vlan_) header_size += VlanTag::kWireSize;
  header_size += (l3_ == L3Kind::ipv4) ? Ipv4Header::kWireSize : Ipv6Header::kWireSize;
  header_size += (l4_ == L4Kind::tcp) ? TcpHeader::kWireSize : UdpHeader::kWireSize;

  std::vector<std::uint8_t> body = payload_;
  if (frame_size_) {
    if (*frame_size_ < header_size + body.size()) {
      if (*frame_size_ < header_size) {
        throw std::invalid_argument("PacketBuilder: frame_size smaller than headers");
      }
      body.resize(*frame_size_ - header_size);
    } else {
      body.resize(*frame_size_ - header_size, 0);
    }
  }

  Packet pkt;
  pkt.rx_timestamp_ns = rx_timestamp_ns_;
  pkt.rx_port = rx_port_num_;
  pkt.data.resize(header_size + body.size());
  std::span<std::uint8_t> out{pkt.data};

  EthernetHeader eth = eth_;
  eth.ethertype = vlan_ ? kEthertypeVlan
                        : (l3_ == L3Kind::ipv4 ? kEthertypeIpv4 : kEthertypeIpv6);
  eth.serialize(out);
  std::size_t offset = EthernetHeader::kWireSize;

  if (vlan_) {
    VlanTag tag = *vlan_;
    tag.inner_ethertype = (l3_ == L3Kind::ipv4) ? kEthertypeIpv4 : kEthertypeIpv6;
    tag.serialize(out.subspan(offset));
    offset += VlanTag::kWireSize;
  }

  const std::size_t l3_offset = offset;
  const std::size_t l4_size =
      ((l4_ == L4Kind::tcp) ? TcpHeader::kWireSize : UdpHeader::kWireSize) + body.size();

  if (l3_ == L3Kind::ipv4) {
    Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kWireSize + l4_size);
    ip.identification = ip_id_;
    ip.ttl = ttl_;
    ip.protocol = (l4_ == L4Kind::tcp) ? kIpProtoTcp : kIpProtoUdp;
    ip.src = ip4_src_;
    ip.dst = ip4_dst_;
    ip.serialize(out.subspan(offset));
    const std::uint16_t csum =
        internet_checksum(out.subspan(offset, Ipv4Header::kWireSize));
    store_be16(out.data() + offset + 10,
               corrupt_ip_csum_ ? static_cast<std::uint16_t>(csum ^ 0xFFFF) : csum);
    offset += Ipv4Header::kWireSize;
  } else {
    Ipv6Header ip;
    ip.payload_length = static_cast<std::uint16_t>(l4_size);
    ip.next_header = (l4_ == L4Kind::tcp) ? kIpProtoTcp : kIpProtoUdp;
    ip.hop_limit = ttl_;
    ip.src = ip6_src_;
    ip.dst = ip6_dst_;
    ip.serialize(out.subspan(offset));
    offset += Ipv6Header::kWireSize;
  }

  const std::size_t l4_offset = offset;
  if (l4_ == L4Kind::tcp) {
    TcpHeader tcp;
    tcp.src_port = sport_;
    tcp.dst_port = dport_;
    tcp.serialize(out.subspan(offset));
    offset += TcpHeader::kWireSize;
  } else {
    UdpHeader udp;
    udp.src_port = sport_;
    udp.dst_port = dport_;
    udp.length = static_cast<std::uint16_t>(l4_size);
    udp.serialize(out.subspan(offset));
    offset += UdpHeader::kWireSize;
  }
  std::copy(body.begin(), body.end(), out.begin() + offset);

  // L4 checksum over pseudo-header + segment (checksum field currently 0).
  const std::span<const std::uint8_t> l4_span =
      std::span<const std::uint8_t>(out).subspan(l4_offset, l4_size);
  const std::uint8_t proto = (l4_ == L4Kind::tcp) ? kIpProtoTcp : kIpProtoUdp;
  std::uint16_t l4_csum =
      (l3_ == L3Kind::ipv4)
          ? l4_checksum_ipv4(ip4_src_, ip4_dst_, proto, l4_span)
          : l4_checksum_ipv6(ip6_src_, ip6_dst_, proto, l4_span);
  if (corrupt_l4_csum_) {
    l4_csum = static_cast<std::uint16_t>(l4_csum ^ 0x5555);
  }
  const std::size_t csum_offset = l4_offset + ((l4_ == L4Kind::tcp) ? 16 : 6);
  store_be16(out.data() + csum_offset, l4_csum);

  (void)l3_offset;
  return pkt;
}

}  // namespace opendesc::net
