// Protocol header types used by the workload generator, the simulated NIC
// pipeline, and the SoftNIC reference implementations.
//
// Headers are plain structs with explicit serialize/parse methods instead of
// packed-struct reinterpret_casts: the byte layout is defined by the
// serializers (network byte order), keeping the code free of alignment and
// aliasing UB (Core Guidelines C.183, ES.48).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.hpp"

namespace opendesc::net {

// Ethertypes and IP protocol numbers used across the project.
inline constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEthertypeIpv6 = 0x86DD;
inline constexpr std::uint16_t kEthertypeVlan = 0x8100;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

/// 48-bit MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const MacAddress&, const MacAddress&) = default;
};

/// Convenience constructor from six octets.
[[nodiscard]] MacAddress make_mac(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                  std::uint8_t d, std::uint8_t e, std::uint8_t f);

/// Ethernet II header (14 bytes on the wire, without VLAN).
struct EthernetHeader {
  static constexpr std::size_t kWireSize = 14;

  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ethertype = kEthertypeIpv4;

  void serialize(std::span<std::uint8_t> out) const;
  static EthernetHeader parse(std::span<const std::uint8_t> in);
};

/// 802.1Q VLAN tag (4 bytes: TPID already consumed as ethertype, then TCI +
/// inner ethertype).
struct VlanTag {
  static constexpr std::size_t kWireSize = 4;

  std::uint16_t tci = 0;  ///< PCP(3) | DEI(1) | VID(12)
  std::uint16_t inner_ethertype = kEthertypeIpv4;

  [[nodiscard]] std::uint16_t vid() const noexcept { return tci & 0x0FFF; }
  [[nodiscard]] std::uint8_t pcp() const noexcept {
    return static_cast<std::uint8_t>(tci >> 13);
  }

  void serialize(std::span<std::uint8_t> out) const;
  static VlanTag parse(std::span<const std::uint8_t> in);
};

/// IPv4 header without options (20 bytes).
struct Ipv4Header {
  static constexpr std::size_t kWireSize = 20;

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  ///< DF set by default
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoTcp;
  std::uint16_t header_checksum = 0;
  std::uint32_t src = 0;  ///< host byte order
  std::uint32_t dst = 0;  ///< host byte order

  void serialize(std::span<std::uint8_t> out) const;
  static Ipv4Header parse(std::span<const std::uint8_t> in);
};

/// IPv6 header (40 bytes).
struct Ipv6Header {
  static constexpr std::size_t kWireSize = 40;

  std::uint32_t flow_label = 0;  ///< low 20 bits used
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = kIpProtoTcp;
  std::uint8_t hop_limit = 64;
  std::array<std::uint8_t, 16> src{};
  std::array<std::uint8_t, 16> dst{};

  void serialize(std::span<std::uint8_t> out) const;
  static Ipv6Header parse(std::span<const std::uint8_t> in);
};

/// TCP header without options (20 bytes).
struct TcpHeader {
  static constexpr std::size_t kWireSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0x18;  ///< PSH|ACK by default
  std::uint16_t window = 0xFFFF;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  void serialize(std::span<std::uint8_t> out) const;
  static TcpHeader parse(std::span<const std::uint8_t> in);
};

/// UDP header (8 bytes).
struct UdpHeader {
  static constexpr std::size_t kWireSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  void serialize(std::span<std::uint8_t> out) const;
  static UdpHeader parse(std::span<const std::uint8_t> in);
};

/// Dotted-quad helper for tests and examples ("10.0.0.1" -> host-order u32).
[[nodiscard]] std::uint32_t ipv4_from_string(const std::string& dotted);
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr);

}  // namespace opendesc::net
