// Synthetic workload generation.
//
// The paper evaluates on traffic a real testbed would supply; we synthesize
// equivalent traces: multi-flow TCP/UDP traffic with a Zipf flow-popularity
// skew, optional 802.1Q tags, and optional key-value request payloads
// matching the Fig. 1 scenario (a KV store whose NIC extracts the request
// key, following FlexNIC).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/packet.hpp"

namespace opendesc::net {

/// Parameters of a synthetic trace.
struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::size_t flow_count = 64;         ///< distinct 5-tuples
  double zipf_skew = 0.0;              ///< 0 = uniform; ~0.99 = web-like skew
  std::size_t min_frame = 64;          ///< bytes including headers
  std::size_t max_frame = 1500;
  double vlan_probability = 0.0;       ///< fraction of tagged frames
  double udp_fraction = 0.5;           ///< rest is TCP
  double ipv6_fraction = 0.0;          ///< fraction of IPv6 flows
  bool kv_requests = false;            ///< payload = "GET <key>\n"
  std::size_t kv_key_space = 1024;     ///< distinct keys when kv_requests
  double bad_l4_csum_fraction = 0.0;   ///< failure injection
  std::uint64_t inter_arrival_ns = 100;///< timestamp spacing
  /// Flow churn: per-packet probability that the drawn flow's 5-tuple is
  /// replaced with a freshly minted one before the packet is built.  The
  /// flow slot keeps its Zipf popularity; the old tuple goes cold — the
  /// turnover pattern that exercises flow-table eviction and idle expiry.
  double flow_churn = 0.0;
};

/// A single flow's immutable 5-tuple (plus its VLAN TCI if tagged).
struct FlowSpec {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::array<std::uint8_t, 16> src_ip6{};
  std::array<std::uint8_t, 16> dst_ip6{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  bool is_udp = false;
  bool is_ipv6 = false;
  bool tagged = false;
  std::uint16_t vlan_tci = 0;
};

/// Deterministic trace generator.  All randomness flows from the seed, so a
/// (config, n) pair always denotes the same trace — tests and benches rely
/// on this to compare implementations on identical input.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Generates the next packet of the trace.
  [[nodiscard]] Packet next();

  /// Generates a batch of `n` packets.
  [[nodiscard]] std::vector<Packet> batch(std::size_t n);

  /// Flow table built at construction (one entry per configured flow).
  [[nodiscard]] const std::vector<FlowSpec>& flows() const noexcept { return flows_; }

  /// Index of the flow used for the packet most recently returned by next().
  [[nodiscard]] std::size_t last_flow_index() const noexcept { return last_flow_; }

  /// Flows replaced so far by config.flow_churn turnover.
  [[nodiscard]] std::uint64_t churn_events() const noexcept {
    return churn_events_;
  }

 private:
  [[nodiscard]] std::size_t pick_flow();
  [[nodiscard]] FlowSpec make_flow();

  WorkloadConfig config_;
  Rng rng_;
  std::vector<FlowSpec> flows_;
  std::vector<double> zipf_cdf_;  ///< empty when skew == 0
  std::uint64_t clock_ns_ = 0;
  std::size_t last_flow_ = 0;
  std::uint16_t next_ip_id_ = 1;
  std::uint64_t churn_events_ = 0;
};

/// The key a KV request payload ("GET key-000042\n") refers to, or empty if
/// the payload is not a KV request.  Shared by the simulated NIC offload and
/// the SoftNIC fallback so both compute identical ground truth.
[[nodiscard]] std::string kv_extract_key(std::span<const std::uint8_t> payload);

}  // namespace opendesc::net
