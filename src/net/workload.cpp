#include "net/workload.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace opendesc::net {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.flow_count == 0) {
    throw std::invalid_argument("WorkloadGenerator: flow_count must be > 0");
  }
  if (config_.min_frame < 60 || config_.min_frame > config_.max_frame) {
    throw std::invalid_argument("WorkloadGenerator: bad frame size range");
  }

  flows_.reserve(config_.flow_count);
  for (std::size_t i = 0; i < config_.flow_count; ++i) {
    flows_.push_back(make_flow());
  }

  if (config_.zipf_skew > 0.0) {
    zipf_cdf_.resize(config_.flow_count);
    double total = 0.0;
    for (std::size_t i = 0; i < config_.flow_count; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_skew);
      zipf_cdf_[i] = total;
    }
    for (auto& v : zipf_cdf_) {
      v /= total;
    }
  }
}

FlowSpec WorkloadGenerator::make_flow() {
  FlowSpec f;
  f.src_ip = 0x0A000000u | static_cast<std::uint32_t>(rng_.bounded(1 << 24));
  f.dst_ip = 0xC0A80000u | static_cast<std::uint32_t>(rng_.bounded(1 << 16));
  f.src_port = static_cast<std::uint16_t>(rng_.range(1024, 65535));
  f.dst_port = static_cast<std::uint16_t>(rng_.range(1, 1023));
  f.is_udp = rng_.chance(config_.udp_fraction);
  f.is_ipv6 = rng_.chance(config_.ipv6_fraction);
  if (f.is_ipv6) {
    f.src_ip6[0] = 0x20;
    f.src_ip6[1] = 0x01;
    f.dst_ip6[0] = 0x20;
    f.dst_ip6[1] = 0x01;
    for (int b = 8; b < 16; ++b) {
      f.src_ip6[b] = static_cast<std::uint8_t>(rng_.next());
      f.dst_ip6[b] = static_cast<std::uint8_t>(rng_.next());
    }
  }
  f.tagged = rng_.chance(config_.vlan_probability);
  f.vlan_tci = static_cast<std::uint16_t>(rng_.range(1, 4094));
  return f;
}

std::size_t WorkloadGenerator::pick_flow() {
  if (zipf_cdf_.empty()) {
    return static_cast<std::size_t>(rng_.bounded(flows_.size()));
  }
  const double u = rng_.uniform01();
  // Binary search the CDF.
  std::size_t lo = 0, hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Packet WorkloadGenerator::next() {
  last_flow_ = pick_flow();
  if (config_.flow_churn > 0.0 && rng_.chance(config_.flow_churn)) {
    // Turnover: the slot keeps its popularity rank, the tuple is new — the
    // previous flow ends and a fresh one takes its place in the mix.
    flows_[last_flow_] = make_flow();
    ++churn_events_;
  }
  const FlowSpec& f = flows_[last_flow_];

  PacketBuilder b;
  b.eth(make_mac(0x02, 0, 0, 0, 0, 1), make_mac(0x02, 0, 0, 0, 0, 2));
  if (f.tagged) {
    b.vlan(f.vlan_tci);
  }
  if (f.is_ipv6) {
    b.ipv6(f.src_ip6, f.dst_ip6);
  } else {
    b.ipv4(f.src_ip, f.dst_ip);
    b.ip_id(next_ip_id_++);
  }
  if (f.is_udp) {
    b.udp(f.src_port, f.dst_port);
  } else {
    b.tcp(f.src_port, f.dst_port);
  }

  if (config_.kv_requests) {
    char key[32];
    std::snprintf(key, sizeof key, "GET key-%06llu\n",
                  static_cast<unsigned long long>(rng_.bounded(config_.kv_key_space)));
    b.payload_text(key);
  }

  const std::size_t size =
      static_cast<std::size_t>(rng_.range(config_.min_frame, config_.max_frame));
  b.frame_size(size);

  if (config_.bad_l4_csum_fraction > 0.0 && rng_.chance(config_.bad_l4_csum_fraction)) {
    b.corrupt_l4_checksum();
  }

  clock_ns_ += config_.inter_arrival_ns;
  b.rx_timestamp(clock_ns_);
  b.rx_port(0);
  return b.build();
}

std::vector<Packet> WorkloadGenerator::batch(std::size_t n) {
  std::vector<Packet> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(next());
  }
  return out;
}

std::string kv_extract_key(std::span<const std::uint8_t> payload) {
  // Accept "GET <key>\n" and "SET <key> ..." request lines.
  static constexpr std::string_view kGet = "GET ";
  static constexpr std::string_view kSet = "SET ";
  const std::string_view text(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  std::string_view rest;
  if (text.starts_with(kGet)) {
    rest = text.substr(kGet.size());
  } else if (text.starts_with(kSet)) {
    rest = text.substr(kSet.size());
  } else {
    return {};
  }
  const std::size_t end = rest.find_first_of(" \n\r");
  return std::string(rest.substr(0, end == std::string_view::npos ? rest.size() : end));
}

}  // namespace opendesc::net
