// TX offload reference implementations.
//
// The paper proposes that every offload feature ships a reference
// implementation usable on either side of the link (§2: "we propose each
// offload feature to come with a reference P4 implementation", realized
// here in C++).  These routines are used by the simulated NIC to *execute*
// TX offload requests (checksum insertion, VLAN insertion, TCP
// segmentation) and by the host-side SoftNIC fallback when a chosen
// descriptor format cannot express the request.
#pragma once

#include <vector>

#include "net/packet.hpp"

namespace opendesc::net {

/// Recomputes and patches the L4 checksum of an Ethernet/IPv4|IPv6/TCP|UDP
/// frame in place.  No-op for frames without a TCP/UDP header.
void patch_l4_checksum(std::span<std::uint8_t> frame);

/// Recomputes and patches the IPv4 header checksum in place (no-op for
/// non-IPv4 frames).
void patch_ipv4_checksum(std::span<std::uint8_t> frame);

/// Inserts an 802.1Q tag with the given TCI after the Ethernet header.
/// Returns the new frame (original + 4 bytes).  Throws on non-Ethernet
/// frames or already-tagged frames.
[[nodiscard]] std::vector<std::uint8_t> insert_vlan(
    std::span<const std::uint8_t> frame, std::uint16_t tci);

/// TCP segmentation offload: splits an Ethernet/IPv4/TCP frame whose
/// payload exceeds `mss` into a train of frames with at most `mss` payload
/// bytes each.  Sequence numbers advance per segment; IPv4 identification
/// increments; total lengths, IP and TCP checksums are recomputed; FIN/PSH
/// flags are kept only on the final segment.  A frame with payload <= mss
/// (or a non-TCP frame) is returned unchanged as a single segment.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> tso_segment(
    std::span<const std::uint8_t> frame, std::size_t mss);

}  // namespace opendesc::net
