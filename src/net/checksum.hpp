// RFC 1071 Internet checksum and the TCP/UDP pseudo-header variants.
//
// These routines are used in three roles: (1) the workload generator stamps
// correct checksums on synthesized packets, (2) the simulated NIC "hardware"
// verifies them to produce csum-ok completion metadata, and (3) the SoftNIC
// fallback recomputes them on the host when the chosen completion path does
// not carry checksum results.
#pragma once

#include <cstdint>
#include <span>

namespace opendesc::net {

/// One's-complement running sum that can be folded into a checksum.  Allows
/// incremental computation over discontiguous regions (pseudo-header + body).
class ChecksumAccumulator {
 public:
  /// Adds a byte range.  Ranges added separately must each start at an even
  /// offset of the conceptual message; `add` handles a trailing odd byte of
  /// the *final* range only if no further ranges are added afterwards at odd
  /// alignment (standard RFC 1071 usage).
  void add(std::span<const std::uint8_t> data) noexcept;

  /// Adds a 16-bit word in host order.
  void add_word(std::uint16_t word) noexcept;

  /// Folds carries and returns the one's-complement checksum (host order).
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  ///< previous add() ended on an odd byte
};

/// Checksum over a single contiguous range (e.g. an IPv4 header with its
/// checksum field zeroed).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Verifies a range that *includes* its checksum field; returns true when
/// the folded sum is zero (i.e. the checksum is valid).
[[nodiscard]] bool verify_checksum(std::span<const std::uint8_t> data) noexcept;

/// TCP/UDP checksum over an IPv4 pseudo-header + L4 segment.
/// `l4` must include the L4 header with its checksum field zeroed.
[[nodiscard]] std::uint16_t l4_checksum_ipv4(std::uint32_t src_addr,
                                             std::uint32_t dst_addr,
                                             std::uint8_t protocol,
                                             std::span<const std::uint8_t> l4) noexcept;

/// TCP/UDP checksum over an IPv6 pseudo-header + L4 segment.
[[nodiscard]] std::uint16_t l4_checksum_ipv6(std::span<const std::uint8_t> src_addr,
                                             std::span<const std::uint8_t> dst_addr,
                                             std::uint8_t protocol,
                                             std::span<const std::uint8_t> l4) noexcept;

}  // namespace opendesc::net
