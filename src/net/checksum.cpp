#include "net/checksum.hpp"

#include "common/bytes.hpp"

namespace opendesc::net {

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Previous range ended mid-word: this byte is the low half of that word.
    sum_ += data[0];
    i = 1;
    odd_ = false;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += load_be16(data.data() + i);
  }
  if (i < data.size()) {
    sum_ += std::uint16_t(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_word(std::uint16_t word) noexcept {
  sum_ += word;
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) {
    s = (s & 0xFFFF) + (s >> 16);
  }
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

bool verify_checksum(std::span<const std::uint8_t> data) noexcept {
  return internet_checksum(data) == 0;
}

std::uint16_t l4_checksum_ipv4(std::uint32_t src_addr, std::uint32_t dst_addr,
                               std::uint8_t protocol,
                               std::span<const std::uint8_t> l4) noexcept {
  ChecksumAccumulator acc;
  acc.add_word(static_cast<std::uint16_t>(src_addr >> 16));
  acc.add_word(static_cast<std::uint16_t>(src_addr));
  acc.add_word(static_cast<std::uint16_t>(dst_addr >> 16));
  acc.add_word(static_cast<std::uint16_t>(dst_addr));
  acc.add_word(protocol);
  acc.add_word(static_cast<std::uint16_t>(l4.size()));
  acc.add(l4);
  return acc.finish();
}

std::uint16_t l4_checksum_ipv6(std::span<const std::uint8_t> src_addr,
                               std::span<const std::uint8_t> dst_addr,
                               std::uint8_t protocol,
                               std::span<const std::uint8_t> l4) noexcept {
  ChecksumAccumulator acc;
  acc.add(src_addr);
  acc.add(dst_addr);
  const std::uint32_t len = static_cast<std::uint32_t>(l4.size());
  acc.add_word(static_cast<std::uint16_t>(len >> 16));
  acc.add_word(static_cast<std::uint16_t>(len));
  acc.add_word(protocol);
  acc.add(l4);
  return acc.finish();
}

}  // namespace opendesc::net
