#include "softnic/toeplitz.hpp"

#include <cassert>

#include "common/bytes.hpp"

namespace opendesc::softnic {

std::uint32_t toeplitz_hash(std::span<const std::uint8_t> key,
                            std::span<const std::uint8_t> input) noexcept {
  assert(key.size() >= input.size() + 4);
  std::uint32_t result = 0;
  // The sliding 32-bit key window starts at the first 4 key bytes.
  std::uint32_t window = load_be32(key.data());
  std::size_t next_key_byte = 4;
  for (const std::uint8_t byte : input) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) {
        result ^= window;
      }
      // Slide the window one bit left, pulling in the next key bit.
      const std::uint8_t next =
          next_key_byte < key.size() ? key[next_key_byte] : 0;
      window = (window << 1) | ((next >> bit) & 1);
      if (bit == 0) {
        ++next_key_byte;
      }
    }
  }
  return result;
}

namespace {

std::uint32_t hash_concat(std::span<const std::uint8_t> input) noexcept {
  return toeplitz_hash(kDefaultRssKey, input);
}

}  // namespace

std::uint32_t rss_ipv4(std::uint32_t src_addr, std::uint32_t dst_addr) noexcept {
  std::uint8_t buf[8];
  store_be32(buf, src_addr);
  store_be32(buf + 4, dst_addr);
  return hash_concat(buf);
}

std::uint32_t rss_ipv4_l4(std::uint32_t src_addr, std::uint32_t dst_addr,
                          std::uint16_t src_port, std::uint16_t dst_port) noexcept {
  std::uint8_t buf[12];
  store_be32(buf, src_addr);
  store_be32(buf + 4, dst_addr);
  store_be16(buf + 8, src_port);
  store_be16(buf + 10, dst_port);
  return hash_concat(buf);
}

std::uint32_t rss_ipv6(std::span<const std::uint8_t> src_addr,
                       std::span<const std::uint8_t> dst_addr) noexcept {
  std::uint8_t buf[32];
  std::copy(src_addr.begin(), src_addr.begin() + 16, buf);
  std::copy(dst_addr.begin(), dst_addr.begin() + 16, buf + 16);
  return hash_concat(buf);
}

std::uint32_t rss_ipv6_l4(std::span<const std::uint8_t> src_addr,
                          std::span<const std::uint8_t> dst_addr,
                          std::uint16_t src_port, std::uint16_t dst_port) noexcept {
  std::uint8_t buf[36];
  std::copy(src_addr.begin(), src_addr.begin() + 16, buf);
  std::copy(dst_addr.begin(), dst_addr.begin() + 16, buf + 16);
  store_be16(buf + 32, src_port);
  store_be16(buf + 34, dst_port);
  return hash_concat(buf);
}

}  // namespace opendesc::softnic
