// The software-fallback cost model  w : Σ → ℝ₊ ∪ {∞}  of §4 (Eq. 1).
//
// Costs are in nanoseconds per packet.  Defaults are hand-calibrated to the
// relative magnitudes the paper assumes (software RSS over the 12-byte tuple
// is cheaper than recomputing a full-payload L4 checksum) and can be
// re-measured against this machine via measure().
#pragma once

#include <limits>
#include <map>

#include "softnic/compute.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::softnic {

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Per-semantic software cost table.
class CostTable {
 public:
  /// Builds the default table for all builtins of `registry`.  Extension
  /// semantics default to infinity until set() is called for them.
  explicit CostTable(const SemanticRegistry& registry);

  /// Cost of emulating `id` in software; kInfiniteCost when impossible.
  [[nodiscard]] double cost(SemanticId id) const;

  /// Overrides the cost of one semantic (ns).
  void set(SemanticId id, double cost_ns);

  [[nodiscard]] bool is_finite(SemanticId id) const { return cost(id) < kInfiniteCost; }

  /// Re-measures every computable builtin by timing `engine.compute` over
  /// the provided sample packets and stores the mean ns per call.
  void measure(const ComputeEngine& engine,
               std::span<const net::Packet> samples);

 private:
  std::map<std::uint32_t, double> costs_;
};

}  // namespace opendesc::softnic
