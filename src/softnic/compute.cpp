#include "softnic/compute.hpp"

#include "common/error.hpp"
#include "net/checksum.hpp"
#include "net/workload.hpp"
#include "softnic/toeplitz.hpp"

namespace opendesc::softnic {

std::uint32_t fnv1a32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t hash = 0x811c9dc5u;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x01000193u;
  }
  return hash;
}

std::uint16_t encode_packet_type(const net::PacketView& view) noexcept {
  std::uint16_t type = 0;
  switch (view.l3_kind()) {
    case net::L3Kind::ipv4: type |= 1; break;
    case net::L3Kind::ipv6: type |= 2; break;
    case net::L3Kind::none: break;
  }
  switch (view.l4_kind()) {
    case net::L4Kind::tcp: type |= 1 << 4; break;
    case net::L4Kind::udp: type |= 2 << 4; break;
    case net::L4Kind::other: type |= 3 << 4; break;
    case net::L4Kind::none: break;
  }
  if (view.has_vlan()) {
    type |= 1 << 8;
  }
  return type;
}

namespace {

std::uint32_t compute_rss(const net::PacketView& view) {
  const bool has_ports = view.l4_kind() == net::L4Kind::tcp ||
                         view.l4_kind() == net::L4Kind::udp;
  if (view.l3_kind() == net::L3Kind::ipv4) {
    const auto& ip = view.ipv4();
    return has_ports
               ? rss_ipv4_l4(ip.src, ip.dst, view.src_port(), view.dst_port())
               : rss_ipv4(ip.src, ip.dst);
  }
  if (view.l3_kind() == net::L3Kind::ipv6) {
    const auto& ip = view.ipv6();
    return has_ports
               ? rss_ipv6_l4(ip.src, ip.dst, view.src_port(), view.dst_port())
               : rss_ipv6(ip.src, ip.dst);
  }
  return 0;
}

// rss_type encoding mirrors common NIC completion fields: which tuple the
// hash was computed over.
std::uint8_t compute_rss_type(const net::PacketView& view) {
  const bool has_ports = view.l4_kind() == net::L4Kind::tcp ||
                         view.l4_kind() == net::L4Kind::udp;
  if (view.l3_kind() == net::L3Kind::ipv4) {
    return has_ports ? 2 : 1;
  }
  if (view.l3_kind() == net::L3Kind::ipv6) {
    return has_ports ? 4 : 3;
  }
  return 0;
}

bool compute_ip_csum_ok(const net::PacketView& view) {
  if (view.l3_kind() != net::L3Kind::ipv4) {
    return view.l3_kind() == net::L3Kind::ipv6;  // v6 has no header checksum
  }
  return net::verify_checksum(view.l3_bytes());
}

std::uint16_t compute_ip_checksum(const net::PacketView& view) {
  if (view.l3_kind() != net::L3Kind::ipv4) {
    return 0;
  }
  // Checksum over the header with the checksum field zeroed = correct value.
  std::array<std::uint8_t, net::Ipv4Header::kWireSize> hdr{};
  const auto bytes = view.l3_bytes();
  std::copy(bytes.begin(), bytes.begin() + hdr.size(), hdr.begin());
  hdr[10] = 0;
  hdr[11] = 0;
  return net::internet_checksum(hdr);
}

std::uint16_t compute_l4_checksum(const net::PacketView& view) {
  if (view.l4_kind() != net::L4Kind::tcp && view.l4_kind() != net::L4Kind::udp) {
    return 0;
  }
  // Recompute over a copy with the stored checksum zeroed.
  std::vector<std::uint8_t> l4(view.l4_bytes().begin(), view.l4_bytes().end());
  const std::size_t csum_off = view.l4_kind() == net::L4Kind::tcp ? 16 : 6;
  l4[csum_off] = 0;
  l4[csum_off + 1] = 0;
  const std::uint8_t proto = view.l4_kind() == net::L4Kind::tcp
                                 ? net::kIpProtoTcp
                                 : net::kIpProtoUdp;
  if (view.l3_kind() == net::L3Kind::ipv4) {
    return net::l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst, proto, l4);
  }
  if (view.l3_kind() == net::L3Kind::ipv6) {
    return net::l4_checksum_ipv6(view.ipv6().src, view.ipv6().dst, proto, l4);
  }
  return 0;
}

bool compute_l4_csum_ok(const net::PacketView& view) {
  if (view.l4_kind() != net::L4Kind::tcp && view.l4_kind() != net::L4Kind::udp) {
    return false;
  }
  std::uint16_t stored = 0;
  const auto l4 = view.l4_bytes();
  const std::size_t csum_off = view.l4_kind() == net::L4Kind::tcp ? 16 : 6;
  stored = static_cast<std::uint16_t>((l4[csum_off] << 8) | l4[csum_off + 1]);
  return stored == compute_l4_checksum(view);
}

std::uint32_t compute_flow_id(const net::PacketView& view) {
  // FNV over the canonical 5-tuple bytes — models a match-action flow tag.
  std::uint8_t buf[13] = {};
  if (view.l3_kind() == net::L3Kind::ipv4) {
    store_be32(buf, view.ipv4().src);
    store_be32(buf + 4, view.ipv4().dst);
    buf[8] = view.ipv4().protocol;
  }
  store_be16(buf + 9, view.src_port());
  store_be16(buf + 11, view.dst_port());
  return fnv1a32(buf);
}

std::uint32_t compute_kv_key_hash(const net::PacketView& view) {
  const std::string key = net::kv_extract_key(view.payload());
  if (key.empty()) {
    return 0;
  }
  return fnv1a32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
}

}  // namespace

ComputeEngine::ComputeEngine(const SemanticRegistry& registry)
    : registry_(registry) {}

void ComputeEngine::set_custom(SemanticId id, CustomFn fn) {
  custom_[raw(id)] = std::move(fn);
}

bool ComputeEngine::can_compute(SemanticId id) const {
  if (custom_.contains(raw(id))) {
    return true;
  }
  switch (id) {
    case SemanticId::mark:
    case SemanticId::lro_seg_count:
      return false;  // NIC-state dependent: w(s) = infinity in software
    case SemanticId::tx_buf_addr:
    case SemanticId::tx_buf_len:
    case SemanticId::tx_eop:
    case SemanticId::tx_csum_en:
    case SemanticId::tx_csum_offset:
    case SemanticId::tx_tso_en:
    case SemanticId::tx_tso_mss:
    case SemanticId::tx_vlan_insert:
      return false;  // host-produced TX intentions, not derivable from a frame
    default:
      break;
  }
  // Builtins all have reference implementations; unknown extensions do not.
  return raw(id) < kFirstExtensionId;
}

std::uint64_t ComputeEngine::compute(SemanticId id,
                                     std::span<const std::uint8_t> frame,
                                     const net::PacketView& view,
                                     const RxContext& ctx) const {
  if (const auto it = custom_.find(raw(id)); it != custom_.end()) {
    return it->second(frame, view, ctx);
  }
  switch (id) {
    case SemanticId::rss_hash: return compute_rss(view);
    case SemanticId::rss_type: return compute_rss_type(view);
    case SemanticId::ip_csum_ok: return compute_ip_csum_ok(view) ? 1 : 0;
    case SemanticId::l4_csum_ok: return compute_l4_csum_ok(view) ? 1 : 0;
    case SemanticId::ip_checksum: return compute_ip_checksum(view);
    case SemanticId::l4_checksum: return compute_l4_checksum(view);
    case SemanticId::ip_id:
      return view.l3_kind() == net::L3Kind::ipv4 ? view.ipv4().identification : 0;
    case SemanticId::vlan_tci: return view.has_vlan() ? view.vlan().tci : 0;
    case SemanticId::vlan_stripped: return view.has_vlan() ? 1 : 0;
    case SemanticId::timestamp: return ctx.rx_timestamp_ns;
    case SemanticId::flow_id: return compute_flow_id(view);
    case SemanticId::packet_type: return encode_packet_type(view);
    case SemanticId::pkt_len: return frame.size();
    case SemanticId::queue_id: return ctx.queue_id;
    case SemanticId::seq_no: return ctx.seq_no;
    case SemanticId::kv_key_hash: return compute_kv_key_hash(view);
    case SemanticId::mark:
    case SemanticId::lro_seg_count:
    case SemanticId::tx_buf_addr:
    case SemanticId::tx_buf_len:
    case SemanticId::tx_eop:
    case SemanticId::tx_csum_en:
    case SemanticId::tx_csum_offset:
    case SemanticId::tx_tso_en:
    case SemanticId::tx_tso_mss:
    case SemanticId::tx_vlan_insert:
      throw Error(ErrorKind::semantic,
                  "semantic '" + registry_.name(id) +
                      "' has no software implementation (w = infinity)");
  }
  throw Error(ErrorKind::semantic, "no implementation registered for semantic id " +
                                       std::to_string(raw(id)));
}

std::uint64_t ComputeEngine::hardware_value(SemanticId id,
                                            std::span<const std::uint8_t> frame,
                                            const net::PacketView& view,
                                            const RxContext& ctx) const {
  switch (id) {
    case SemanticId::mark: return ctx.mark;
    case SemanticId::lro_seg_count: return ctx.lro_segments;
    default: return compute(id, frame, view, ctx);
  }
}

}  // namespace opendesc::softnic
