#include "softnic/semantics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::softnic {

SemanticRegistry::SemanticRegistry() {
  entries_ = {
      {SemanticId::rss_hash, "rss", 32, "Toeplitz hash of the 5-tuple"},
      {SemanticId::rss_type, "rss_type", 8, "hash input descriptor"},
      {SemanticId::ip_csum_ok, "ip_csum_ok", 1, "IPv4 header checksum valid"},
      {SemanticId::l4_csum_ok, "l4_csum_ok", 1, "TCP/UDP checksum valid"},
      {SemanticId::ip_checksum, "ip_checksum", 16, "computed IPv4 header checksum"},
      {SemanticId::l4_checksum, "l4_checksum", 16, "computed L4 checksum"},
      {SemanticId::ip_id, "ip_id", 16, "IPv4 identification field"},
      {SemanticId::vlan_tci, "vlan", 16, "stripped 802.1Q TCI"},
      {SemanticId::vlan_stripped, "vlan_stripped", 1, "VLAN tag was removed"},
      {SemanticId::timestamp, "timestamp", 64, "arrival timestamp in ns"},
      {SemanticId::flow_id, "flow_id", 32, "match-action flow tag"},
      {SemanticId::packet_type, "packet_type", 16, "parsed L2/L3/L4 kinds"},
      {SemanticId::pkt_len, "pkt_len", 16, "received frame length"},
      {SemanticId::queue_id, "queue_id", 16, "receive queue index"},
      {SemanticId::seq_no, "seq_no", 32, "completion sequence number"},
      {SemanticId::mark, "mark", 32, "application-defined mark"},
      {SemanticId::lro_seg_count, "lro_seg_count", 8, "coalesced segment count"},
      {SemanticId::kv_key_hash, "kv_key_hash", 32, "hash of KV request key"},
      {SemanticId::tx_buf_addr, "tx_buf_addr", 64, "TX frame DMA address"},
      {SemanticId::tx_buf_len, "tx_buf_len", 16, "TX frame length"},
      {SemanticId::tx_eop, "tx_eop", 1, "TX end-of-packet marker"},
      {SemanticId::tx_csum_en, "tx_csum_en", 1, "request L4 checksum insertion"},
      {SemanticId::tx_csum_offset, "tx_csum_offset", 8, "checksum field offset"},
      {SemanticId::tx_tso_en, "tx_tso_en", 1, "request TCP segmentation"},
      {SemanticId::tx_tso_mss, "tx_tso_mss", 16, "TSO maximum segment size"},
      {SemanticId::tx_vlan_insert, "tx_vlan_insert", 16, "VLAN TCI to insert"},
  };
  static_assert(kBuiltinSemanticCount == 26);
}

SemanticId SemanticRegistry::register_extension(std::string_view name,
                                                std::size_t bit_width,
                                                std::string_view description) {
  if (find(name).has_value()) {
    throw Error(ErrorKind::semantic,
                "semantic '" + std::string(name) + "' already registered");
  }
  if (bit_width == 0 || bit_width > 64) {
    throw Error(ErrorKind::semantic, "semantic bit width must be in [1, 64]");
  }
  const auto id = static_cast<SemanticId>(next_extension_++);
  entries_.push_back(SemanticInfo{id, std::string(name), bit_width,
                                  std::string(description)});
  return id;
}

std::optional<SemanticId> SemanticRegistry::find(std::string_view name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const SemanticInfo& e) { return e.name == name; });
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->id;
}

const SemanticInfo& SemanticRegistry::info(SemanticId id) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const SemanticInfo& e) { return e.id == id; });
  if (it == entries_.end()) {
    throw Error(ErrorKind::semantic,
                "unknown semantic id " + std::to_string(raw(id)));
  }
  return *it;
}

}  // namespace opendesc::softnic
