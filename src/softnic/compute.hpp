// Reference implementations of every builtin semantic.
//
// The same routines serve two roles (mirroring §3/§4 of the paper):
//  * as the *hardware* of the simulated NICs — sim::NicSimulator calls them
//    to fill the fields of whichever completion path the compiler selected;
//  * as the *SoftNIC fallback shims* — runtime::MetadataFacade calls them on
//    the host for each semantic in Req \ Prov(p*).
// Keeping one implementation guarantees the integration tests compare
// accessor-read values against identical ground truth.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::softnic {

/// Receive-side context.  On the NIC side all fields are known; on the
/// host (SoftNIC fallback) side NIC-private state is absent and
/// rx_timestamp_ns is whatever clock the host reads — the paper's point
/// that some semantics degrade or disappear in software.
struct RxContext {
  std::uint16_t queue_id = 0;
  std::uint32_t seq_no = 0;
  std::uint32_t mark = 0;            ///< value a match-action rule would set
  std::uint8_t lro_segments = 1;     ///< hardware LRO coalescing count
  std::uint64_t rx_timestamp_ns = 0; ///< arrival time (hardware-stamped)
};

/// 32-bit FNV-1a, used for flow ids and KV key hashes.
[[nodiscard]] std::uint32_t fnv1a32(std::span<const std::uint8_t> data) noexcept;

/// packet_type encoding: bits[3:0] L3 (0 none, 1 v4, 2 v6),
/// bits[7:4] L4 (0 none, 1 tcp, 2 udp, 3 other), bit 8 VLAN-tagged.
[[nodiscard]] std::uint16_t encode_packet_type(const net::PacketView& view) noexcept;

/// Computes builtin and custom semantics from a parsed packet.
class ComputeEngine {
 public:
  using CustomFn = std::function<std::uint64_t(
      std::span<const std::uint8_t>, const net::PacketView&, const RxContext&)>;

  explicit ComputeEngine(const SemanticRegistry& registry);

  /// Installs the software implementation of an extension semantic.
  void set_custom(SemanticId id, CustomFn fn);

  /// True when compute() would succeed for this id (builtin with a software
  /// definition, or extension with an installed CustomFn).  `mark` and
  /// `lro_seg_count` are NIC-state-dependent and have *no* software
  /// equivalent — they model the paper's w(s) = ∞ case.
  [[nodiscard]] bool can_compute(SemanticId id) const;

  /// Ground-truth value of a semantic computed from the frame bytes.
  /// Throws Error(semantic) when the semantic has no software
  /// implementation (see can_compute).
  [[nodiscard]] std::uint64_t compute(SemanticId id,
                                      std::span<const std::uint8_t> frame,
                                      const net::PacketView& view,
                                      const RxContext& ctx) const;

  /// The value the *hardware* would produce.  Identical to compute() except
  /// that NIC-state-dependent semantics (mark, lro_seg_count) are resolved
  /// from the RxContext instead of throwing.
  [[nodiscard]] std::uint64_t hardware_value(SemanticId id,
                                             std::span<const std::uint8_t> frame,
                                             const net::PacketView& view,
                                             const RxContext& ctx) const;

  [[nodiscard]] const SemanticRegistry& registry() const noexcept { return registry_; }

 private:
  const SemanticRegistry& registry_;
  std::unordered_map<std::uint32_t, CustomFn> custom_;
};

}  // namespace opendesc::softnic
