#include "softnic/cost.hpp"

#include <chrono>

namespace opendesc::softnic {

namespace {

double default_cost(SemanticId id) {
  // Nanoseconds per packet; relative order is what matters for Eq. 1.
  switch (id) {
    case SemanticId::rss_hash: return 20.0;       // Toeplitz over 12 bytes
    case SemanticId::rss_type: return 2.0;
    case SemanticId::ip_csum_ok: return 25.0;     // 20-byte header sum
    case SemanticId::l4_csum_ok: return 150.0;    // touches the full payload
    case SemanticId::ip_checksum: return 25.0;
    case SemanticId::l4_checksum: return 150.0;
    case SemanticId::ip_id: return 4.0;           // header field read
    case SemanticId::vlan_tci: return 5.0;
    case SemanticId::vlan_stripped: return 2.0;
    case SemanticId::timestamp: return 40.0;      // degraded software clock
    case SemanticId::flow_id: return 22.0;
    case SemanticId::packet_type: return 12.0;
    case SemanticId::pkt_len: return 1.0;
    case SemanticId::queue_id: return 1.0;
    case SemanticId::seq_no: return 1.0;
    case SemanticId::mark: return kInfiniteCost;          // NIC rule state
    case SemanticId::lro_seg_count: return kInfiniteCost; // NIC LRO state
    case SemanticId::kv_key_hash: return 60.0;    // payload parse + hash
    // TX side: emulating the offload on the host before posting.
    case SemanticId::tx_buf_addr: return kInfiniteCost;  // fundamental
    case SemanticId::tx_buf_len: return kInfiniteCost;   // fundamental
    case SemanticId::tx_eop: return kInfiniteCost;       // fundamental
    case SemanticId::tx_csum_en: return 150.0;     // software checksum
    case SemanticId::tx_csum_offset: return 1.0;
    case SemanticId::tx_tso_en: return 600.0;      // software segmentation
    case SemanticId::tx_tso_mss: return 1.0;
    case SemanticId::tx_vlan_insert: return 30.0;  // memmove + tag write
  }
  return kInfiniteCost;
}

}  // namespace

CostTable::CostTable(const SemanticRegistry& registry) {
  for (const SemanticInfo& info : registry.all()) {
    costs_[raw(info.id)] = raw(info.id) < kFirstExtensionId
                               ? default_cost(info.id)
                               : kInfiniteCost;
  }
}

double CostTable::cost(SemanticId id) const {
  const auto it = costs_.find(raw(id));
  return it == costs_.end() ? kInfiniteCost : it->second;
}

void CostTable::set(SemanticId id, double cost_ns) {
  costs_[raw(id)] = cost_ns;
}

void CostTable::measure(const ComputeEngine& engine,
                        std::span<const net::Packet> samples) {
  if (samples.empty()) {
    return;
  }
  std::vector<net::PacketView> views;
  views.reserve(samples.size());
  for (const auto& pkt : samples) {
    views.push_back(net::PacketView::parse(pkt.bytes()));
  }
  const RxContext ctx;
  for (auto& [id_raw, cost] : costs_) {
    const auto id = static_cast<SemanticId>(id_raw);
    if (!engine.can_compute(id)) {
      continue;
    }
    volatile std::uint64_t sink = 0;  // keep the computation alive
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      sink = engine.compute(id, samples[i].bytes(), views[i], ctx);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    (void)sink;
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
        static_cast<double>(samples.size());
    cost = ns > 0.0 ? ns : 0.5;
  }
}

}  // namespace opendesc::softnic
