// Toeplitz hash used for Receive-Side Scaling.
//
// This is both the "hardware" RSS engine of our simulated NICs and the
// SoftNIC software fallback — matching the paper's position that every
// semantic ships one reference implementation used on either side.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace opendesc::softnic {

/// Microsoft's default 40-byte RSS secret key, used by most NIC drivers.
inline constexpr std::array<std::uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
};

/// Raw Toeplitz hash over `input` with `key`.  `key` must be at least
/// `input.size() + 4` bytes long.
[[nodiscard]] std::uint32_t toeplitz_hash(std::span<const std::uint8_t> key,
                                          std::span<const std::uint8_t> input) noexcept;

/// RSS over an IPv4 2-tuple (addresses in host byte order).
[[nodiscard]] std::uint32_t rss_ipv4(std::uint32_t src_addr,
                                     std::uint32_t dst_addr) noexcept;

/// RSS over an IPv4 4-tuple (TCP/UDP).
[[nodiscard]] std::uint32_t rss_ipv4_l4(std::uint32_t src_addr,
                                        std::uint32_t dst_addr,
                                        std::uint16_t src_port,
                                        std::uint16_t dst_port) noexcept;

/// RSS over an IPv6 2-tuple (addresses as wire bytes).
[[nodiscard]] std::uint32_t rss_ipv6(std::span<const std::uint8_t> src_addr,
                                     std::span<const std::uint8_t> dst_addr) noexcept;

/// RSS over an IPv6 4-tuple.
[[nodiscard]] std::uint32_t rss_ipv6_l4(std::span<const std::uint8_t> src_addr,
                                        std::span<const std::uint8_t> dst_addr,
                                        std::uint16_t src_port,
                                        std::uint16_t dst_port) noexcept;

}  // namespace opendesc::softnic
