// The semantic alphabet Σ.
//
// OpenDesc aligns NIC and host not on byte layouts but on *semantics*: each
// metadata field carries a name from a shared registry.  §3 of the paper
// attaches these names to intent-header fields via @semantic("...")
// annotations; §4 defines the provided set Prov(p) of a completion path and
// the requested set Req of an application as subsets of Σ.
//
// The registry ships the builtin semantics every model NIC in our catalog
// understands, plus an extension mechanism mirroring the paper's "the
// application can define new @semantic annotations ... tied to a new feature
// that will be offloaded in a programmable NIC or future NICs".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace opendesc::softnic {

/// Identifier of a semantic.  Builtins use small fixed values; runtime
/// extensions are allocated ids from kFirstExtensionId upward.
enum class SemanticId : std::uint32_t {
  rss_hash,       ///< 32-bit Toeplitz hash of the 5-tuple
  rss_type,       ///< 8-bit hash-input descriptor (which tuple fields)
  ip_csum_ok,     ///< 1-bit IPv4 header checksum verification status
  l4_csum_ok,     ///< 1-bit TCP/UDP checksum verification status
  ip_checksum,    ///< 16-bit computed IP header checksum value
  l4_checksum,    ///< 16-bit computed L4 checksum value
  ip_id,          ///< 16-bit IPv4 identification field
  vlan_tci,       ///< 16-bit stripped 802.1Q TCI
  vlan_stripped,  ///< 1-bit flag: a VLAN tag was removed
  timestamp,      ///< 64-bit arrival timestamp (ns)
  flow_id,        ///< 32-bit flow tag (match-action mark)
  packet_type,    ///< 16-bit parsed packet type (L2/L3/L4 kinds)
  pkt_len,        ///< 16-bit received frame length
  queue_id,       ///< 16-bit receive queue index
  seq_no,         ///< 32-bit completion sequence number
  mark,           ///< 32-bit application-defined mark
  lro_seg_count,  ///< 8-bit coalesced-segment count
  kv_key_hash,    ///< 32-bit hash of a KV request key (Fig. 1 scenario)

  // TX-side semantics: what the *host* produces in a posted descriptor and
  // the NIC consumes (the paper's channel ① in Fig. 2).  Their software
  // cost w(s) is the price of doing the offload on the host before posting
  // (e.g. computing the checksum in software when the NIC lacks insertion).
  tx_buf_addr,    ///< 64-bit DMA address of the frame
  tx_buf_len,     ///< 16-bit frame length
  tx_eop,         ///< 1-bit end-of-packet marker
  tx_csum_en,     ///< 1-bit "insert L4 checksum" request
  tx_csum_offset, ///< 8-bit checksum field offset
  tx_tso_en,      ///< 1-bit TCP segmentation offload request
  tx_tso_mss,     ///< 16-bit TSO segment size
  tx_vlan_insert, ///< 16-bit VLAN TCI to insert (0 = none)
};

inline constexpr std::uint32_t kFirstExtensionId = 1000;
inline constexpr std::size_t kBuiltinSemanticCount = 26;

/// Registry entry for one semantic.
struct SemanticInfo {
  SemanticId id{};
  std::string name;          ///< the @semantic("...") string
  std::size_t bit_width = 0; ///< natural width of the value
  std::string description;
};

/// Registry of known semantics.  A compiler instance owns one; tests build
/// their own; extensions registered on one registry do not leak globally.
class SemanticRegistry {
 public:
  /// Constructs a registry pre-populated with the builtin alphabet.
  SemanticRegistry();

  /// Registers an extension semantic; returns its freshly allocated id.
  /// Throws Error(semantic) if the name is already taken.
  SemanticId register_extension(std::string_view name, std::size_t bit_width,
                                std::string_view description);

  /// Lookup by @semantic name.  nullopt when unknown.
  [[nodiscard]] std::optional<SemanticId> find(std::string_view name) const;

  /// Info for an id.  Throws Error(semantic) for unknown ids.
  [[nodiscard]] const SemanticInfo& info(SemanticId id) const;

  [[nodiscard]] const std::string& name(SemanticId id) const { return info(id).name; }
  [[nodiscard]] std::size_t bit_width(SemanticId id) const { return info(id).bit_width; }

  /// All registered semantics, builtins first, in registration order.
  [[nodiscard]] const std::vector<SemanticInfo>& all() const noexcept { return entries_; }

 private:
  std::vector<SemanticInfo> entries_;
  std::uint32_t next_extension_ = kFirstExtensionId;
};

/// Stable ordering for use in std::map/std::set keys.
[[nodiscard]] constexpr std::uint32_t raw(SemanticId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

}  // namespace opendesc::softnic
