// Sharded, open-addressing flow table keyed on NIC-provided semantics.
//
// This is the production-shaped consumer of the paper's portable metadata
// contract: the NIC already computes a Toeplitz RSS hash per packet (the
// same semantic the completion deparser emits and engine::RssSteering
// replays), so the host can key per-flow state off metadata it never has
// to compute itself.  The table is sharded by that hash — one shard per
// receive queue — which makes every hot-path access *shard-local to the
// queue worker that owns it*: the worker that the RSS indirection table
// steered a flow to is, by construction, the only thread that ever writes
// that flow's slot.  Lookups and updates are therefore lock-free plain
// loads/stores; only the per-shard statistics counters are atomics
// (relaxed, single writer) so the observability plane can read them from
// any thread mid-run.
//
// Memory is strictly bounded: each shard is a fixed power-of-two slot
// array probed linearly within a bounded window.  A full window triggers
// per-slot clock (second-chance LRU) eviction — recently-touched flows
// survive, cold ones are recycled — and an optional idle timeout expires
// flows incrementally, a few slots per record(), so expiry cost is
// amortized across the hot path instead of spiking.  The table never
// allocates after construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace opendesc::flow {

/// 64-bit flow key.  The engine builds it from two independent Toeplitz
/// hashes over the packet's steering tuple (see RssSteering::flow_hash):
/// the low 32 bits are the primary RSS hash — the exact value the NIC
/// reports and the indirection table steers on — and the high 32 bits a
/// secondary hash that disambiguates primary-hash collisions (at 1M
/// concurrent flows a 32-bit key alone would alias ~116 flow pairs).
/// Key 0 is reserved as the empty-slot sentinel; frames with no steering
/// tuple (non-IP) produce key 0 and are counted, not tracked.
using FlowKey = std::uint64_t;

struct FlowTableConfig {
  std::size_t shards = 1;              ///< rounded up to a power of two
  std::size_t slots_per_shard = 4096;  ///< rounded up to a power of two
  std::size_t probe_window = 16;       ///< bounded linear-probe chain
  std::uint64_t idle_timeout_ns = 0;   ///< 0 disables idle expiry
  std::size_t expiry_stride = 4;       ///< slots swept incrementally per record()
};

/// One tracked flow, as the owner thread sees it.
struct FlowRecord {
  FlowKey key = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t last_seen_ns = 0;
};

/// Aggregate (or per-shard) statistics snapshot.  All counters are
/// cumulative since construction; `active` is the current occupancy.
struct FlowStats {
  std::uint64_t lookups = 0;        ///< record() calls with a real key
  std::uint64_t hits = 0;           ///< key already present
  std::uint64_t inserts = 0;        ///< new flows admitted
  std::uint64_t evicted_lru = 0;    ///< clock-evicted on a full probe window
  std::uint64_t expired_idle = 0;   ///< reclaimed by the idle timeout
  std::uint64_t keyless = 0;        ///< key==0 packets (no steering tuple)
  std::uint64_t tracked_packets = 0;
  std::uint64_t tracked_bytes = 0;
  std::uint64_t active = 0;         ///< flows currently resident
  std::size_t shards = 0;
  std::size_t slots = 0;            ///< total slot capacity
  std::size_t memory_bytes = 0;     ///< fixed footprint (slots + ref bits)

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
  [[nodiscard]] double load_factor() const noexcept {
    return slots == 0 ? 0.0
                      : static_cast<double>(active) / static_cast<double>(slots);
  }
  /// Fixed footprint over resident flows — the bench's bytes/flow bar.
  [[nodiscard]] double bytes_per_flow() const noexcept {
    return active == 0 ? 0.0
                       : static_cast<double>(memory_bytes) /
                             static_cast<double>(active);
  }
};

class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig config);

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Hot path: count one packet of `bytes` against `key` at time `now_ns`,
  /// in `shard` (masked to the shard count).  Must only be called by the
  /// thread owning that shard — in the engine, queue q's worker with
  /// shard == q, which the RSS indirection table guarantees is the only
  /// worker ever seeing that flow.
  void record(std::size_t shard, FlowKey key, std::uint64_t bytes,
              std::uint64_t now_ns);

  /// Standalone form: the shard is the key's low bits — the same bits of
  /// the same Toeplitz hash the RSS indirection table consumes, so for a
  /// power-of-two queue count this reproduces the engine's placement.
  void record(FlowKey key, std::uint64_t bytes, std::uint64_t now_ns) {
    record(shard_for(key), key, bytes, now_ns);
  }

  [[nodiscard]] std::size_t shard_for(FlowKey key) const noexcept {
    return static_cast<std::size_t>(key) & shard_mask_;
  }

  /// Full idle-expiry sweep of one shard (owner thread only).
  void expire_idle(std::size_t shard, std::uint64_t now_ns);

  /// Owner-thread (or quiesced) point lookup.
  [[nodiscard]] std::optional<FlowRecord> find(std::size_t shard,
                                               FlowKey key) const;

  /// Owner-thread (or quiesced) page scan: appends up to `max` resident
  /// flows of `shard` starting at slot index `from` to `out`, and returns
  /// the slot index to resume from (slots_per_shard() when the shard is
  /// exhausted).  The /flows?records streaming endpoint walks the table
  /// with this, one bounded page per call.
  std::size_t scan(std::size_t shard, std::size_t from, std::size_t max,
                   std::vector<FlowRecord>& out) const;

  /// Thread-safe aggregate snapshot: readable from any thread mid-run.
  [[nodiscard]] FlowStats stats() const;
  /// Thread-safe single-shard snapshot.
  [[nodiscard]] FlowStats shard_stats(std::size_t shard) const;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t slots_per_shard() const noexcept {
    return slot_mask_ + 1;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return shards_.size() * (slot_mask_ + 1);
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return memory_bytes_;
  }
  [[nodiscard]] const FlowTableConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Slot {
    FlowKey key = 0;  ///< 0 = empty
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t last_seen_ns = 0;
  };

  /// Single-writer counters with racy (relaxed) readers.
  struct alignas(64) ShardCounters {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> evicted_lru{0};
    std::atomic<std::uint64_t> expired_idle{0};
    std::atomic<std::uint64_t> keyless{0};
    std::atomic<std::uint64_t> tracked_packets{0};
    std::atomic<std::uint64_t> tracked_bytes{0};
    std::atomic<std::uint64_t> occupancy{0};
  };

  struct Shard {
    std::vector<Slot> slots;
    std::vector<std::uint8_t> ref;  ///< clock reference bits
    std::size_t expiry_hand = 0;
    ShardCounters counters;
  };

  /// Home slot index for `key` inside a shard: the *high* hash half, so
  /// in-shard placement is independent of the low bits that picked the
  /// shard (and the queue).
  [[nodiscard]] std::size_t bucket_for(FlowKey key) const noexcept {
    return static_cast<std::size_t>(key >> 32) & slot_mask_;
  }

  void sweep_expiry(Shard& shard, std::uint64_t now_ns, std::size_t slots);
  void accumulate(FlowStats& out, const Shard& shard) const;

  FlowTableConfig config_;
  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t slot_mask_ = 0;
  std::size_t memory_bytes_ = 0;
};

}  // namespace opendesc::flow
