// opendesc_flow_* metric families, tenant-labelled.
//
// Every series carries a `tenant` label so a multi-tenant plane publishes
// all tenants into one registry without collisions; single-tenant engines
// use tenant="default".  The flow counters in FlowStats are cumulative
// since table construction, so publication store()s totals — idempotent
// whether it runs per sampler tick, per run, or both.
#pragma once

#include <span>
#include <string>

#include "flow/flowtable.hpp"
#include "telemetry/metrics.hpp"

namespace opendesc::flow {

/// Publishes `stats` under tenant `tenant`.  A null `stats` registers every
/// family at zero state, so scrapes from flow-less runs still satisfy the
/// golden schema (the opendesc_layout_* precedent).
void publish_flow_metrics(telemetry::Registry& registry, const FlowStats* stats,
                          const std::string& tenant = "default");

/// One tenant's row in the /flows payload.  A null table renders the
/// tenant as present-but-untracked (active flows 0, enabled=false row).
struct FlowStatusEntry {
  std::string tenant;
  const FlowTable* table = nullptr;
};

/// The /flows route body: JSON by default, or the flat tab-separated pane
/// form `opendesc top` consumes when `tsv` is set (one `tenant` line per
/// entry, then one `shard` line per shard of each tracked tenant).
/// Thread-safe: only the tables' atomic counters are read.
[[nodiscard]] std::string render_flows_status(
    std::span<const FlowStatusEntry> entries, bool tsv);

}  // namespace opendesc::flow
