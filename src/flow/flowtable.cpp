#include "flow/flowtable.hpp"

#include <algorithm>

namespace opendesc::flow {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FlowTable::FlowTable(FlowTableConfig config) : config_(config) {
  const std::size_t shard_count =
      round_up_pow2(std::max<std::size_t>(1, config_.shards));
  const std::size_t slots =
      round_up_pow2(std::max<std::size_t>(2, config_.slots_per_shard));
  config_.shards = shard_count;
  config_.slots_per_shard = slots;
  config_.probe_window =
      std::min(std::max<std::size_t>(1, config_.probe_window), slots);
  config_.expiry_stride = std::max<std::size_t>(1, config_.expiry_stride);
  shard_mask_ = shard_count - 1;
  slot_mask_ = slots - 1;
  shards_ = std::vector<Shard>(shard_count);
  for (Shard& shard : shards_) {
    shard.slots.resize(slots);
    shard.ref.assign(slots, 0);
  }
  memory_bytes_ = shard_count * slots * (sizeof(Slot) + sizeof(std::uint8_t));
}

void FlowTable::record(std::size_t shard_index, FlowKey key,
                       std::uint64_t bytes, std::uint64_t now_ns) {
  Shard& shard = shards_[shard_index & shard_mask_];
  ShardCounters& c = shard.counters;
  if (key == 0) {
    // No steering tuple (non-IP frame): nothing portable to key on.
    c.keyless.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  c.lookups.fetch_add(1, std::memory_order_relaxed);
  if (config_.idle_timeout_ns > 0) {
    sweep_expiry(shard, now_ns, config_.expiry_stride);
  }

  const std::size_t home = bucket_for(key);
  constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t first_empty = kNoSlot;
  // Scan the whole bounded window: idle expiry punches holes mid-chain, so
  // an empty slot is a candidate insertion point, never a miss terminator.
  for (std::size_t i = 0; i < config_.probe_window; ++i) {
    const std::size_t idx = (home + i) & slot_mask_;
    Slot& slot = shard.slots[idx];
    if (slot.key == key) {
      slot.packets += 1;
      slot.bytes += bytes;
      slot.last_seen_ns = now_ns;
      shard.ref[idx] = 1;
      c.hits.fetch_add(1, std::memory_order_relaxed);
      c.tracked_packets.fetch_add(1, std::memory_order_relaxed);
      c.tracked_bytes.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
    if (slot.key == 0 && first_empty == kNoSlot) {
      first_empty = idx;
    }
  }

  std::size_t target = first_empty;
  if (target == kNoSlot) {
    // Window full: clock (second-chance) eviction.  First pass spares any
    // slot touched since its last consideration while stripping its
    // reference bit; if every slot was recently hot the second pass —
    // folded in by scanning up to 2×window — recycles the home slot.
    for (std::size_t i = 0; i < 2 * config_.probe_window; ++i) {
      const std::size_t idx = (home + (i % config_.probe_window)) & slot_mask_;
      if (shard.ref[idx] == 0) {
        target = idx;
        break;
      }
      shard.ref[idx] = 0;
    }
    if (target == kNoSlot) {
      target = home;  // unreachable: pass two always finds a cleared bit
    }
    c.evicted_lru.fetch_add(1, std::memory_order_relaxed);
    c.occupancy.fetch_sub(1, std::memory_order_relaxed);
  }

  Slot& slot = shard.slots[target];
  slot.key = key;
  slot.packets = 1;
  slot.bytes = bytes;
  slot.last_seen_ns = now_ns;
  shard.ref[target] = 1;
  c.inserts.fetch_add(1, std::memory_order_relaxed);
  c.occupancy.fetch_add(1, std::memory_order_relaxed);
  c.tracked_packets.fetch_add(1, std::memory_order_relaxed);
  c.tracked_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void FlowTable::sweep_expiry(Shard& shard, std::uint64_t now_ns,
                             std::size_t slots) {
  ShardCounters& c = shard.counters;
  for (std::size_t i = 0; i < slots; ++i) {
    const std::size_t idx = shard.expiry_hand;
    shard.expiry_hand = (shard.expiry_hand + 1) & slot_mask_;
    Slot& slot = shard.slots[idx];
    if (slot.key != 0 && now_ns >= slot.last_seen_ns &&
        now_ns - slot.last_seen_ns > config_.idle_timeout_ns) {
      slot = Slot{};
      shard.ref[idx] = 0;
      c.expired_idle.fetch_add(1, std::memory_order_relaxed);
      c.occupancy.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FlowTable::expire_idle(std::size_t shard_index, std::uint64_t now_ns) {
  if (config_.idle_timeout_ns == 0) {
    return;
  }
  Shard& shard = shards_[shard_index & shard_mask_];
  shard.expiry_hand = 0;
  sweep_expiry(shard, now_ns, slot_mask_ + 1);
}

std::optional<FlowRecord> FlowTable::find(std::size_t shard_index,
                                          FlowKey key) const {
  if (key == 0) {
    return std::nullopt;
  }
  const Shard& shard = shards_[shard_index & shard_mask_];
  const std::size_t home = bucket_for(key);
  for (std::size_t i = 0; i < config_.probe_window; ++i) {
    const Slot& slot = shard.slots[(home + i) & slot_mask_];
    if (slot.key == key) {
      return FlowRecord{slot.key, slot.packets, slot.bytes, slot.last_seen_ns};
    }
  }
  return std::nullopt;
}

std::size_t FlowTable::scan(std::size_t shard_index, std::size_t from,
                            std::size_t max,
                            std::vector<FlowRecord>& out) const {
  const Shard& shard = shards_[shard_index & shard_mask_];
  const std::size_t slots = slot_mask_ + 1;
  std::size_t i = from;
  for (; i < slots && out.size() < max; ++i) {
    const Slot& slot = shard.slots[i];
    if (slot.key == 0) {
      continue;
    }
    out.push_back(
        FlowRecord{slot.key, slot.packets, slot.bytes, slot.last_seen_ns});
  }
  return i;
}

void FlowTable::accumulate(FlowStats& out, const Shard& shard) const {
  const ShardCounters& c = shard.counters;
  out.lookups += c.lookups.load(std::memory_order_relaxed);
  out.hits += c.hits.load(std::memory_order_relaxed);
  out.inserts += c.inserts.load(std::memory_order_relaxed);
  out.evicted_lru += c.evicted_lru.load(std::memory_order_relaxed);
  out.expired_idle += c.expired_idle.load(std::memory_order_relaxed);
  out.keyless += c.keyless.load(std::memory_order_relaxed);
  out.tracked_packets += c.tracked_packets.load(std::memory_order_relaxed);
  out.tracked_bytes += c.tracked_bytes.load(std::memory_order_relaxed);
  out.active += c.occupancy.load(std::memory_order_relaxed);
}

FlowStats FlowTable::stats() const {
  FlowStats out;
  out.shards = shards_.size();
  out.slots = capacity();
  out.memory_bytes = memory_bytes_;
  for (const Shard& shard : shards_) {
    accumulate(out, shard);
  }
  return out;
}

FlowStats FlowTable::shard_stats(std::size_t shard_index) const {
  FlowStats out;
  out.shards = 1;
  out.slots = slot_mask_ + 1;
  out.memory_bytes = memory_bytes_ / shards_.size();
  accumulate(out, shards_[shard_index & shard_mask_]);
  return out;
}

}  // namespace opendesc::flow
