#include "flow/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace opendesc::flow {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ZipfFlowStream::ZipfFlowStream(ZipfConfig config)
    : config_(config), rng_state_(config.seed) {
  config_.flow_count = std::max<std::size_t>(1, config_.flow_count);
  config_.skew = std::max(0.0, config_.skew);
  config_.churn = std::clamp(config_.churn, 0.0, 1.0);

  cdf_.resize(config_.flow_count);
  double total = 0.0;
  for (std::size_t rank = 0; rank < config_.flow_count; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), config_.skew);
    cdf_[rank] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }

  keys_.resize(config_.flow_count);
  for (std::uint64_t& key : keys_) {
    key = mint_key();
  }
}

std::uint64_t ZipfFlowStream::mint_key() {
  ++keys_minted_;
  std::uint64_t key = splitmix64(rng_state_);
  while (key == 0) {
    key = splitmix64(rng_state_);
  }
  return key;
}

double ZipfFlowStream::uniform() {
  // 53-bit mantissa draw in [0, 1).
  return static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
}

std::uint64_t ZipfFlowStream::next() {
  const double u = uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  last_rank_ = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  if (config_.churn > 0.0 && uniform() < config_.churn) {
    keys_[last_rank_] = mint_key();
    ++churn_events_;
  }
  return keys_[last_rank_];
}

}  // namespace opendesc::flow
