// Deterministic Zipf-distributed flow-key stream with churn.
//
// The flow-table bench and tests need internet-shaped traffic — a heavy
// head of elephant flows over a long mouse tail — at millions of flows,
// without paying for packet synthesis.  This generator draws flow *keys*
// directly: ranks follow a Zipf(s) distribution over a fixed population,
// each rank owns a splitmix64-minted 64-bit key (hash-shaped, like the
// engine's Toeplitz-derived keys), and churn models flow turnover by
// replacing a drawn flow's key with a freshly minted one at a configured
// per-draw probability — the rank keeps its popularity, the old key goes
// cold and ages out of any table tracking it.
//
// Everything derives from the seed through splitmix64, so two streams with
// equal configs produce identical key sequences and churn decisions — the
// determinism the reproducibility suite pins down.
#pragma once

#include <cstdint>
#include <vector>

namespace opendesc::flow {

struct ZipfConfig {
  std::uint64_t seed = 1;
  std::size_t flow_count = 1 << 20;  ///< rank population
  double skew = 0.99;                ///< Zipf exponent s (0 = uniform)
  double churn = 0.0;                ///< per-draw key-replacement probability
};

/// splitmix64: the key mint and the stream's RNG core.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class ZipfFlowStream {
 public:
  explicit ZipfFlowStream(ZipfConfig config);

  /// Draws the next flow key (never 0 — 0 is the table's empty sentinel).
  [[nodiscard]] std::uint64_t next();

  /// Rank of the flow the last next() returned (0 = hottest).
  [[nodiscard]] std::size_t last_rank() const noexcept { return last_rank_; }
  /// Flows replaced by churn so far.
  [[nodiscard]] std::uint64_t churn_events() const noexcept {
    return churn_events_;
  }
  /// Distinct keys minted so far (population + churn replacements).
  [[nodiscard]] std::uint64_t keys_minted() const noexcept {
    return keys_minted_;
  }
  [[nodiscard]] const ZipfConfig& config() const noexcept { return config_; }
  /// Current rank -> key mapping (the bench's warm-fill walks this).
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const noexcept {
    return keys_;
  }

 private:
  [[nodiscard]] std::uint64_t mint_key();
  [[nodiscard]] double uniform();

  ZipfConfig config_;
  std::uint64_t rng_state_;
  std::vector<double> cdf_;            ///< cumulative rank probabilities
  std::vector<std::uint64_t> keys_;    ///< rank -> current key
  std::size_t last_rank_ = 0;
  std::uint64_t churn_events_ = 0;
  std::uint64_t keys_minted_ = 0;
};

}  // namespace opendesc::flow
