// Multi-tenant plane: N tenants, one NIC description, isolated datapaths.
//
// The paper's contract says the NIC description is shared infrastructure
// and the *intent* is per-application.  This plane is that story at system
// scale: each tenant registers its own intent header, the compiler front
// end parses the NIC description once (Compiler::compile_intents) and
// every tenant gets a distinct CompiledLayout, its own queue group — a
// full MultiQueueEngine with private simulators, rx workers, SPSC rings,
// quarantine buffers, flow-table shards and (optionally) SLO rules — and
// its own fault schedule.  Nothing on any hot path is shared between
// tenants, so isolation holds by construction: a fault storm inside one
// tenant's devices cannot touch another tenant's goodput or evict its
// flows (tenant_isolation_test pins this down numerically).
//
// What *is* shared is observability: the plane owns one telemetry sink and
// (optionally) one HTTP server, and after every run each tenant's goodput,
// drop and flow families are published there under its `tenant=` label —
// one scrape, N tenants, no series collisions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "flow/flowtable.hpp"
#include "net/workload.hpp"
#include "runtime/engine_config.hpp"
#include "softnic/compute.hpp"
#include "softnic/cost.hpp"
#include "telemetry/server.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::rt {

/// One tenant's registration: a name (the telemetry label), the intent
/// header compiled against the shared NIC description, and the tenant's
/// datapath configuration — queues, batch, guard, fault schedule, flow
/// capacity, SLO rules — via the standard EngineConfig.  The plane
/// overrides `engine.tenant` with `name` and takes ownership of HTTP
/// serving (`engine.listen` is ignored; the plane serves one /flows and
/// /metrics for all tenants).
struct TenantSpec {
  std::string name;
  std::string intent;
  EngineConfig engine;
};

}  // namespace opendesc::rt

namespace opendesc::flow {

struct TenantPlaneConfig {
  /// Non-empty = embed one plane-wide observability server ("host:port",
  /// ":port" or "port"; port 0 binds an ephemeral port).
  std::string listen;
  /// α of Eq. 1 for every tenant compilation.
  double dma_weight_per_byte = 1.0;
  /// Plane sink for the tenant-labelled families (and compile telemetry).
  /// Null = the plane owns one.  Must outlive the plane when set.
  telemetry::Sink* sink = nullptr;
};

/// One tenant's outcome from a plane run.
struct TenantResult {
  std::string name;
  engine::EngineReport report;
  FlowStats flows;              ///< tenant flow-table totals after the run
  std::string chosen_path;      ///< the tenant compilation's selected path
  std::size_t record_bytes = 0; ///< its completion-record size
};

class TenantPlane {
 public:
  /// Compiles every tenant's intent against `nic_source` (front end parsed
  /// once) and builds one engine per tenant.  Throws on compile errors.
  TenantPlane(std::string nic_source, std::vector<rt::TenantSpec> specs,
              TenantPlaneConfig config = {});
  ~TenantPlane();

  TenantPlane(const TenantPlane&) = delete;
  TenantPlane& operator=(const TenantPlane&) = delete;

  /// Runs every tenant's engine concurrently, `packets_per_tenant` packets
  /// each over `base_workload` (tenant i draws from seed base+i, so tenant
  /// traffics are decorrelated but individually reproducible), then
  /// publishes the tenant-labelled families into the plane sink.  Results
  /// are positionally aligned with the specs.
  [[nodiscard]] std::vector<TenantResult> run(
      std::size_t packets_per_tenant, const net::WorkloadConfig& base_workload);

  [[nodiscard]] std::size_t tenants() const noexcept { return specs_.size(); }
  [[nodiscard]] const rt::TenantSpec& spec(std::size_t i) const {
    return specs_.at(i);
  }
  [[nodiscard]] engine::MultiQueueEngine& tenant_engine(std::size_t i) {
    return *engines_.at(i);
  }
  [[nodiscard]] const core::CompileResult& compilation(std::size_t i) const {
    return results_.at(i);
  }

  /// The plane-wide sink every tenant's labelled families publish into
  /// (config.sink when provided, else plane-owned).
  [[nodiscard]] telemetry::Sink& sink() noexcept { return *sink_; }
  /// The plane server (null unless config.listen was set).
  [[nodiscard]] telemetry::ObservabilityServer* server() noexcept {
    return server_.get();
  }
  /// The /flows payload across all tenants (JSON, or TSV pane form).
  [[nodiscard]] std::string flows_status(bool tsv) const;

 private:
  TenantPlaneConfig config_;
  std::vector<rt::TenantSpec> specs_;
  // Compiler state: tenant intents may register extension semantics, so
  // the registry/cost table are plane-owned and shared by every tenant
  // compilation and compute engine.
  softnic::SemanticRegistry registry_;
  softnic::CostTable costs_;
  std::vector<core::CompileResult> results_;  ///< referenced by the engines
  /// Built after compilation: tenant intents may register extension
  /// semantics, and the compute engine snapshots the registry it serves.
  std::unique_ptr<softnic::ComputeEngine> compute_;
  std::unique_ptr<telemetry::Sink> owned_sink_;  ///< null when config.sink set
  telemetry::Sink* sink_ = nullptr;
  // Teardown order: the server (last member) stops first — its /flows
  // route reads the engines' flow tables, so the engines must outlive it.
  std::vector<std::unique_ptr<engine::MultiQueueEngine>> engines_;
  std::unique_ptr<telemetry::ObservabilityServer> server_;
};

}  // namespace opendesc::flow
