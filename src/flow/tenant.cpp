#include "flow/tenant.hpp"

#include <exception>
#include <thread>

#include "core/compiler.hpp"
#include "engine/publish.hpp"
#include "flow/metrics.hpp"

namespace opendesc::flow {

namespace {

/// Publishes one tenant's labelled families into the plane registry.
void publish_tenant(telemetry::Sink& sink, const std::string& name,
                    const engine::EngineReport& report,
                    const FlowTable* table) {
  engine::publish_tenant_report(sink, report, name);
  const FlowStats stats = table != nullptr ? table->stats() : FlowStats{};
  publish_flow_metrics(sink.registry(), table != nullptr ? &stats : nullptr,
                       name);
}

}  // namespace

TenantPlane::TenantPlane(std::string nic_source,
                         std::vector<rt::TenantSpec> specs,
                         TenantPlaneConfig config)
    : config_(std::move(config)), specs_(std::move(specs)), costs_(registry_) {
  std::vector<std::string> intents;
  intents.reserve(specs_.size());
  for (const rt::TenantSpec& spec : specs_) {
    intents.push_back(spec.intent);
  }
  const core::Compiler compiler(registry_, costs_);
  core::CompileOptions options;
  options.dma_weight_per_byte = config_.dma_weight_per_byte;
  results_ = compiler.compile_intents(nic_source, intents, options);
  compute_ = std::make_unique<softnic::ComputeEngine>(registry_);

  if (config_.sink != nullptr) {
    sink_ = config_.sink;
  } else {
    telemetry::SinkConfig sink_config;
    sink_config.queues = 1;
    owned_sink_ = std::make_unique<telemetry::Sink>(sink_config);
    sink_ = owned_sink_.get();
  }

  engines_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    rt::EngineConfig engine_config = specs_[i].engine;
    engine_config.tenant = specs_[i].name;
    engine_config.listen.clear();  // the plane serves HTTP, not the tenants
    engines_.push_back(std::make_unique<engine::MultiQueueEngine>(
        results_[i], *compute_, engine_config));
    // Register every tenant's families at zero state so the first plane
    // scrape already carries the full schema.
    publish_tenant(*sink_, specs_[i].name, engine::EngineReport{},
                   engines_.back()->flow_table());
  }

  if (!config_.listen.empty()) {
    server_ = std::make_unique<telemetry::ObservabilityServer>(
        *sink_, http::parse_listen_address(config_.listen));
    server_->set_flows([this](bool tsv) { return flows_status(tsv); });
    server_->start();
  }
}

TenantPlane::~TenantPlane() = default;

std::vector<TenantResult> TenantPlane::run(
    std::size_t packets_per_tenant, const net::WorkloadConfig& base_workload) {
  std::vector<TenantResult> out(specs_.size());
  std::vector<std::exception_ptr> errors(specs_.size());
  std::vector<std::thread> threads;
  threads.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        net::WorkloadConfig workload = base_workload;
        workload.seed = base_workload.seed + i;
        net::WorkloadGenerator gen(workload);
        out[i].report = engines_[i]->run(gen, packets_per_tenant);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out[i].name = specs_[i].name;
    const FlowTable* table = engines_[i]->flow_table();
    out[i].flows = table != nullptr ? table->stats() : FlowStats{};
    out[i].chosen_path = results_[i].chosen_path().id;
    out[i].record_bytes = engines_[i]->wire_layout().total_bytes();
    publish_tenant(*sink_, specs_[i].name, out[i].report, table);
  }
  return out;
}

std::string TenantPlane::flows_status(bool tsv) const {
  std::vector<FlowStatusEntry> entries;
  entries.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    entries.push_back({specs_[i].name, engines_[i]->flow_table()});
  }
  return render_flows_status(entries, tsv);
}

}  // namespace opendesc::flow
