#include "flow/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace opendesc::flow {

void publish_flow_metrics(telemetry::Registry& registry, const FlowStats* stats,
                          const std::string& tenant) {
  const FlowStats zero;
  const FlowStats& s = stats != nullptr ? *stats : zero;
  const telemetry::Labels labels{{"tenant", tenant}};

  registry
      .gauge("opendesc_flow_active", "Flows currently resident in the table",
             labels)
      .set(static_cast<double>(s.active));
  registry
      .gauge("opendesc_flow_memory_bytes",
             "Fixed flow-table footprint (slots + clock bits)", labels)
      .set(static_cast<double>(s.memory_bytes));
  registry
      .counter("opendesc_flow_lookups_total",
               "Flow-table lookups on the receive hot path", labels)
      .store(s.lookups);
  registry
      .counter("opendesc_flow_inserts_total", "New flows admitted", labels)
      .store(s.inserts);
  registry
      .counter("opendesc_flow_evictions_total",
               "Flows reclaimed, by reason (lru = clock eviction on a full "
               "probe window, idle = idle-timeout expiry)",
               {{"reason", "lru"}, {"tenant", tenant}})
      .store(s.evicted_lru);
  registry
      .counter("opendesc_flow_evictions_total",
               "Flows reclaimed, by reason (lru = clock eviction on a full "
               "probe window, idle = idle-timeout expiry)",
               {{"reason", "idle"}, {"tenant", tenant}})
      .store(s.expired_idle);
  registry
      .counter("opendesc_flow_tracked_packets_total",
               "Packets counted against a tracked flow", labels)
      .store(s.tracked_packets);
  registry
      .counter("opendesc_flow_tracked_bytes_total",
               "Frame bytes counted against a tracked flow", labels)
      .store(s.tracked_bytes);
}

namespace {

std::string fixed1(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

}  // namespace

std::string render_flows_status(std::span<const FlowStatusEntry> entries,
                                bool tsv) {
  bool enabled = false;
  for (const FlowStatusEntry& entry : entries) {
    enabled = enabled || entry.table != nullptr;
  }
  std::ostringstream out;
  if (tsv) {
    for (const FlowStatusEntry& entry : entries) {
      const FlowStats s =
          entry.table != nullptr ? entry.table->stats() : FlowStats{};
      out << "tenant\t" << entry.tenant << '\t' << s.active << '\t' << s.slots
          << '\t' << s.inserts << '\t' << s.evicted_lru << '\t'
          << s.expired_idle << '\t' << fixed1(s.hit_rate() * 100.0) << '\t'
          << fixed1(s.load_factor() * 100.0) << '\t'
          << fixed1(s.bytes_per_flow()) << '\n';
    }
    for (const FlowStatusEntry& entry : entries) {
      if (entry.table == nullptr) {
        continue;
      }
      for (std::size_t q = 0; q < entry.table->shards(); ++q) {
        const FlowStats s = entry.table->shard_stats(q);
        out << "shard\t" << entry.tenant << '\t' << q << '\t' << s.active
            << '\t' << s.lookups << '\t' << (s.evicted_lru + s.expired_idle)
            << '\n';
      }
    }
    return out.str();
  }

  out << "{\"enabled\":" << (enabled ? "true" : "false") << ",\"tenants\":[";
  bool first = true;
  for (const FlowStatusEntry& entry : entries) {
    if (!first) {
      out << ',';
    }
    first = false;
    const bool tracked = entry.table != nullptr;
    const FlowStats s = tracked ? entry.table->stats() : FlowStats{};
    out << "{\"tenant\":\"" << entry.tenant << "\",\"tracked\":"
        << (tracked ? "true" : "false") << ",\"shards\":" << s.shards
        << ",\"slots\":" << s.slots << ",\"active\":" << s.active
        << ",\"lookups\":" << s.lookups << ",\"hits\":" << s.hits
        << ",\"inserts\":" << s.inserts
        << ",\"evicted_lru\":" << s.evicted_lru
        << ",\"expired_idle\":" << s.expired_idle
        << ",\"keyless\":" << s.keyless
        << ",\"tracked_packets\":" << s.tracked_packets
        << ",\"tracked_bytes\":" << s.tracked_bytes
        << ",\"memory_bytes\":" << s.memory_bytes
        << ",\"hit_rate\":" << fixed1(s.hit_rate() * 100.0)
        << ",\"load_pct\":" << fixed1(s.load_factor() * 100.0)
        << ",\"bytes_per_flow\":" << fixed1(s.bytes_per_flow()) << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace opendesc::flow
