#include "nic/model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "p4/parser.hpp"

namespace opendesc::nic {

std::string to_string(NicClass c) {
  switch (c) {
    case NicClass::fixed: return "fixed";
    case NicClass::partial: return "partially-programmable";
    case NicClass::programmable: return "programmable";
  }
  return "unknown";
}

NicModel::NicModel(std::string name, NicClass nic_class, std::string description,
                   std::string p4_source, std::string deparser_name)
    : name_(std::move(name)), class_(nic_class),
      description_(std::move(description)), source_(std::move(p4_source)),
      deparser_name_(std::move(deparser_name)) {}

void NicModel::ensure_parsed() const {
  if (program_ != nullptr) {
    return;
  }
  auto program = std::make_unique<p4::Program>(p4::parse_program(source_));
  auto types = std::make_unique<p4::TypeInfo>(p4::check_program(*program));
  program_ = std::move(program);
  types_ = std::move(types);
}

const p4::Program& NicModel::program() const {
  ensure_parsed();
  return *program_;
}

const p4::TypeInfo& NicModel::types() const {
  ensure_parsed();
  return *types_;
}

const p4::ControlDecl& NicModel::deparser() const {
  const p4::ControlDecl* control = program().find_control(deparser_name_);
  if (control == nullptr) {
    throw Error(ErrorKind::internal, "NIC model '" + name_ +
                                         "' references missing deparser '" +
                                         deparser_name_ + "'");
  }
  return *control;
}

const p4::ParserDecl* NicModel::desc_parser() const {
  const p4::ParserDecl* found = nullptr;
  for (const p4::ParserDecl* parser : program().parsers()) {
    const bool has_desc_in = std::any_of(
        parser->params().begin(), parser->params().end(), [](const p4::Param& p) {
          return p.type.kind == p4::TypeRef::Kind::named &&
                 p.type.name == "desc_in";
        });
    if (!has_desc_in) {
      continue;
    }
    if (found != nullptr) {
      throw Error(ErrorKind::internal,
                  "NIC model '" + name_ + "' declares several desc parsers");
    }
    found = parser;
  }
  return found;
}

const NicModel& NicCatalog::by_name(std::string_view name) {
  const auto& models = all();
  const auto it = std::find_if(models.begin(), models.end(),
                               [&](const NicModel& m) { return m.name() == name; });
  if (it == models.end()) {
    throw Error(ErrorKind::io, "unknown NIC model '" + std::string(name) + "'");
  }
  return *it;
}

}  // namespace opendesc::nic
