// NIC model: a named P4 interface description plus its parsed artifacts.
//
// Fixed-function NICs describe the layouts they support; partially and fully
// programmable NICs describe the constraints of their interface (§1).  The
// catalog in catalog.cpp mirrors the device classes the paper walks through
// in Fig. 1: e1000 (single layout), e1000e (two layouts, Fig. 6), ixgbe,
// mlx5 ConnectX (many CQE formats, big-endian), BlueField-style mlx5 with a
// programmable match-action mark, Xilinx QDMA (8/16/32/64-byte programmable
// completions), and a netmap-style dumb NIC.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "p4/ast.hpp"
#include "p4/typecheck.hpp"

namespace opendesc::nic {

/// Degree of programmability, used in reports and the Table A bench.
enum class NicClass : std::uint8_t {
  fixed,         ///< fixed-function: layouts are take-it-or-leave-it
  partial,       ///< fixed layouts with programmable match-action metadata
  programmable,  ///< fully programmable descriptors (QDMA-style)
};

[[nodiscard]] std::string to_string(NicClass c);

/// A catalog entry: the P4 description plus lazily parsed artifacts.
class NicModel {
 public:
  NicModel(std::string name, NicClass nic_class, std::string description,
           std::string p4_source, std::string deparser_name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] NicClass nic_class() const noexcept { return class_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }
  [[nodiscard]] const std::string& p4_source() const noexcept { return source_; }
  [[nodiscard]] const std::string& deparser_name() const noexcept {
    return deparser_name_;
  }

  /// Parsed + type-checked program (parsed on first use, then cached).
  [[nodiscard]] const p4::Program& program() const;
  [[nodiscard]] const p4::TypeInfo& types() const;
  [[nodiscard]] const p4::ControlDecl& deparser() const;

  /// The TX descriptor parser (the unique parser with a desc_in parameter);
  /// nullptr when the model does not describe its TX side.
  [[nodiscard]] const p4::ParserDecl* desc_parser() const;

 private:
  void ensure_parsed() const;

  std::string name_;
  NicClass class_;
  std::string description_;
  std::string source_;
  std::string deparser_name_;

  // Lazy cache (parse-once).
  mutable std::unique_ptr<p4::Program> program_;
  mutable std::unique_ptr<p4::TypeInfo> types_;
};

/// The built-in model catalog.
class NicCatalog {
 public:
  /// All models, stable order (oldest/least capable first).
  [[nodiscard]] static const std::vector<NicModel>& all();

  /// Lookup by name; throws Error(io) when unknown.
  [[nodiscard]] static const NicModel& by_name(std::string_view name);
};

}  // namespace opendesc::nic
