#include "nic/model.hpp"

namespace opendesc::nic {

namespace {

// ---------------------------------------------------------------------------
// e1000 (legacy): the paper's "older NICs like the early Intel e1000 series
// supported only a single descriptor, giving the computed IP checksum".
// Little-endian, one completion layout, 8 bytes.
// ---------------------------------------------------------------------------
const char* const kE1000Source = R"P4(
// Intel e1000 legacy receive write-back (single fixed layout).
struct e1000_ctx_t {
    bit<1> unused;
}

header e1000_wb_t {
    @semantic("pkt_len")     bit<16> length;
    @semantic("ip_checksum") bit<16> csum;
    @fixed(1)                bit<8>  status;   // DD bit set on write-back
    bit<8>  errors;
    @semantic("vlan")        bit<16> special;
}

// Legacy 16-byte TX descriptor: address, length, checksum offload hints.
header e1000_tx_desc_t {
    @semantic("tx_buf_addr")    bit<64> buffer_addr;
    @semantic("tx_buf_len")     bit<16> length;
    @semantic("tx_csum_offset") bit<8>  cso;
    @semantic("tx_eop")         bit<1>  eop;
    @semantic("tx_csum_en")     bit<1>  ic;
    bit<6>  cmd_rsvd;
    bit<8>  status;
    bit<8>  css;
    @semantic("tx_vlan_insert") bit<16> special;
}

@endian("little")
parser E1000TxDescParser(desc_in d, in e1000_ctx_t ctx,
                         out e1000_tx_desc_t txd) {
    state start {
        d.extract(txd);
        transition accept;
    }
}

@nic("e1000")
@endian("little")
control E1000CmptDeparser(cmpt_out cmpt, in e1000_ctx_t ctx, in e1000_wb_t meta) {
    apply {
        cmpt.emit(meta);
    }
}
)P4";

// ---------------------------------------------------------------------------
// e1000e (Fig. 6): extended write-back where a single context bit selects
// between the 32-bit RSS hash and the (ip_id, fragment checksum) pair.
// ---------------------------------------------------------------------------
const char* const kE1000eSource = R"P4(
// Intel e1000e / 8257x extended receive write-back (Fig. 6 of the paper).
struct e1000e_ctx_t {
    bit<1> use_rss;
}

header e1000e_meta_t {
    @semantic("rss")         bit<32> rss_hash;
    @semantic("ip_id")       bit<16> ip_id;
    @semantic("ip_checksum") bit<16> csum;
    @semantic("pkt_len")     bit<16> length;
    @fixed(1)                bit<8>  status;
    bit<8>  errors;
    @semantic("vlan")        bit<16> vlan;
}

@nic("e1000e")
@endian("little")
control E1000eCmptDeparser(cmpt_out cmpt, in e1000e_ctx_t ctx,
                           in e1000e_meta_t meta) {
    apply {
        if (ctx.use_rss == 1) {
            cmpt.emit(meta.rss_hash);
        } else {
            cmpt.emit(meta.ip_id);
            cmpt.emit(meta.csum);
        }
        cmpt.emit(meta.length);
        cmpt.emit(meta.status);
        cmpt.emit(meta.errors);
        cmpt.emit(meta.vlan);
    }
}
)P4";

// ---------------------------------------------------------------------------
// ixgbe (82599-style): adds Flow Director and packet-type reporting; the
// hash field is shared between RSS, Flow Director id and fragment checksum.
// ---------------------------------------------------------------------------
const char* const kIxgbeSource = R"P4(
// Intel ixgbe (82599) advanced receive write-back.
struct ixgbe_ctx_t {
    bit<1> fdir_en;
    bit<1> rss_en;
}

header ixgbe_meta_t {
    @semantic("flow_id")     bit<32> fdir_id;
    @semantic("rss")         bit<32> rss_hash;
    @semantic("ip_id")       bit<16> ip_id;
    @semantic("ip_checksum") bit<16> frag_csum;
    @semantic("packet_type") bit<16> pkt_info;
    @semantic("pkt_len")     bit<16> length;
    @fixed(1)                bit<8>  status;
    bit<8>  errors;
    @semantic("vlan")        bit<16> vlan;
}

// Advanced TX: the dtyp field selects between a data descriptor and a
// TSO-setup context descriptor (both 16 bytes).
header ixgbe_tx_base_t {
    bit<4> dtyp;
    bit<4> rsvd;
}

header ixgbe_tx_data_t {
    @semantic("tx_buf_addr")    bit<64> buffer_addr;
    @semantic("tx_buf_len")     bit<16> length;
    @semantic("tx_eop")         bit<1>  eop;
    @semantic("tx_csum_en")     bit<1>  ixsm;
    bit<6>  cmd_rsvd;
    @semantic("tx_vlan_insert") bit<16> vlan;
    bit<16> rsvd_tail;
}

header ixgbe_tx_ctxd_t {
    @semantic("tx_tso_en")      bit<1>  tse;
    bit<7>  rsvd_flags;
    @semantic("tx_tso_mss")     bit<16> mss;
    @semantic("tx_csum_offset") bit<8>  tucso;
    bit<64> rsvd0;
    bit<24> rsvd1;
}

@endian("little")
parser IxgbeTxDescParser(desc_in d, in ixgbe_ctx_t ctx,
                         out ixgbe_tx_base_t base, out ixgbe_tx_data_t data,
                         out ixgbe_tx_ctxd_t setup) {
    state start {
        d.extract(base);
        transition select(base.dtyp) {
            3: parse_data;
            2: parse_context;
            default: reject;
        };
    }
    state parse_data {
        d.extract(data);
        transition accept;
    }
    state parse_context {
        d.extract(setup);
        transition accept;
    }
}

@nic("ixgbe")
@endian("little")
control IxgbeCmptDeparser(cmpt_out cmpt, in ixgbe_ctx_t ctx,
                          in ixgbe_meta_t meta) {
    apply {
        if (ctx.fdir_en == 1) {
            cmpt.emit(meta.fdir_id);
        } else {
            if (ctx.rss_en == 1) {
                cmpt.emit(meta.rss_hash);
            } else {
                cmpt.emit(meta.ip_id);
                cmpt.emit(meta.frag_csum);
            }
        }
        cmpt.emit(meta.pkt_info);
        cmpt.emit(meta.length);
        cmpt.emit(meta.status);
        cmpt.emit(meta.errors);
        cmpt.emit(meta.vlan);
    }
}
)P4";

// ---------------------------------------------------------------------------
// mlx5 (ConnectX): 64-byte big-endian CQE carrying 12 metadata fields, plus
// compressed mini-CQE formats (hash or checksum flavour).  "Many formats".
// ---------------------------------------------------------------------------
const char* const kMlx5Source = R"P4(
// NVIDIA ConnectX (mlx5) receive CQE: full 64B format (optionally without a
// valid timestamp) and two compressed mini-CQE formats.
struct mlx5_ctx_t {
    bit<1> cqe_comp;     // CQE compression enabled
    bit<1> mini_format;  // 0 = hash mini-CQE, 1 = checksum mini-CQE
    bit<1> ts_en;        // timestamping enabled
}

header mlx5_cqe_t {
    @semantic("flow_id")       bit<32> flow_tag;
    @semantic("rss")           bit<32> rx_hash;
    @semantic("rss_type")      bit<8>  hash_type;
    @semantic("vlan")          bit<16> vlan_info;
    @semantic("vlan_stripped") bit<1>  vlan_stripped;
    @semantic("ip_csum_ok")    bit<1>  l3_ok;
    @semantic("l4_csum_ok")    bit<1>  l4_ok;
    bit<5>  flags_rsvd;
    @semantic("l4_checksum")   bit<16> csum;
    @semantic("pkt_len")       bit<16> byte_cnt;
    @semantic("timestamp")     bit<64> timestamp;
    bit<64> rsvd_ts;
    @semantic("lro_seg_count") bit<8>  lro_num_seg;
    @semantic("packet_type")   bit<16> l3_l4_hdr_type;
    bit<64> rsvd0;
    bit<64> rsvd1;
    bit<64> rsvd2;
    bit<64> rsvd3;
    bit<40> rsvd4;
}

header mlx5_mini_cqe_t {
    @semantic("rss")         bit<32> rx_hash;
    @semantic("l4_checksum") bit<16> csum;
    bit<16> rsvd;
    @semantic("pkt_len")     bit<16> byte_cnt;
    bit<16> stride_idx;
}

@nic("mlx5")
@endian("big")
control Mlx5CmptDeparser(cmpt_out cmpt, in mlx5_ctx_t ctx, in mlx5_cqe_t meta,
                         in mlx5_mini_cqe_t mini) {
    apply {
        if (ctx.cqe_comp == 0) {
            cmpt.emit(meta.flow_tag);
            cmpt.emit(meta.rx_hash);
            cmpt.emit(meta.hash_type);
            cmpt.emit(meta.vlan_info);
            cmpt.emit(meta.vlan_stripped);
            cmpt.emit(meta.l3_ok);
            cmpt.emit(meta.l4_ok);
            cmpt.emit(meta.flags_rsvd);
            cmpt.emit(meta.csum);
            cmpt.emit(meta.byte_cnt);
            if (ctx.ts_en == 1) {
                cmpt.emit(meta.timestamp);
            } else {
                cmpt.emit(meta.rsvd_ts);
            }
            cmpt.emit(meta.lro_num_seg);
            cmpt.emit(meta.l3_l4_hdr_type);
            cmpt.emit(meta.rsvd0);
            cmpt.emit(meta.rsvd1);
            cmpt.emit(meta.rsvd2);
            cmpt.emit(meta.rsvd3);
            cmpt.emit(meta.rsvd4);
        } else {
            if (ctx.mini_format == 0) {
                cmpt.emit(mini.rx_hash);
                cmpt.emit(mini.byte_cnt);
                cmpt.emit(mini.stride_idx);
            } else {
                cmpt.emit(mini.csum);
                cmpt.emit(mini.rsvd);
                cmpt.emit(mini.byte_cnt);
                cmpt.emit(mini.stride_idx);
            }
        }
    }
}
)P4";

// ---------------------------------------------------------------------------
// bf3 (BlueField-3 style): mlx5 CQE family plus a match-action mark field
// programmable through the DPL pipeline, and a 16B "flex" format exposing
// the mark with the hash.
// ---------------------------------------------------------------------------
const char* const kBf3Source = R"P4(
// NVIDIA BlueField-3 style CQE: a partially programmable device whose
// match-action pipeline fills a mark register (paper: "a field for specific
// metadata computed through a series of Match-Action tables").
// Descriptive stateful context (§5): the match-action pipeline that fills
// ma_mark keeps per-flow state; declared so tooling can see it, never
// mapped to host resources.
register<bit<32>>(65536) bf3_flow_marks;
extern Bf3MatchActionPipeline;

struct bf3_ctx_t {
    bit<1> flex_format;
    bit<1> ts_en;
}

header bf3_cqe_t {
    @semantic("mark")          bit<32> ma_mark;
    @semantic("flow_id")       bit<32> flow_tag;
    @semantic("rss")           bit<32> rx_hash;
    @semantic("rss_type")      bit<8>  hash_type;
    @semantic("vlan")          bit<16> vlan_info;
    @semantic("vlan_stripped") bit<1>  vlan_stripped;
    @semantic("ip_csum_ok")    bit<1>  l3_ok;
    @semantic("l4_csum_ok")    bit<1>  l4_ok;
    bit<5>  flags_rsvd;
    @semantic("l4_checksum")   bit<16> csum;
    @semantic("pkt_len")       bit<16> byte_cnt;
    @semantic("timestamp")     bit<64> timestamp;
    bit<64> rsvd_ts;
    @semantic("lro_seg_count") bit<8>  lro_num_seg;
    @semantic("packet_type")   bit<16> l3_l4_hdr_type;
    bit<64> rsvd0;
    bit<64> rsvd1;
    bit<40> rsvd2;
}

header bf3_flex_t {
    @semantic("mark")    bit<32> ma_mark;
    @semantic("rss")     bit<32> rx_hash;
    @semantic("pkt_len") bit<16> byte_cnt;
    bit<16> rsvd;
    @semantic("flow_id") bit<32> flow_tag;
}

@nic("bf3")
@endian("big")
control Bf3CmptDeparser(cmpt_out cmpt, in bf3_ctx_t ctx, in bf3_cqe_t meta,
                        in bf3_flex_t flex) {
    apply {
        if (ctx.flex_format == 1) {
            cmpt.emit(flex);
        } else {
            cmpt.emit(meta.ma_mark);
            cmpt.emit(meta.flow_tag);
            cmpt.emit(meta.rx_hash);
            cmpt.emit(meta.hash_type);
            cmpt.emit(meta.vlan_info);
            cmpt.emit(meta.vlan_stripped);
            cmpt.emit(meta.l3_ok);
            cmpt.emit(meta.l4_ok);
            cmpt.emit(meta.flags_rsvd);
            cmpt.emit(meta.csum);
            cmpt.emit(meta.byte_cnt);
            if (ctx.ts_en == 1) {
                cmpt.emit(meta.timestamp);
            } else {
                cmpt.emit(meta.rsvd_ts);
            }
            cmpt.emit(meta.lro_num_seg);
            cmpt.emit(meta.l3_l4_hdr_type);
            cmpt.emit(meta.rsvd0);
            cmpt.emit(meta.rsvd1);
            cmpt.emit(meta.rsvd2);
        }
    }
}
)P4";

// ---------------------------------------------------------------------------
// ice (Intel E810-style): 32-byte "flexible descriptors" — a fixed shell
// whose metadata slots are filled according to a per-queue flex profile,
// programmed at queue setup.  Sits between fixed (layout count is fixed)
// and programmable (slot contents vary by profile).
// ---------------------------------------------------------------------------
const char* const kIceSource = R"P4(
// Intel E810 (ice) flexible receive descriptor: an 8-byte common prefix
// plus a 24-byte profile-selected extension.
struct ice_ctx_t {
    bit<2> flex_profile;  // 0 = rss/flow, 1 = timestamping, 2 = comms
}

header ice_base_t {
    @fixed(1) bit<1> dd;
    bit<1> eop;
    bit<6> rsvd_flags;
    @semantic("packet_type") bit<16> ptype;
    @semantic("pkt_len")     bit<16> len;
    @semantic("vlan")        bit<16> vlan;
    bit<8> rsvd;
}

header ice_flex_rss_t {
    @semantic("rss")         bit<32> hash;
    @semantic("flow_id")     bit<32> fdid;
    @semantic("ip_csum_ok")  bit<1>  l3_ok;
    @semantic("l4_csum_ok")  bit<1>  l4_ok;
    bit<6>  rsvd_flags;
    @semantic("ip_id")       bit<16> ip_id;
    @semantic("l4_checksum") bit<16> csum;
    bit<64> rsvd0;
    bit<24> rsvd1;
}

header ice_flex_ts_t {
    @semantic("timestamp") bit<64> ts;
    @semantic("rss")       bit<32> hash;
    @semantic("mark")      bit<32> mark;
    bit<64> rsvd0;
}

header ice_flex_comms_t {
    @semantic("flow_id")       bit<32> fdid;
    @semantic("mark")          bit<32> mark;
    @semantic("queue_id")      bit<16> qid;
    @semantic("seq_no")        bit<32> seq;
    @semantic("lro_seg_count") bit<8>  rsc_cnt;
    bit<64> rsvd0;
    bit<8>  rsvd1;
}

@nic("ice")
@endian("little")
control IceCmptDeparser(cmpt_out cmpt, in ice_ctx_t ctx, in ice_base_t base,
                        in ice_flex_rss_t flex_rss, in ice_flex_ts_t flex_ts,
                        in ice_flex_comms_t flex_comms) {
    apply {
        cmpt.emit(base);
        if (ctx.flex_profile == 0) {
            cmpt.emit(flex_rss);
        } else {
            if (ctx.flex_profile == 1) {
                cmpt.emit(flex_ts);
            } else {
                cmpt.emit(flex_comms);
            }
        }
    }
}
)P4";

// ---------------------------------------------------------------------------
// qdma (AMD/Xilinx): fully programmable completions of 8/16/32/64 bytes.
// The 32/64-byte formats expose an application-defined accelerator result
// (here: the KV request key hash of the paper's Fig. 1 scenario).
// ---------------------------------------------------------------------------
const char* const kQdmaSource = R"P4(
// AMD/Xilinx QDMA user completion: one programmable format per queue,
// selectable size 8/16/32/64 bytes (PG302).
struct qdma_ctx_t {
    bit<2> cmpt_size;  // 0=8B 1=16B 2=32B 3=64B
    bit<1> h2c_fmt;    // 0=16B base H2C descriptor, 1=32B with offload hints
}

header qdma_cmpt8_t {
    @fixed(1)              bit<1>  valid;
    bit<1>  err;
    bit<6>  rsvd_flags;
    @semantic("pkt_len")   bit<16> length;
    @semantic("flow_id")   bit<32> flow_id;
    bit<8>  rsvd;
}

header qdma_cmpt16_ext_t {
    @semantic("rss")          bit<32> rss_hash;
    @semantic("vlan")         bit<16> vlan;
    @semantic("packet_type")  bit<16> ptype;
}

header qdma_cmpt32_ext_t {
    @semantic("timestamp")    bit<64> timestamp;
    @semantic("kv_key_hash")  bit<32> kv_key_hash;
    @semantic("ip_csum_ok")   bit<1>  l3_ok;
    @semantic("l4_csum_ok")   bit<1>  l4_ok;
    bit<6>  rsvd_flags;
    bit<24> rsvd;
}

header qdma_cmpt64_ext_t {
    @semantic("mark")          bit<32> mark;
    @semantic("queue_id")      bit<16> qid;
    @semantic("lro_seg_count") bit<8>  coalesce_cnt;
    @semantic("l4_checksum")   bit<16> l4_csum;
    @semantic("ip_id")         bit<16> ip_id;
    @semantic("rss_type")      bit<8>  hash_type;
    @semantic("seq_no")        bit<32> seq_no;
    bit<64> user0;
    bit<64> user1;
}

// H2C (TX) descriptors: a 16-byte base format, or 32 bytes when the queue
// is programmed with offload hints (per-queue, like the completions).
header qdma_h2c_base_t {
    @semantic("tx_buf_addr") bit<64> src_addr;
    @semantic("tx_buf_len")  bit<16> len;
    @semantic("tx_eop")      bit<1>  eop;
    bit<1>  sop;
    bit<6>  rsvd_flags;
    bit<40> rsvd;
}

header qdma_h2c_ext_t {
    @semantic("tx_csum_en")     bit<1>  csum_en;
    @semantic("tx_tso_en")      bit<1>  tso_en;
    bit<6>  rsvd_flags;
    @semantic("tx_tso_mss")     bit<16> mss;
    @semantic("tx_csum_offset") bit<8>  csum_off;
    @semantic("tx_vlan_insert") bit<16> vlan;
    bit<64> user0;
    bit<16> rsvd;
}

@endian("little")
parser QdmaDescParser(desc_in d, in qdma_ctx_t ctx, out qdma_h2c_base_t base,
                      out qdma_h2c_ext_t ext) {
    state start {
        d.extract(base);
        transition select(ctx.h2c_fmt) {
            0: accept;
            1: parse_ext;
            default: reject;
        };
    }
    state parse_ext {
        d.extract(ext);
        transition accept;
    }
}

@nic("qdma")
@endian("little")
control QdmaCmptDeparser(cmpt_out cmpt, in qdma_ctx_t ctx, in qdma_cmpt8_t base,
                         in qdma_cmpt16_ext_t ext16, in qdma_cmpt32_ext_t ext32,
                         in qdma_cmpt64_ext_t ext64) {
    apply {
        cmpt.emit(base);
        if (ctx.cmpt_size >= 1) {
            cmpt.emit(ext16);
        }
        if (ctx.cmpt_size >= 2) {
            cmpt.emit(ext32);
        }
        if (ctx.cmpt_size >= 3) {
            cmpt.emit(ext64);
        }
    }
}
)P4";

// ---------------------------------------------------------------------------
// dumbnic: netmap-style least common denominator — buffer length only.
// ---------------------------------------------------------------------------
const char* const kDumbSource = R"P4(
// A "dumb DMA" NIC: the least-common-denominator interface (netmap-style):
// a packet length and a done bit, nothing else.
struct dumb_ctx_t {
    bit<1> unused;
}

header dumb_cmpt_t {
    @semantic("pkt_len") bit<16> length;
    @fixed(1)            bit<8>  status;
    bit<8>  rsvd;
}

@nic("dumbnic")
@endian("little")
control DumbCmptDeparser(cmpt_out cmpt, in dumb_ctx_t ctx, in dumb_cmpt_t meta) {
    apply {
        cmpt.emit(meta);
    }
}
)P4";

}  // namespace

const std::vector<NicModel>& NicCatalog::all() {
  static const std::vector<NicModel> kModels = [] {
    std::vector<NicModel> models;
    models.emplace_back("dumbnic", NicClass::fixed,
                        "netmap-style dumb DMA engine (length only)",
                        kDumbSource, "DumbCmptDeparser");
    models.emplace_back("e1000", NicClass::fixed,
                        "Intel e1000 legacy: single layout with IP checksum",
                        kE1000Source, "E1000CmptDeparser");
    models.emplace_back("e1000e", NicClass::fixed,
                        "Intel e1000e: RSS hash xor (ip_id, checksum) — Fig. 6",
                        kE1000eSource, "E1000eCmptDeparser");
    models.emplace_back("ixgbe", NicClass::fixed,
                        "Intel 82599: Flow Director / RSS / fragment checksum",
                        kIxgbeSource, "IxgbeCmptDeparser");
    models.emplace_back("mlx5", NicClass::fixed,
                        "NVIDIA ConnectX: 64B big-endian CQE (12 fields) + "
                        "compressed mini-CQE formats",
                        kMlx5Source, "Mlx5CmptDeparser");
    models.emplace_back("bf3", NicClass::partial,
                        "NVIDIA BlueField-3 style: CQE + match-action mark + "
                        "16B flex format",
                        kBf3Source, "Bf3CmptDeparser");
    models.emplace_back("ice", NicClass::partial,
                        "Intel E810: 32B flexible descriptors with "
                        "profile-selected metadata slots",
                        kIceSource, "IceCmptDeparser");
    models.emplace_back("qdma", NicClass::programmable,
                        "AMD/Xilinx QDMA: programmable 8/16/32/64B completions "
                        "with custom accelerator fields",
                        kQdmaSource, "QdmaCmptDeparser");
    return models;
  }();
  return kModels;
}

}  // namespace opendesc::nic
