// The OpenDesc compiler facade (§4).
//
// Pipeline: parse NIC description + intent → extract the CmptDeparser CFG →
// enumerate feasible completion paths → solve Eq. 1 → pack the chosen
// path's layout → verify it → synthesize host stubs and SoftNIC shims.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "core/cfg.hpp"
#include "core/codegen.hpp"
#include "core/intent.hpp"
#include "core/layout.hpp"
#include "core/optimizer.hpp"
#include "core/paths.hpp"
#include "softnic/cost.hpp"

namespace opendesc::telemetry {
class Sink;
}  // namespace opendesc::telemetry

namespace opendesc::core {

struct CompileOptions {
  /// Deparser control to compile; empty = the single control of the program
  /// (error when the program declares several and none is named).
  std::string deparser_name;
  /// α of Eq. 1: DMA cost per completion byte.
  double dma_weight_per_byte = 1.0;
  /// Prefix of generated symbols; empty = "odx_<nic-name>".
  std::string prefix;
  /// Auto-register unknown intent semantics as extensions.
  bool auto_register_semantics = true;
  /// When set, each compilation publishes its search statistics (paths
  /// explored, Eq. 1 objective, chosen Size(p)) into this sink's registry.
  telemetry::Sink* telemetry = nullptr;
};

/// Everything the compilation of one (NIC, intent) pair produced.
struct CompileResult {
  std::string nic_name;
  Intent intent;

  // Analysis artifacts.
  std::size_t cfg_emit_nodes = 0;
  std::size_t cfg_branch_nodes = 0;
  std::string cfg_dot;
  std::vector<CompletionPath> paths;   ///< all feasible paths
  std::vector<PathScore> ranking;      ///< best-first

  // Selection.
  std::size_t chosen_index = 0;        ///< into `paths`
  CompiledLayout layout;
  std::vector<SoftNicShim> shims;      ///< Req \ Prov(p*)
  /// A context assignment steering the NIC onto the chosen path
  /// (programmed over the control channel in a real deployment).
  p4::ConstEnv context_assignment;

  // Synthesized stubs.
  std::string c_header;
  std::string xdp_header;
  std::string manifest;
  std::string report;                  ///< human-readable summary

  [[nodiscard]] const CompletionPath& chosen_path() const {
    return paths.at(chosen_index);
  }
  [[nodiscard]] const PathScore& chosen_score() const { return ranking.front(); }
};

/// Compiler instance; holds the semantic registry (mutable: intents may
/// register extension semantics) and the software cost table.
class Compiler {
 public:
  Compiler(softnic::SemanticRegistry& registry, const softnic::CostTable& costs)
      : registry_(registry), costs_(costs) {}

  /// Full pipeline from source text.
  [[nodiscard]] CompileResult compile(std::string_view nic_source,
                                      std::string_view intent_source,
                                      const CompileOptions& options = {}) const;

  /// Multi-tenant pipeline: compiles N intent headers against one shared
  /// NIC description, parsing and typechecking the description once.  Each
  /// tenant gets its own full CompileResult — distinct path selection,
  /// CompiledLayout and shim set — exactly as if compiled alone; only the
  /// front-end work is shared.  Results are positionally aligned with
  /// `intent_sources`.
  [[nodiscard]] std::vector<CompileResult> compile_intents(
      std::string_view nic_source,
      std::span<const std::string> intent_sources,
      const CompileOptions& options = {}) const;

  /// Pipeline from pre-parsed artifacts (used by the NIC catalog, which
  /// caches parsed descriptions).
  [[nodiscard]] CompileResult compile(const p4::Program& nic_program,
                                      const p4::TypeInfo& types,
                                      const p4::ControlDecl& deparser,
                                      Intent intent,
                                      const CompileOptions& options = {}) const;

  /// TX-side pipeline: matches a TX intent (tx_* semantics) against the
  /// NIC's DescParser formats.  The result's layout is the selected
  /// descriptor format; c_header holds generated *writer* stubs
  /// (<prefix>_set_<semantic>); shims name the offloads the host must
  /// perform in software before posting (e.g. software checksum when the
  /// format lacks tx_csum_en).
  [[nodiscard]] CompileResult compile_tx(std::string_view nic_source,
                                         std::string_view tx_intent_source,
                                         const CompileOptions& options = {}) const;

  [[nodiscard]] CompileResult compile_tx(const p4::Program& nic_program,
                                         const p4::TypeInfo& types,
                                         const p4::ParserDecl& desc_parser,
                                         Intent intent,
                                         const CompileOptions& options = {}) const;

  [[nodiscard]] softnic::SemanticRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const softnic::CostTable& costs() const noexcept { return costs_; }

 private:
  softnic::SemanticRegistry& registry_;
  const softnic::CostTable& costs_;
};

/// Picks the deparser control: `name` when given, else the unique control
/// with a cmpt_out parameter.  Throws Error(semantic) when ambiguous/absent.
[[nodiscard]] const p4::ControlDecl& select_deparser(const p4::Program& program,
                                                     std::string_view name);

/// The endianness a NIC declares on its deparser via @endian("big"/"little");
/// little when unannotated (Intel-style).
[[nodiscard]] Endian deparser_endian(const p4::ControlDecl& deparser);

}  // namespace opendesc::core
