#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

namespace opendesc::core {

using softnic::SemanticId;

std::string to_string(Placement p) {
  switch (p) {
    case Placement::pipeline: return "pipeline";
    case Placement::software: return "software";
    case Placement::rejected: return "rejected";
  }
  return "unknown";
}

FeatureLibrary::FeatureLibrary() {
  // Stage costs loosely track implementation complexity: hashes burn more
  // match-action stages than header-field copies; payload-inspecting
  // features (KV key extraction) need a parser extension + hash.
  const auto reg = [&](SemanticId id, std::uint32_t stages) {
    features_[softnic::raw(id)] = FeatureInfo{true, stages};
  };
  reg(SemanticId::rss_hash, 3);
  reg(SemanticId::rss_type, 1);
  reg(SemanticId::ip_csum_ok, 1);
  reg(SemanticId::l4_csum_ok, 2);
  reg(SemanticId::ip_checksum, 1);
  reg(SemanticId::l4_checksum, 2);
  reg(SemanticId::ip_id, 1);
  reg(SemanticId::vlan_tci, 1);
  reg(SemanticId::vlan_stripped, 1);
  reg(SemanticId::flow_id, 2);
  reg(SemanticId::packet_type, 1);
  reg(SemanticId::pkt_len, 1);
  reg(SemanticId::kv_key_hash, 4);
  // timestamp / queue_id / seq_no / mark / lro_seg_count are NIC-state or
  // clock features: they cannot be synthesized from a P4 reference
  // implementation into someone else's pipeline.
}

FeatureInfo FeatureLibrary::info(SemanticId id) const {
  const auto it = features_.find(softnic::raw(id));
  return it == features_.end() ? FeatureInfo{} : it->second;
}

void FeatureLibrary::register_feature(SemanticId id, FeatureInfo info) {
  features_[softnic::raw(id)] = info;
}

std::string OffloadPlan::describe() const {
  std::ostringstream out;
  out << "Offload plan: " << stages_used << "/" << stages_budget
      << " pipeline stage(s) used, host cost " << software_cost_before_ns
      << " -> " << software_cost_after_ns << " ns/pkt\n";
  for (const PlannedOffload& o : offloads) {
    out << "  " << o.semantic_name << ": " << to_string(o.placement);
    if (o.placement == Placement::pipeline) {
      out << " (" << o.stages << " stage(s), saves " << o.software_cost_ns
          << " ns/pkt)";
    } else if (o.placement == Placement::software) {
      out << " (w=" << o.software_cost_ns << " ns/pkt)";
    }
    out << "\n";
  }
  return out.str();
}

OffloadPlan plan_offloads(const std::vector<SoftNicShim>& shims,
                          nic::NicClass nic_class, const FeatureLibrary& library,
                          const PlannerOptions& options) {
  OffloadPlan plan;
  plan.stages_budget = nic_class == nic::NicClass::programmable
                           ? options.pipeline_stage_budget
                       : nic_class == nic::NicClass::partial
                           ? options.pipeline_stage_budget / 2
                           : 0;

  // Start with everything in software.
  for (const SoftNicShim& shim : shims) {
    PlannedOffload o;
    o.semantic = shim.semantic;
    o.semantic_name = shim.semantic_name;
    o.software_cost_ns = shim.cost_ns;
    o.placement = shim.cost_ns >= softnic::kInfiniteCost ? Placement::rejected
                                                         : Placement::software;
    plan.offloads.push_back(std::move(o));
    if (shim.cost_ns < softnic::kInfiniteCost) {
      plan.software_cost_before_ns += shim.cost_ns;
    }
  }
  plan.software_cost_after_ns = plan.software_cost_before_ns;
  if (plan.stages_budget == 0) {
    return plan;  // fixed-function: software is the only option
  }

  // Greedy: push the features with the highest software cost per stage
  // first (classic knapsack heuristic; the sets are tiny).
  std::vector<PlannedOffload*> candidates;
  for (PlannedOffload& o : plan.offloads) {
    const FeatureInfo feature = library.info(o.semantic);
    if (feature.has_reference_impl && feature.pipeline_stages > 0) {
      o.stages = feature.pipeline_stages;
      candidates.push_back(&o);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PlannedOffload* a, const PlannedOffload* b) {
              const double density_a =
                  a->software_cost_ns / static_cast<double>(a->stages);
              const double density_b =
                  b->software_cost_ns / static_cast<double>(b->stages);
              if (density_a != density_b) {
                return density_a > density_b;
              }
              return a->semantic_name < b->semantic_name;  // determinism
            });

  for (PlannedOffload* o : candidates) {
    if (plan.stages_used + o->stages > plan.stages_budget) {
      continue;
    }
    o->placement = Placement::pipeline;
    plan.stages_used += o->stages;
    plan.software_cost_after_ns -= o->software_cost_ns;
  }
  return plan;
}

}  // namespace opendesc::core
