#include "core/txdesc.hpp"

#include <sstream>

#include "common/error.hpp"
#include "p4/parser.hpp"
#include "p4/pretty.hpp"

namespace opendesc::core {

namespace {

[[noreturn]] void fail(const p4::SourceLocation& at, const std::string& message) {
  throw Error(ErrorKind::type, p4::to_string(at) + ": " + message);
}

/// Walks the parser state machine collecting descriptor formats.
class FormatWalker {
 public:
  FormatWalker(const p4::Program& program, const p4::TypeInfo& types,
               const p4::ParserDecl& parser,
               const softnic::SemanticRegistry& registry,
               const TxDescOptions& options)
      : program_(program), types_(types), parser_(parser), registry_(registry),
        options_(options) {}

  std::vector<CompletionPath> run() {
    const p4::ParserState* start = parser_.find_state("start");
    if (start == nullptr) {
      fail(parser_.location(), "descriptor parser has no start state");
    }
    walk(*start, {}, p4::ConstraintSet(options_.consts), {}, {});
    return std::move(formats_);
  }

 private:
  const p4::Param* find_param(const std::string& name) const {
    for (const p4::Param& p : parser_.params()) {
      if (p.name == name) {
        return &p;
      }
    }
    return nullptr;
  }

  const p4::StructLikeDecl* param_struct(const p4::Param& param) const {
    if (param.type.kind != p4::TypeRef::Kind::named) {
      return nullptr;
    }
    if (const auto* header = program_.find_header(param.type.name)) {
      return header;
    }
    return program_.find_struct(param.type.name);
  }

  EmitPiece piece_from_field(const std::string& header_name,
                             const p4::FieldDecl& field) const {
    EmitPiece piece;
    piece.field_name = field.name;
    piece.bit_width = types_.field_width(field);
    if (const auto* sem = p4::find_annotation(field.annotations, "semantic")) {
      const auto id = registry_.find(sem->string_arg());
      if (!id) {
        fail(field.location, "unknown @semantic(\"" + sem->string_arg() +
                                 "\") in header '" + header_name + "'");
      }
      piece.semantic = *id;
    }
    if (const auto* fixed = p4::find_annotation(field.annotations, "fixed")) {
      piece.fixed_value = fixed->int_arg();
    }
    return piece;
  }

  /// Decodes a `d.extract(target)` statement into the extracted pieces.
  /// `target` must be an `out` parameter (or a member-designated header of
  /// one).  Returns empty when the statement is not an extract.
  std::vector<EmitPiece> decode_extract(const p4::Stmt& stmt) const {
    if (stmt.kind() != p4::StmtKind::method_call) {
      return {};
    }
    const auto& call = static_cast<const p4::MethodCallStmt&>(stmt).call();
    if (call.callee().kind() != p4::ExprKind::member) {
      return {};
    }
    const auto& member = static_cast<const p4::MemberExpr&>(call.callee());
    if (member.member() != "extract") {
      return {};
    }
    if (call.args().size() != 1) {
      fail(call.location(), "extract expects exactly one argument");
    }
    const std::string path = p4::dotted_path(*call.args()[0]);
    const std::size_t dot = path.find('.');
    const std::string base =
        path.substr(0, dot == std::string::npos ? path.size() : dot);
    const p4::Param* param = find_param(base);
    if (param == nullptr) {
      fail(call.location(), "extract into unknown parameter '" + base + "'");
    }
    const p4::StructLikeDecl* decl = param_struct(*param);
    if (decl == nullptr) {
      fail(call.location(),
           "extract target '" + base + "' has no header type declaration");
    }
    std::vector<EmitPiece> pieces;
    for (const p4::FieldDecl& field : decl->fields()) {
      pieces.push_back(piece_from_field(decl->name(), field));
    }
    return pieces;
  }

  void walk(const p4::ParserState& state, std::vector<EmitPiece> pieces,
            p4::ConstraintSet constraints, std::vector<std::string> trace,
            std::set<std::string> visited) {
    if (!visited.insert(state.name).second) {
      fail(state.location, "descriptor parser state cycle through '" +
                               state.name + "'");
    }
    for (const p4::StmtPtr& stmt : state.statements) {
      std::vector<EmitPiece> extracted = decode_extract(*stmt);
      pieces.insert(pieces.end(), std::make_move_iterator(extracted.begin()),
                    std::make_move_iterator(extracted.end()));
    }

    const auto go = [&](const std::string& next, p4::ConstraintSet next_cs,
                        std::vector<std::string> next_trace) {
      if (next == p4::kAcceptState) {
        finish(pieces, std::move(next_cs), std::move(next_trace));
        return;
      }
      if (next == p4::kRejectState) {
        return;  // rejected walks are not formats
      }
      const p4::ParserState* target = parser_.find_state(next);
      if (target == nullptr) {
        fail(state.location, "transition to unknown state '" + next + "'");
      }
      walk(*target, pieces, std::move(next_cs), std::move(next_trace), visited);
    };

    if (!state.direct_next.empty()) {
      go(state.direct_next, constraints, trace);
      return;
    }
    if (!state.has_select()) {
      // No transition at all: P4 semantics treat it as reject.
      return;
    }
    if (state.select_keys.size() != 1) {
      fail(state.location,
           "OpenDesc descriptor parsers support single-key selects");
    }
    const p4::Expr& key = *state.select_keys[0];
    const std::string key_path = p4::dotted_path(key);

    // Track which values earlier cases consumed, so `default` can at least
    // be annotated (it remains unconstrained in the solver — conservative).
    for (const p4::SelectCase& c : state.cases) {
      p4::ConstraintSet next_cs = constraints;
      std::vector<std::string> next_trace = trace;
      if (c.key != nullptr) {
        const auto value = p4::try_evaluate(*c.key, options_.consts);
        if (!value) {
          fail(c.location, "select keyset must be a compile-time constant");
        }
        if (!key_path.empty()) {
          // key == value as a constraint; prune contradictions.
          bool ok = next_cs.bound(key_path, ~std::uint64_t{0});
          (void)ok;
          const p4::ExprPtr synth = p4::parse_expression(
              key_path + " == " + std::to_string(*value));
          if (!next_cs.assume(*synth, true)) {
            continue;
          }
        }
        next_trace.push_back(p4::to_source(key) + " == " +
                             std::to_string(*value));
      } else {
        next_trace.push_back(p4::to_source(key) + " == default");
      }
      go(c.next_state, std::move(next_cs), std::move(next_trace));
    }
  }

  void finish(std::vector<EmitPiece> pieces, p4::ConstraintSet constraints,
              std::vector<std::string> trace) {
    if (formats_.size() >= options_.max_formats) {
      throw Error(ErrorKind::internal, "descriptor format explosion");
    }
    CompletionPath format;
    format.id = "fmt" + std::to_string(formats_.size());
    for (const EmitPiece& piece : pieces) {
      if (piece.semantic) {
        format.provided.insert(*piece.semantic);
      }
      format.size_bits += piece.bit_width;
    }
    format.pieces = std::move(pieces);
    format.constraints = std::move(constraints);
    format.branch_trace = std::move(trace);
    formats_.push_back(std::move(format));
  }

  const p4::Program& program_;
  const p4::TypeInfo& types_;
  const p4::ParserDecl& parser_;
  const softnic::SemanticRegistry& registry_;
  const TxDescOptions& options_;
  std::vector<CompletionPath> formats_;
};

}  // namespace

std::vector<CompletionPath> enumerate_tx_formats(
    const p4::Program& program, const p4::TypeInfo& types,
    const p4::ParserDecl& desc_parser, const softnic::SemanticRegistry& registry,
    const TxDescOptions& options) {
  FormatWalker walker(program, types, desc_parser, registry, options);
  return walker.run();
}

Endian desc_parser_endian(const p4::ParserDecl& desc_parser) {
  const p4::Annotation* a =
      p4::find_annotation(desc_parser.annotations(), "endian");
  if (a == nullptr) {
    return Endian::little;
  }
  const std::string& value = a->string_arg();
  if (value == "big") {
    return Endian::big;
  }
  if (value == "little") {
    return Endian::little;
  }
  throw Error(ErrorKind::type, "@endian must be \"big\" or \"little\"");
}

namespace {

/// C statements storing the low `width` bits of `v` at the slice position,
/// mirroring common/bytes.cpp write_bits semantics.
std::string store_statements(const CompiledLayout& layout,
                             const FieldSlice& slice) {
  const std::size_t bo = slice.byte_offset();
  const std::size_t bit = slice.bit_offset();
  const std::size_t width = slice.bit_width;
  const std::size_t span = (bit + width + 7) / 8;
  const bool little = layout.endian() == Endian::little;
  const std::size_t shift = little ? bit : 8 * span - bit - width;

  std::ostringstream out;
  out << "    uint64_t acc = 0;\n";
  for (std::size_t i = 0; i < span; ++i) {
    const std::size_t sh = little ? 8 * i : 8 * (span - 1 - i);
    out << "    acc |= (uint64_t)desc[" << (bo + i) << "]";
    if (sh != 0) out << " << " << sh;
    out << ";\n";
  }
  out << "    acc &= ~(0x" << std::hex << low_mask(width) << std::dec
      << "ULL << " << shift << ");\n";
  out << "    acc |= ((uint64_t)(value & 0x" << std::hex << low_mask(width)
      << std::dec << "ULL)) << " << shift << ";\n";
  for (std::size_t i = 0; i < span; ++i) {
    const std::size_t sh = little ? 8 * i : 8 * (span - 1 - i);
    out << "    desc[" << (bo + i) << "] = (uint8_t)(acc";
    if (sh != 0) out << " >> " << sh;
    out << ");\n";
  }
  return out.str();
}

std::string upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

std::string generate_tx_writer_header(const CompiledLayout& layout,
                                      const softnic::SemanticRegistry& registry,
                                      const std::string& prefix) {
  std::ostringstream out;
  out << "/*\n * Generated by the OpenDesc compiler — DO NOT EDIT.\n"
      << " * TX descriptor writers for NIC " << layout.nic_name() << ", format "
      << layout.path_id() << " (" << layout.total_bytes() << " bytes, "
      << to_string(layout.endian()) << "-endian).\n */\n"
      << "#pragma once\n\n#include <stdint.h>\n#include <string.h>\n\n"
      << "#define " << upper(prefix) << "_DESC_SIZE " << layout.total_bytes()
      << "u\n\n";

  // Initializer: zero + @fixed stamps.
  out << "static inline void " << prefix << "_desc_init(uint8_t *desc) {\n"
      << "    memset(desc, 0, " << layout.total_bytes() << ");\n";
  for (const FieldSlice& slice : layout.slices()) {
    if (!slice.fixed_value) {
      continue;
    }
    out << "    { /* " << slice.name << " = " << *slice.fixed_value
        << " (@fixed) */\n"
        << "    uint64_t value = " << *slice.fixed_value << "ULL;\n"
        << store_statements(layout, slice) << "    }\n";
  }
  out << "}\n";

  for (const FieldSlice& slice : layout.slices()) {
    const std::string symbol =
        slice.semantic ? registry.name(*slice.semantic) : slice.name;
    out << "\n/* " << slice.name << " @ byte " << slice.byte_offset() << " bit "
        << slice.bit_offset() << ", " << slice.bit_width << " bits */\n"
        << "static inline void " << prefix << "_set_" << symbol
        << "(uint8_t *desc, uint64_t value) {\n"
        << store_statements(layout, slice) << "}\n";
  }
  return out.str();
}

}  // namespace opendesc::core
