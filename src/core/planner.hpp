// Offload placement planning (§2 + §5).
//
// "Missing features are implemented in software, or pushed to the
// programmable pipeline if available."  The paper's prototype stops at
// listing the missing features; this module implements the next step it
// sketches: given the SoftNIC shims of a compilation, the NIC's
// programmability class, and a feature library saying which semantics have
// reference implementations compilable to a pipeline (Lyra/P4FPGA/DPL-style
// backends), produce a *placement plan* under a match-action resource
// budget — the Pipeleon/P4All-flavoured constraint of §5.
#pragma once

#include <vector>

#include "core/codegen.hpp"
#include "nic/model.hpp"
#include "softnic/cost.hpp"

namespace opendesc::core {

/// Where one missing semantic ends up.
enum class Placement : std::uint8_t {
  pipeline,  ///< synthesized into the NIC's programmable pipeline
  software,  ///< SoftNIC shim on the host
  rejected,  ///< no implementation anywhere (should have failed Eq. 1)
};

[[nodiscard]] std::string to_string(Placement p);

/// What the feature library knows about one semantic.
struct FeatureInfo {
  bool has_reference_impl = false;  ///< reference P4 exists, compilable
  std::uint32_t pipeline_stages = 0; ///< match-action stages it consumes
};

/// Library of reference implementations.  Builtins are pre-registered with
/// stage costs mirroring their complexity (hashing > parsing > field
/// copies); extensions default to "no reference implementation" until
/// registered — matching the paper's requirement that every feature ship a
/// reference implementation to be offloadable.
class FeatureLibrary {
 public:
  FeatureLibrary();

  [[nodiscard]] FeatureInfo info(softnic::SemanticId id) const;
  void register_feature(softnic::SemanticId id, FeatureInfo info);

 private:
  std::map<std::uint32_t, FeatureInfo> features_;
};

/// One planned placement.
struct PlannedOffload {
  softnic::SemanticId semantic{};
  std::string semantic_name;
  Placement placement = Placement::software;
  double software_cost_ns = 0.0;  ///< w(s), what pipeline placement saves
  std::uint32_t stages = 0;       ///< pipeline stages consumed (if placed)
};

/// Full plan for one compilation.
struct OffloadPlan {
  std::vector<PlannedOffload> offloads;
  std::uint32_t stages_used = 0;
  std::uint32_t stages_budget = 0;
  double software_cost_before_ns = 0.0;  ///< Σ w(s) with everything in software
  double software_cost_after_ns = 0.0;   ///< Σ w(s) still on the host

  [[nodiscard]] std::string describe() const;
};

struct PlannerOptions {
  /// Match-action stages available to *this* application's features (after
  /// the fixed pipeline), Menshen-style per-tenant slice.  Only meaningful
  /// for partially/fully programmable NICs.
  std::uint32_t pipeline_stage_budget = 8;
};

/// Plans placements for the shims of `result` on a NIC of class `nic_class`.
/// Fixed-function NICs place everything in software.  Programmable classes
/// greedily push the highest-software-cost features whose reference
/// implementations fit the remaining stage budget (partial NICs get half
/// the budget — the fixed pipeline occupies the rest).
[[nodiscard]] OffloadPlan plan_offloads(const std::vector<SoftNicShim>& shims,
                                        nic::NicClass nic_class,
                                        const FeatureLibrary& library,
                                        const PlannerOptions& options = {});

}  // namespace opendesc::core
