#include "core/optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::core {

double effective_cost(const Intent& intent, const softnic::CostTable& costs,
                      softnic::SemanticId semantic) {
  for (const IntentField& f : intent.fields) {
    if (f.semantic == semantic && f.cost_override) {
      return *f.cost_override;
    }
  }
  return costs.cost(semantic);
}

PathScore score_path(const CompletionPath& path, std::size_t index,
                     const Intent& intent, const softnic::CostTable& costs,
                     const OptimizerOptions& options) {
  PathScore score;
  score.path_index = index;
  for (const softnic::SemanticId s : intent.requested()) {
    if (!path.provides(s)) {
      score.missing.insert(s);
      score.softnic_cost += effective_cost(intent, costs, s);
    }
  }
  score.dma_cost =
      options.dma_weight_per_byte * static_cast<double>(path.size_bytes());
  return score;
}

std::vector<PathScore> rank_paths(const std::vector<CompletionPath>& paths,
                                  const Intent& intent,
                                  const softnic::CostTable& costs,
                                  const OptimizerOptions& options) {
  std::vector<PathScore> scores;
  scores.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    scores.push_back(score_path(paths[i], i, intent, costs, options));
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [&](const PathScore& a, const PathScore& b) {
                     if (a.total() != b.total()) {
                       return a.total() < b.total();
                     }
                     const std::size_t size_a = paths[a.path_index].size_bits;
                     const std::size_t size_b = paths[b.path_index].size_bits;
                     if (size_a != size_b) {
                       return size_a < size_b;
                     }
                     return a.path_index < b.path_index;
                   });
  return scores;
}

PathScore choose_path(const std::vector<CompletionPath>& paths,
                      const Intent& intent, const softnic::CostTable& costs,
                      const softnic::SemanticRegistry& registry,
                      const OptimizerOptions& options) {
  if (paths.empty()) {
    throw Error(ErrorKind::unsatisfiable,
                "the NIC description exposes no feasible completion path");
  }
  const std::vector<PathScore> ranked = rank_paths(paths, intent, costs, options);
  const PathScore& best = ranked.front();
  if (!best.satisfiable()) {
    // Name the semantics that are infinite on every path to guide the user.
    std::string names;
    for (const softnic::SemanticId s : intent.requested()) {
      const bool on_some_path =
          std::any_of(paths.begin(), paths.end(),
                      [&](const CompletionPath& p) { return p.provides(s); });
      if (!on_some_path && effective_cost(intent, costs, s) >= softnic::kInfiniteCost) {
        if (!names.empty()) {
          names += ", ";
        }
        names += registry.name(s);
      }
    }
    throw Error(ErrorKind::unsatisfiable,
                "no completion path can satisfy the intent: semantic(s) {" +
                    names +
                    "} are not provided by any path and have no software "
                    "fallback (w = infinity)");
  }
  return best;
}

}  // namespace opendesc::core
