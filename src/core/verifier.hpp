// Layout verifier.
//
// Before a generated layout is allowed on the fast path (unchecked reads),
// it is verified once: every slice must lie inside the record, fit its
// 64-bit access window, not overlap any other slice, and match the declared
// width of its semantic.  This mirrors the paper's point that XDP-style
// bounded access lets eBPF read descriptors safely — here the bound proof is
// done ahead of time for the user-level accessors too.
#pragma once

#include <string>
#include <vector>

#include "core/layout.hpp"

namespace opendesc::core {

/// One verification finding.
struct VerifyIssue {
  std::string slice_name;
  std::string message;
};

/// Verifies `layout`.  Returns the list of issues (empty = verified).
[[nodiscard]] std::vector<VerifyIssue> verify_layout(
    const CompiledLayout& layout, const softnic::SemanticRegistry& registry);

/// Throwing variant: raises Error(verification) listing every issue.
void verify_layout_or_throw(const CompiledLayout& layout,
                            const softnic::SemanticRegistry& registry);

}  // namespace opendesc::core
