#include "core/cfg.hpp"

#include <sstream>

#include "common/error.hpp"
#include "p4/pretty.hpp"

namespace opendesc::core {

using p4::DeclKind;
using p4::Expr;
using p4::ExprKind;
using p4::Stmt;
using p4::StmtKind;

std::vector<const CfgEdge*> Cfg::successors(std::size_t id) const {
  std::vector<const CfgEdge*> out;
  for (const CfgEdge& e : edges_) {
    if (e.from == id) {
      out.push_back(&e);
    }
  }
  return out;
}

std::size_t Cfg::emit_count() const {
  // Anchor nodes (empty emits inserted for empty branch arms) don't count.
  std::size_t n = 0;
  for (const CfgNode& node : nodes_) {
    if (node.kind == CfgNodeKind::emit && !node.pieces.empty()) {
      ++n;
    }
  }
  return n;
}

std::size_t Cfg::branch_count() const {
  std::size_t n = 0;
  for (const CfgNode& node : nodes_) {
    if (node.kind == CfgNodeKind::branch) {
      ++n;
    }
  }
  return n;
}

std::size_t Cfg::add_node(CfgNode node) {
  node.id = nodes_.size();
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void Cfg::add_edge(std::size_t from, std::size_t to, std::optional<bool> polarity) {
  edges_.push_back(CfgEdge{from, to, polarity});
}

std::string Cfg::to_dot() const {
  std::ostringstream out;
  out << "digraph cmpt_deparser {\n";
  for (const CfgNode& node : nodes_) {
    out << "  n" << node.id << " [label=\"";
    switch (node.kind) {
      case CfgNodeKind::entry: out << "entry"; break;
      case CfgNodeKind::exit: out << "exit"; break;
      case CfgNodeKind::branch:
        out << "if " << (node.predicate ? p4::to_source(*node.predicate) : "?");
        break;
      case CfgNodeKind::emit: {
        out << "emit ";
        for (std::size_t i = 0; i < node.pieces.size(); ++i) {
          if (i != 0) out << ",";
          out << node.pieces[i].field_name;
        }
        out << " (" << node.size_bits() << "b)";
        break;
      }
    }
    out << "\"];\n";
  }
  for (const CfgEdge& e : edges_) {
    out << "  n" << e.from << " -> n" << e.to;
    if (e.polarity) {
      out << " [label=\"" << (*e.polarity ? "true" : "false") << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

namespace {

[[noreturn]] void fail(const p4::SourceLocation& at, const std::string& message) {
  throw Error(ErrorKind::type, p4::to_string(at) + ": " + message);
}

class CfgBuilder {
 public:
  CfgBuilder(const p4::Program& program, const p4::TypeInfo& types,
             const p4::ControlDecl& deparser,
             const softnic::SemanticRegistry& registry,
             const CfgBuildOptions& options)
      : program_(program), types_(types), deparser_(deparser),
        registry_(registry) {
    out_param_ = options.out_param.empty() ? detect_out_param() : options.out_param;
  }

  Cfg build() {
    const std::size_t entry = cfg_.add_node(
        CfgNode{0, CfgNodeKind::entry, {}, nullptr, deparser_.location()});
    cfg_.set_entry(entry);
    std::vector<std::size_t> tails = build_stmt(deparser_.apply(), {entry});
    const std::size_t exit_node = cfg_.add_node(
        CfgNode{0, CfgNodeKind::exit, {}, nullptr, deparser_.location()});
    cfg_.set_exit(exit_node);
    for (const std::size_t tail : tails) {
      cfg_.add_edge(tail, exit_node, std::nullopt);
    }
    return std::move(cfg_);
  }

 private:
  /// The parameter whose type is the `cmpt_out` channel.
  std::string detect_out_param() const {
    for (const p4::Param& p : deparser_.params()) {
      if (p.type.kind == p4::TypeRef::Kind::named && p.type.name == "cmpt_out") {
        return p.name;
      }
    }
    fail(deparser_.location(),
         "deparser '" + deparser_.name() + "' has no cmpt_out parameter");
  }

  /// Finds a deparser parameter by name; nullptr when absent.
  const p4::Param* find_param(const std::string& name) const {
    for (const p4::Param& p : deparser_.params()) {
      if (p.name == name) {
        return &p;
      }
    }
    return nullptr;
  }

  /// Resolves the header/struct declaration backing a parameter type.
  const p4::StructLikeDecl* param_struct(const p4::Param& param) const {
    if (param.type.kind != p4::TypeRef::Kind::named) {
      return nullptr;
    }
    if (const auto* header = program_.find_header(param.type.name)) {
      return header;
    }
    return program_.find_struct(param.type.name);
  }

  EmitPiece piece_from_field(const p4::FieldDecl& field) const {
    EmitPiece piece;
    piece.field_name = field.name;
    piece.bit_width = types_.field_width(field);
    if (const auto* sem = p4::find_annotation(field.annotations, "semantic")) {
      const auto id = registry_.find(sem->string_arg());
      if (!id) {
        fail(field.location, "unknown @semantic(\"" + sem->string_arg() +
                                 "\") — register it first");
      }
      piece.semantic = *id;
    }
    if (const auto* fixed = p4::find_annotation(field.annotations, "fixed")) {
      piece.fixed_value = fixed->int_arg();
    }
    return piece;
  }

  /// Decodes one emit call into its pieces.  Accepts:
  ///   out.emit(param.field)  — a single annotated field
  ///   out.emit(param)        — every field of the parameter's header
  std::vector<EmitPiece> decode_emit(const p4::CallExpr& call) const {
    if (call.args().size() != 1) {
      fail(call.location(), "emit expects exactly one argument");
    }
    const Expr& arg = *call.args()[0];
    const std::string path = p4::dotted_path(arg);
    if (path.empty()) {
      fail(arg.location(), "emit argument must be a field or header reference");
    }

    const std::size_t dot = path.find('.');
    const std::string base = path.substr(0, dot == std::string::npos ? path.size() : dot);
    const p4::Param* param = find_param(base);
    if (param == nullptr) {
      fail(arg.location(), "emit references unknown parameter '" + base + "'");
    }
    const p4::StructLikeDecl* decl = param_struct(*param);
    if (decl == nullptr) {
      fail(arg.location(), "emit parameter '" + base +
                               "' has no header/struct type declaration");
    }

    std::vector<EmitPiece> pieces;
    if (dot == std::string::npos) {
      // Whole-header emit: every field in declaration order.
      for (const p4::FieldDecl& field : decl->fields()) {
        pieces.push_back(piece_from_field(field));
      }
      return pieces;
    }
    const std::string member = path.substr(dot + 1);
    if (member.find('.') != std::string::npos) {
      fail(arg.location(), "nested member emits are not supported");
    }
    const p4::FieldDecl* field = decl->find_field(member);
    if (field == nullptr) {
      fail(arg.location(), "header '" + decl->name() + "' has no field '" +
                               member + "'");
    }
    pieces.push_back(piece_from_field(*field));
    return pieces;
  }

  /// Returns true when the statement is `out_param.emit(...)`.
  const p4::CallExpr* as_emit(const Stmt& stmt) const {
    if (stmt.kind() != StmtKind::method_call) {
      return nullptr;
    }
    const auto& call = static_cast<const p4::MethodCallStmt&>(stmt).call();
    if (call.callee().kind() != ExprKind::member) {
      return nullptr;
    }
    const auto& member = static_cast<const p4::MemberExpr&>(call.callee());
    if (member.member() != "emit") {
      return nullptr;
    }
    return p4::dotted_path(member.base()) == out_param_ ? &call : nullptr;
  }

  /// Builds the subgraph of `stmt`, connecting it below every node in
  /// `preds`; returns the dangling tails.
  std::vector<std::size_t> build_stmt(const Stmt& stmt,
                                      std::vector<std::size_t> preds) {
    switch (stmt.kind()) {
      case StmtKind::block: {
        const auto& block = static_cast<const p4::BlockStmt&>(stmt);
        for (const p4::StmtPtr& s : block.statements()) {
          preds = build_stmt(*s, std::move(preds));
        }
        return preds;
      }
      case StmtKind::if_stmt: {
        const auto& if_stmt = static_cast<const p4::IfStmt&>(stmt);
        const std::size_t branch = cfg_.add_node(CfgNode{
            0, CfgNodeKind::branch, {}, &if_stmt.condition(), if_stmt.location()});
        for (const std::size_t p : preds) {
          cfg_.add_edge(p, branch, std::nullopt);
        }
        // True edge: anchor node so the subtree hangs off a labelled edge.
        std::vector<std::size_t> tails =
            build_branch(if_stmt.then_branch(), branch, true);
        if (if_stmt.else_branch() != nullptr) {
          auto else_tails = build_branch(*if_stmt.else_branch(), branch, false);
          tails.insert(tails.end(), else_tails.begin(), else_tails.end());
        } else {
          // Fall-through: the branch node itself is a tail on the false edge.
          // Model it with a zero-size emit anchor to keep edges labelled.
          const std::size_t anchor = cfg_.add_node(CfgNode{
              0, CfgNodeKind::emit, {}, nullptr, if_stmt.location()});
          cfg_.add_edge(branch, anchor, false);
          tails.push_back(anchor);
        }
        return tails;
      }
      case StmtKind::method_call: {
        if (const p4::CallExpr* call = as_emit(stmt)) {
          CfgNode node{0, CfgNodeKind::emit, decode_emit(*call), nullptr,
                       stmt.location()};
          const std::size_t id = cfg_.add_node(std::move(node));
          for (const std::size_t p : preds) {
            cfg_.add_edge(p, id, std::nullopt);
          }
          return {id};
        }
        // Non-emit calls (e.g. pipeline externs) do not affect the layout.
        return preds;
      }
      case StmtKind::assign:
      case StmtKind::var_decl:
        return preds;  // value-level statements do not shape the layout
    }
    return preds;
  }

  std::vector<std::size_t> build_branch(const Stmt& body, std::size_t branch,
                                        bool polarity) {
    // Build the body hanging off a labelled edge: connect via a fresh
    // first-node using an explicit polarity edge.  We achieve this by
    // building the body with a fake predecessor, then rewriting the first
    // edge(s).  Simpler: record edge count, build, then fix labels of edges
    // leaving `branch`.
    const std::size_t first_edge = cfg_edges_count();
    std::vector<std::size_t> tails = build_stmt(body, {branch});
    // Any edge added from `branch` in this window gets the polarity label.
    label_edges_from(branch, first_edge, polarity);
    if (tails.size() == 1 && tails[0] == branch) {
      // Empty body: add an anchor so the edge exists and is labelled.
      const std::size_t anchor = cfg_.add_node(CfgNode{
          0, CfgNodeKind::emit, {}, nullptr, body.location()});
      cfg_.add_edge(branch, anchor, polarity);
      return {anchor};
    }
    return tails;
  }

  [[nodiscard]] std::size_t cfg_edges_count() const { return cfg_.edges().size(); }

  void label_edges_from(std::size_t branch, std::size_t first_edge, bool polarity) {
    // const_cast-free label fixup: rebuild via the public interface is
    // wasteful; Cfg grants us access through a dedicated mutator instead.
    cfg_.relabel_edges(branch, first_edge, polarity);
  }

  const p4::Program& program_;
  const p4::TypeInfo& types_;
  const p4::ControlDecl& deparser_;
  const softnic::SemanticRegistry& registry_;
  std::string out_param_;
  Cfg cfg_;
};

}  // namespace

Cfg build_cfg(const p4::Program& program, const p4::TypeInfo& types,
              const p4::ControlDecl& deparser,
              const softnic::SemanticRegistry& registry,
              const CfgBuildOptions& options) {
  CfgBuilder builder(program, types, deparser, registry, options);
  return builder.build();
}

}  // namespace opendesc::core
