// The path-selection optimization of §4 step 3 (Eq. 1):
//
//     min_{p ∈ Paths(G)}  Σ_{s ∈ Req \ Prov(p)} w(s)  +  α · Size(p)
//
// The first term is the SoftNIC (software fallback) cost of every requested
// semantic the path does not provide; the second is the DMA completion
// footprint, weighted by α (cost per byte).  A program is rejected as
// unsatisfiable when some requested semantic has w(s) = ∞ on every path.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/intent.hpp"
#include "core/paths.hpp"
#include "softnic/cost.hpp"

namespace opendesc::core {

/// Optimizer knobs.
struct OptimizerOptions {
  /// α — cost (ns-equivalents) per completion byte DMAed to the host.
  double dma_weight_per_byte = 1.0;
};

/// Score of one candidate path against one intent.
struct PathScore {
  std::size_t path_index = 0;
  double softnic_cost = 0.0;  ///< Σ w(s) over missing requested semantics
  double dma_cost = 0.0;      ///< α · Size(p) in bytes
  std::set<softnic::SemanticId> missing;  ///< Req \ Prov(p)

  [[nodiscard]] double total() const noexcept { return softnic_cost + dma_cost; }
  [[nodiscard]] bool satisfiable() const noexcept {
    return softnic_cost < softnic::kInfiniteCost;
  }
};

/// Effective cost table: the global CostTable with the intent's per-field
/// @cost overrides applied.
[[nodiscard]] double effective_cost(const Intent& intent,
                                    const softnic::CostTable& costs,
                                    softnic::SemanticId semantic);

/// Scores one path (Eq. 1 with the given α).
[[nodiscard]] PathScore score_path(const CompletionPath& path, std::size_t index,
                                   const Intent& intent,
                                   const softnic::CostTable& costs,
                                   const OptimizerOptions& options);

/// Scores every path and returns them sorted best-first (ties broken toward
/// smaller completions, then lower index for determinism).
[[nodiscard]] std::vector<PathScore> rank_paths(
    const std::vector<CompletionPath>& paths, const Intent& intent,
    const softnic::CostTable& costs, const OptimizerOptions& options = {});

/// Picks the optimal path p*.  Throws Error(unsatisfiable) when `paths` is
/// empty or every path leaves some infinite-cost semantic unprovided; the
/// message names the offending semantics.
[[nodiscard]] PathScore choose_path(const std::vector<CompletionPath>& paths,
                                    const Intent& intent,
                                    const softnic::CostTable& costs,
                                    const softnic::SemanticRegistry& registry,
                                    const OptimizerOptions& options = {});

}  // namespace opendesc::core
