#include "core/paths.hpp"

#include <sstream>

#include "common/error.hpp"
#include "p4/pretty.hpp"

namespace opendesc::core {

std::string CompletionPath::describe(
    const softnic::SemanticRegistry& registry) const {
  std::ostringstream out;
  out << id << ": {";
  bool first = true;
  for (const softnic::SemanticId s : provided) {
    if (!first) out << ", ";
    out << registry.name(s);
    first = false;
  }
  out << "} " << size_bytes() << "B";
  if (!branch_trace.empty()) {
    out << "  [";
    for (std::size_t i = 0; i < branch_trace.size(); ++i) {
      if (i != 0) out << " && ";
      out << branch_trace[i];
    }
    out << "]";
  }
  return out.str();
}

namespace {

class PathWalker {
 public:
  PathWalker(const Cfg& cfg, const PathEnumOptions& options)
      : cfg_(cfg), options_(options) {}

  std::vector<CompletionPath> run() {
    p4::ConstraintSet root(options_.consts);
    for (const auto& [path, max] : options_.variable_bounds) {
      if (!root.bound(path, max)) {
        return {};  // impossible bounds: no feasible path at all
      }
    }
    walk(cfg_.entry_id(), {}, root, {});
    return std::move(paths_);
  }

 private:
  void walk(std::size_t node_id, std::vector<std::size_t> emitted,
            p4::ConstraintSet constraints, std::vector<std::string> trace) {
    const CfgNode& node = cfg_.node(node_id);

    if (node.kind == CfgNodeKind::emit && !node.pieces.empty()) {
      emitted.push_back(node_id);
    }
    if (node.kind == CfgNodeKind::exit) {
      finish(std::move(emitted), std::move(constraints), std::move(trace));
      return;
    }

    const std::vector<const CfgEdge*> succ = cfg_.successors(node_id);
    if (succ.empty()) {
      // Malformed graph; treat the dangling node as an exit.
      finish(std::move(emitted), std::move(constraints), std::move(trace));
      return;
    }

    for (const CfgEdge* edge : succ) {
      p4::ConstraintSet next = constraints;
      std::vector<std::string> next_trace = trace;
      if (edge->polarity.has_value() && node.predicate != nullptr) {
        if (!next.assume(*node.predicate, *edge->polarity) &&
            options_.prune_infeasible) {
          continue;  // infeasible branch: prune
        }
        next_trace.push_back((*edge->polarity ? "" : "!(") +
                             p4::to_source(*node.predicate) +
                             (*edge->polarity ? "" : ")"));
      }
      walk(edge->to, emitted, std::move(next), std::move(next_trace));
    }
  }

  void finish(std::vector<std::size_t> emitted, p4::ConstraintSet constraints,
              std::vector<std::string> trace) {
    if (paths_.size() >= options_.max_paths) {
      throw Error(ErrorKind::internal,
                  "completion path explosion: more than " +
                      std::to_string(options_.max_paths) + " paths");
    }
    CompletionPath path;
    path.id = "path" + std::to_string(paths_.size());
    path.node_ids = std::move(emitted);
    for (const std::size_t id : path.node_ids) {
      const CfgNode& node = cfg_.node(id);
      for (const EmitPiece& piece : node.pieces) {
        path.pieces.push_back(piece);
        if (piece.semantic) {
          path.provided.insert(*piece.semantic);
        }
        path.size_bits += piece.bit_width;
      }
    }
    path.constraints = std::move(constraints);
    path.branch_trace = std::move(trace);
    paths_.push_back(std::move(path));
  }

  const Cfg& cfg_;
  const PathEnumOptions& options_;
  std::vector<CompletionPath> paths_;
};

}  // namespace

std::vector<CompletionPath> enumerate_paths(const Cfg& cfg,
                                            const PathEnumOptions& options) {
  PathWalker walker(cfg, options);
  return walker.run();
}

std::map<std::string, std::uint64_t> context_bounds(
    const p4::Program& program, const p4::TypeInfo& types,
    const p4::ControlDecl& deparser) {
  std::map<std::string, std::uint64_t> bounds;
  for (const p4::Param& param : deparser.params()) {
    if (param.type.kind != p4::TypeRef::Kind::named) {
      continue;
    }
    const p4::StructLikeDecl* decl = program.find_header(param.type.name);
    if (decl == nullptr) {
      decl = program.find_struct(param.type.name);
    }
    if (decl == nullptr) {
      continue;  // channel types / type params carry no fields
    }
    for (const p4::FieldDecl& field : decl->fields()) {
      const std::size_t width = types.field_width(field);
      if (width == 0 || width > 63) {
        continue;  // full-range variable: no useful bound
      }
      const std::uint64_t max = (std::uint64_t{1} << width) - 1;
      bounds[param.name + "." + field.name] = max;
    }
  }
  return bounds;
}

}  // namespace opendesc::core
