// Control-flow graph extraction from a CmptDeparser control (§4 step 1).
//
// The compiler parses the body of the deparser once, replacing each emit
// statement by a vertex and each conditional by two directed edges labelled
// with the branch predicate that guards them.  A root-to-leaf walk is a
// *completion path* — a concrete metadata layout the NIC may emit under a
// given context.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "p4/ast.hpp"
#include "p4/typecheck.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::core {

/// One field written by an emit call: bit width, optional semantic tag,
/// optional hardware-constant value (@fixed annotation).
struct EmitPiece {
  std::string field_name;
  std::optional<softnic::SemanticId> semantic;
  std::size_t bit_width = 0;
  std::optional<std::uint64_t> fixed_value;
};

enum class CfgNodeKind : std::uint8_t { entry, emit, branch, exit };

/// CFG node.  `emit` nodes carry the three static properties of §4:
/// bits(v) (the pieces, in emit order), sem(v) (their semantic tags) and
/// size(v) (total bits).
struct CfgNode {
  std::size_t id = 0;
  CfgNodeKind kind = CfgNodeKind::emit;
  std::vector<EmitPiece> pieces;        ///< emit nodes only
  const p4::Expr* predicate = nullptr;  ///< branch nodes only
  p4::SourceLocation location;

  [[nodiscard]] std::size_t size_bits() const noexcept {
    std::size_t total = 0;
    for (const EmitPiece& p : pieces) {
      total += p.bit_width;
    }
    return total;
  }
};

/// Directed edge; for branch sources, `polarity` says which outcome of the
/// predicate this edge represents.
struct CfgEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::optional<bool> polarity;  ///< nullopt on unconditional edges
};

/// The extracted graph.  Structured P4 bodies yield a DAG with one entry
/// and one exit.
class Cfg {
 public:
  [[nodiscard]] const std::vector<CfgNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<CfgEdge>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::size_t entry_id() const noexcept { return entry_; }
  [[nodiscard]] std::size_t exit_id() const noexcept { return exit_; }

  [[nodiscard]] const CfgNode& node(std::size_t id) const { return nodes_.at(id); }

  /// Outgoing edges of a node, in insertion order (true branch first).
  [[nodiscard]] std::vector<const CfgEdge*> successors(std::size_t id) const;

  /// Number of emit / branch nodes (test and report helpers).
  [[nodiscard]] std::size_t emit_count() const;
  [[nodiscard]] std::size_t branch_count() const;

  /// Graphviz rendering for reports and documentation.
  [[nodiscard]] std::string to_dot() const;

  // Construction interface used by the builder.
  std::size_t add_node(CfgNode node);
  void add_edge(std::size_t from, std::size_t to, std::optional<bool> polarity);
  void set_entry(std::size_t id) noexcept { entry_ = id; }
  void set_exit(std::size_t id) noexcept { exit_ = id; }

  /// Labels every still-unlabelled edge leaving `from` that was added at or
  /// after `first_edge` with `polarity` (builder fixup for branch bodies).
  void relabel_edges(std::size_t from, std::size_t first_edge, bool polarity) {
    for (std::size_t i = first_edge; i < edges_.size(); ++i) {
      if (edges_[i].from == from && !edges_[i].polarity) {
        edges_[i].polarity = polarity;
      }
    }
  }

 private:
  std::vector<CfgNode> nodes_;
  std::vector<CfgEdge> edges_;
  std::size_t entry_ = 0;
  std::size_t exit_ = 0;
};

/// Options controlling extraction.
struct CfgBuildOptions {
  /// Name of the parameter carrying the completion output channel; empty =
  /// auto-detect the parameter whose type is `cmpt_out`.
  std::string out_param;
};

/// Extracts the CFG of `deparser`.  Needs the enclosing program (to resolve
/// header types of the deparser parameters), its TypeInfo (field widths) and
/// the semantic registry (to resolve @semantic annotations).
///
/// Emit statements must reference fields (or whole headers) of the
/// deparser's `in` parameters; each emit becomes one vertex.  Throws
/// Error(type) on emits through unknown channels or of unknown fields.
[[nodiscard]] Cfg build_cfg(const p4::Program& program,
                            const p4::TypeInfo& types,
                            const p4::ControlDecl& deparser,
                            const softnic::SemanticRegistry& registry,
                            const CfgBuildOptions& options = {});

}  // namespace opendesc::core
