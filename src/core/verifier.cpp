#include "core/verifier.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::core {

std::vector<VerifyIssue> verify_layout(const CompiledLayout& layout,
                                       const softnic::SemanticRegistry& registry) {
  std::vector<VerifyIssue> issues;
  const std::size_t total_bits = layout.total_bytes() * 8;

  // Collect occupied ranges for the overlap check.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // [start, end)
  for (const FieldSlice& slice : layout.slices()) {
    const std::size_t end = slice.bit_start + slice.bit_width;

    if (slice.bit_width == 0 || slice.bit_width > 64) {
      issues.push_back({slice.name, "width " + std::to_string(slice.bit_width) +
                                        " outside [1, 64]"});
      continue;
    }
    if (end > total_bits) {
      issues.push_back({slice.name, "slice ends at bit " + std::to_string(end) +
                                        " beyond record size " +
                                        std::to_string(total_bits) + " bits"});
    }
    if (slice.bit_offset() + slice.bit_width > 64) {
      issues.push_back(
          {slice.name,
           "slice does not fit a 64-bit access window (bit offset " +
               std::to_string(slice.bit_offset()) + " + width " +
               std::to_string(slice.bit_width) + " > 64)"});
    }
    if (slice.semantic) {
      const std::size_t declared = registry.bit_width(*slice.semantic);
      if (declared != slice.bit_width) {
        issues.push_back(
            {slice.name, "width " + std::to_string(slice.bit_width) +
                             " does not match semantic '" +
                             registry.name(*slice.semantic) + "' declared as " +
                             std::to_string(declared) + " bits"});
      }
    }
    if (slice.fixed_value && slice.bit_width < 64 &&
        *slice.fixed_value >= (std::uint64_t{1} << slice.bit_width)) {
      issues.push_back({slice.name, "@fixed value does not fit the field width"});
    }
    ranges.emplace_back(slice.bit_start, end);
  }

  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].first < ranges[i - 1].second) {
      issues.push_back(
          {"<layout>", "overlapping slices at bit " +
                           std::to_string(ranges[i].first) + " (previous ends at " +
                           std::to_string(ranges[i - 1].second) + ")"});
    }
  }
  return issues;
}

void verify_layout_or_throw(const CompiledLayout& layout,
                            const softnic::SemanticRegistry& registry) {
  const std::vector<VerifyIssue> issues = verify_layout(layout, registry);
  if (issues.empty()) {
    return;
  }
  std::string message = "layout '" + layout.path_id() + "' failed verification:";
  for (const VerifyIssue& issue : issues) {
    message += "\n  [" + issue.slice_name + "] " + issue.message;
  }
  throw Error(ErrorKind::verification, message);
}

}  // namespace opendesc::core
