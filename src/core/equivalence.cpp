#include "core/equivalence.hpp"

#include <map>
#include <sstream>

#include "p4/pretty.hpp"

namespace opendesc::core {

bool interface_equivalent(const Intent& a, const Intent& b) {
  std::multiset<softnic::SemanticId> sa, sb;
  for (const IntentField& f : a.fields) {
    sa.insert(f.semantic);
  }
  for (const IntentField& f : b.fields) {
    sb.insert(f.semantic);
  }
  return sa == sb;
}

namespace {

/// Positional parameter renaming a → b.
using Renaming = std::map<std::string, std::string>;

class Comparator {
 public:
  explicit Comparator(Renaming renaming) : renaming_(std::move(renaming)) {}

  [[nodiscard]] const std::string& divergence() const noexcept {
    return divergence_;
  }

  bool expr(const p4::Expr& a, const p4::Expr& b) {
    if (a.kind() != b.kind()) {
      return diverge("expression kinds differ: " + p4::to_source(a) + " vs " +
                     p4::to_source(b));
    }
    switch (a.kind()) {
      case p4::ExprKind::int_literal: {
        const auto& la = static_cast<const p4::IntLiteral&>(a);
        const auto& lb = static_cast<const p4::IntLiteral&>(b);
        if (la.value() != lb.value()) {
          return diverge("literals differ: " + std::to_string(la.value()) +
                         " vs " + std::to_string(lb.value()));
        }
        return true;
      }
      case p4::ExprKind::bool_literal:
        return static_cast<const p4::BoolLiteral&>(a).value() ==
                       static_cast<const p4::BoolLiteral&>(b).value()
                   ? true
                   : diverge("boolean literals differ");
      case p4::ExprKind::string_literal:
        return static_cast<const p4::StringLiteral&>(a).value() ==
                       static_cast<const p4::StringLiteral&>(b).value()
                   ? true
                   : diverge("string literals differ");
      case p4::ExprKind::identifier: {
        const std::string& name_a =
            static_cast<const p4::Identifier&>(a).name();
        const std::string& name_b =
            static_cast<const p4::Identifier&>(b).name();
        const auto it = renaming_.find(name_a);
        const std::string& mapped = it == renaming_.end() ? name_a : it->second;
        return mapped == name_b
                   ? true
                   : diverge("identifier '" + name_a + "' maps to '" + mapped +
                             "', found '" + name_b + "'");
      }
      case p4::ExprKind::member: {
        const auto& ma = static_cast<const p4::MemberExpr&>(a);
        const auto& mb = static_cast<const p4::MemberExpr&>(b);
        if (ma.member() != mb.member()) {
          return diverge("member names differ: ." + ma.member() + " vs ." +
                         mb.member());
        }
        return expr(ma.base(), mb.base());
      }
      case p4::ExprKind::unary: {
        const auto& ua = static_cast<const p4::UnaryExpr&>(a);
        const auto& ub = static_cast<const p4::UnaryExpr&>(b);
        if (ua.op() != ub.op()) {
          return diverge("unary operators differ");
        }
        return expr(ua.operand(), ub.operand());
      }
      case p4::ExprKind::binary: {
        const auto& ba = static_cast<const p4::BinaryExpr&>(a);
        const auto& bb = static_cast<const p4::BinaryExpr&>(b);
        if (ba.op() != bb.op()) {
          return diverge("binary operators differ: " + p4::to_string(ba.op()) +
                         " vs " + p4::to_string(bb.op()));
        }
        return expr(ba.lhs(), bb.lhs()) && expr(ba.rhs(), bb.rhs());
      }
      case p4::ExprKind::call: {
        const auto& ca = static_cast<const p4::CallExpr&>(a);
        const auto& cb = static_cast<const p4::CallExpr&>(b);
        if (ca.args().size() != cb.args().size()) {
          return diverge("call arities differ");
        }
        if (!expr(ca.callee(), cb.callee())) {
          return false;
        }
        for (std::size_t i = 0; i < ca.args().size(); ++i) {
          if (!expr(*ca.args()[i], *cb.args()[i])) {
            return false;
          }
        }
        return true;
      }
    }
    return diverge("unknown expression kind");
  }

  bool stmt(const p4::Stmt& a, const p4::Stmt& b) {
    if (a.kind() != b.kind()) {
      return diverge("statement kinds differ at " +
                     p4::to_string(a.location()) + " vs " +
                     p4::to_string(b.location()));
    }
    switch (a.kind()) {
      case p4::StmtKind::block: {
        const auto& ba = static_cast<const p4::BlockStmt&>(a);
        const auto& bb = static_cast<const p4::BlockStmt&>(b);
        if (ba.statements().size() != bb.statements().size()) {
          return diverge("block lengths differ");
        }
        for (std::size_t i = 0; i < ba.statements().size(); ++i) {
          if (!stmt(*ba.statements()[i], *bb.statements()[i])) {
            return false;
          }
        }
        return true;
      }
      case p4::StmtKind::if_stmt: {
        const auto& ia = static_cast<const p4::IfStmt&>(a);
        const auto& ib = static_cast<const p4::IfStmt&>(b);
        if (!expr(ia.condition(), ib.condition())) {
          return false;
        }
        if (!stmt(ia.then_branch(), ib.then_branch())) {
          return false;
        }
        const bool has_else_a = ia.else_branch() != nullptr;
        const bool has_else_b = ib.else_branch() != nullptr;
        if (has_else_a != has_else_b) {
          return diverge("one branch has an else, the other does not");
        }
        return !has_else_a || stmt(*ia.else_branch(), *ib.else_branch());
      }
      case p4::StmtKind::method_call:
        return expr(static_cast<const p4::MethodCallStmt&>(a).call(),
                    static_cast<const p4::MethodCallStmt&>(b).call());
      case p4::StmtKind::assign: {
        const auto& aa = static_cast<const p4::AssignStmt&>(a);
        const auto& ab = static_cast<const p4::AssignStmt&>(b);
        return expr(aa.lhs(), ab.lhs()) && expr(aa.rhs(), ab.rhs());
      }
      case p4::StmtKind::var_decl: {
        const auto& va = static_cast<const p4::VarDeclStmt&>(a);
        const auto& vb = static_cast<const p4::VarDeclStmt&>(b);
        // Local names also alpha-rename.
        renaming_[va.name()] = vb.name();
        const bool has_init_a = va.init() != nullptr;
        const bool has_init_b = vb.init() != nullptr;
        if (has_init_a != has_init_b) {
          return diverge("one declaration has an initializer, the other not");
        }
        return !has_init_a || expr(*va.init(), *vb.init());
      }
    }
    return diverge("unknown statement kind");
  }

 private:
  bool diverge(std::string reason) {
    if (divergence_.empty()) {
      divergence_ = std::move(reason);
    }
    return false;
  }

  Renaming renaming_;
  std::string divergence_;
};

}  // namespace

StructuralResult structurally_equivalent(const p4::ControlDecl& a,
                                         const p4::ControlDecl& b) {
  StructuralResult result;
  if (a.params().size() != b.params().size()) {
    result.divergence = "parameter counts differ";
    return result;
  }
  Renaming renaming;
  for (std::size_t i = 0; i < a.params().size(); ++i) {
    renaming[a.params()[i].name] = b.params()[i].name;
  }
  Comparator comparator(std::move(renaming));
  result.equivalent = comparator.stmt(a.apply(), b.apply());
  result.divergence = comparator.divergence();
  return result;
}

}  // namespace opendesc::core
