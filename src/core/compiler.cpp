#include "core/compiler.hpp"

#include <sstream>

#include "common/error.hpp"
#include "core/txdesc.hpp"
#include "core/verifier.hpp"
#include "p4/parser.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::core {

const p4::ControlDecl& select_deparser(const p4::Program& program,
                                       std::string_view name) {
  if (!name.empty()) {
    const p4::ControlDecl* control = program.find_control(name);
    if (control == nullptr) {
      throw Error(ErrorKind::semantic,
                  "NIC description has no control named '" + std::string(name) + "'");
    }
    return *control;
  }
  const p4::ControlDecl* found = nullptr;
  for (const p4::ControlDecl* control : program.controls()) {
    const bool has_cmpt_out = std::any_of(
        control->params().begin(), control->params().end(), [](const p4::Param& p) {
          return p.type.kind == p4::TypeRef::Kind::named && p.type.name == "cmpt_out";
        });
    if (!has_cmpt_out) {
      continue;
    }
    if (found != nullptr) {
      throw Error(ErrorKind::semantic,
                  "NIC description declares several completion deparsers; pass "
                  "CompileOptions::deparser_name");
    }
    found = control;
  }
  if (found == nullptr) {
    throw Error(ErrorKind::semantic,
                "NIC description declares no completion deparser (control with "
                "a cmpt_out parameter)");
  }
  return *found;
}

Endian deparser_endian(const p4::ControlDecl& deparser) {
  const p4::Annotation* a = p4::find_annotation(deparser.annotations(), "endian");
  if (a == nullptr) {
    return Endian::little;
  }
  const std::string& value = a->string_arg();
  if (value == "big") {
    return Endian::big;
  }
  if (value == "little") {
    return Endian::little;
  }
  throw Error(ErrorKind::type, "@endian must be \"big\" or \"little\", got \"" +
                                   value + "\"");
}

namespace {

std::string sanitize_symbol(std::string s) {
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string build_report(const CompileResult& r,
                         const softnic::SemanticRegistry& registry,
                         const softnic::CostTable& costs, const Intent& intent) {
  std::ostringstream out;
  out << "=== OpenDesc compilation report ===\n"
      << "NIC:    " << r.nic_name << "\n"
      << "Intent: " << r.intent.header_name << " {";
  for (std::size_t i = 0; i < r.intent.fields.size(); ++i) {
    if (i != 0) out << ", ";
    out << registry.name(r.intent.fields[i].semantic);
  }
  out << "}\n\n";

  out << "CFG: " << r.cfg_emit_nodes << " emit node(s), " << r.cfg_branch_nodes
      << " branch node(s), " << r.paths.size() << " feasible completion path(s)\n\n";

  out << "Ranking (Eq. 1: softnic cost + dma footprint):\n";
  for (const PathScore& score : r.ranking) {
    const CompletionPath& path = r.paths[score.path_index];
    out << "  " << (score.path_index == r.chosen_index ? "* " : "  ")
        << path.describe(registry) << "\n      softnic=";
    if (score.satisfiable()) {
      out << score.softnic_cost;
    } else {
      out << "inf";
    }
    out << " dma=" << score.dma_cost << " total=";
    if (score.satisfiable()) {
      out << score.total();
    } else {
      out << "inf";
    }
    out << "\n";
  }

  out << "\nChosen layout (" << r.layout.total_bytes() << " bytes, "
      << to_string(r.layout.endian()) << "-endian):\n";
  for (const FieldSlice& slice : r.layout.slices()) {
    out << "  [" << slice.byte_offset() << "." << slice.bit_offset() << " +"
        << slice.bit_width << "b] " << slice.name;
    if (slice.semantic) {
      out << "  <- @semantic(\"" << registry.name(*slice.semantic) << "\")";
    }
    if (slice.fixed_value) {
      out << "  (fixed " << *slice.fixed_value << ")";
    }
    out << "\n";
  }

  if (!r.shims.empty()) {
    out << "\nSoftNIC fallbacks (computed on the host):\n";
    for (const SoftNicShim& shim : r.shims) {
      out << "  " << shim.semantic_name << "  w(s)=" << shim.cost_ns << " ns/pkt\n";
    }
  } else {
    out << "\nAll requested semantics are provided by the NIC on this path.\n";
  }

  if (!r.context_assignment.empty()) {
    out << "\nContext programming (steers the NIC onto the chosen path):\n";
    for (const auto& [path, value] : r.context_assignment) {
      out << "  " << path << " = " << value << "\n";
    }
  }
  (void)costs;
  (void)intent;
  return out.str();
}

/// Eq. 1 search statistics of one compilation, labelled by direction
/// (rx completion paths vs tx descriptor formats) and NIC.  Gauges: a
/// compiler run reports the state of its latest solve, not an accumulation.
void publish_compile_telemetry(telemetry::Sink& sink,
                               const CompileResult& result,
                               const char* direction) {
  telemetry::Registry& reg = sink.registry();
  const telemetry::Labels labels = {{"direction", direction},
                                    {"nic", result.nic_name}};
  reg.counter("opendesc_compile_runs_total", "Compilations performed",
              labels)
      .add(1);
  reg.gauge("opendesc_compile_paths_explored",
            "Feasible completion paths enumerated by the last solve", labels)
      .set(static_cast<double>(result.paths.size()));
  reg.gauge("opendesc_compile_chosen_size_bytes",
            "Size(p) of the chosen path: completion record DMA footprint",
            labels)
      .set(static_cast<double>(result.layout.total_bytes()));
  reg.gauge("opendesc_compile_shim_count",
            "SoftNIC shims synthesized for Req \\ Prov(p*)", labels)
      .set(static_cast<double>(result.shims.size()));
  const PathScore& best = result.chosen_score();
  if (best.satisfiable()) {
    reg.gauge("opendesc_compile_softnic_cost",
              "Sum of w(s) over semantics missing from the chosen path",
              labels)
        .set(best.softnic_cost);
    reg.gauge("opendesc_compile_dma_cost",
              "alpha * Size(p) of the chosen path", labels)
        .set(best.dma_cost);
    reg.gauge("opendesc_compile_objective",
              "Eq. 1 objective of the chosen path (softnic + dma)", labels)
        .set(best.total());
  }
}

}  // namespace

CompileResult Compiler::compile(std::string_view nic_source,
                                std::string_view intent_source,
                                const CompileOptions& options) const {
  const p4::Program program = p4::parse_program(nic_source);
  const p4::TypeInfo types = p4::check_program(program);
  const p4::ControlDecl& deparser = select_deparser(program, options.deparser_name);
  Intent intent =
      parse_intent(intent_source, registry_, options.auto_register_semantics);
  return compile(program, types, deparser, std::move(intent), options);
}

std::vector<CompileResult> Compiler::compile_intents(
    std::string_view nic_source, std::span<const std::string> intent_sources,
    const CompileOptions& options) const {
  // The shared front end runs once: one parse, one typecheck, one deparser
  // selection.  Tenant compilations then diverge on the back half of the
  // pipeline, each solving Eq. 1 for its own requested set.
  const p4::Program program = p4::parse_program(nic_source);
  const p4::TypeInfo types = p4::check_program(program);
  const p4::ControlDecl& deparser =
      select_deparser(program, options.deparser_name);
  std::vector<CompileResult> results;
  results.reserve(intent_sources.size());
  for (const std::string& intent_source : intent_sources) {
    Intent intent =
        parse_intent(intent_source, registry_, options.auto_register_semantics);
    results.push_back(
        compile(program, types, deparser, std::move(intent), options));
  }
  return results;
}

CompileResult Compiler::compile(const p4::Program& nic_program,
                                const p4::TypeInfo& types,
                                const p4::ControlDecl& deparser, Intent intent,
                                const CompileOptions& options) const {
  CompileResult result;
  result.nic_name = deparser.name();
  if (const p4::Annotation* nic = p4::find_annotation(deparser.annotations(), "nic")) {
    result.nic_name = nic->string_arg();
  }
  result.intent = std::move(intent);

  // 1. Control-flow graph extraction.
  const Cfg cfg = build_cfg(nic_program, types, deparser, registry_);
  result.cfg_emit_nodes = cfg.emit_count();
  result.cfg_branch_nodes = cfg.branch_count();
  result.cfg_dot = cfg.to_dot();

  // 2. Path characterization (with feasibility pruning).
  PathEnumOptions enum_options;
  enum_options.consts = types.constants();
  enum_options.variable_bounds = context_bounds(nic_program, types, deparser);
  result.paths = enumerate_paths(cfg, enum_options);

  // 3. Optimization problem (Eq. 1).
  OptimizerOptions opt_options;
  opt_options.dma_weight_per_byte = options.dma_weight_per_byte;
  result.ranking =
      rank_paths(result.paths, result.intent, costs_, opt_options);
  const PathScore best = choose_path(result.paths, result.intent, costs_,
                                     registry_, opt_options);
  result.chosen_index = best.path_index;
  const CompletionPath& chosen = result.paths[result.chosen_index];

  // 4. Host stub synthesis.
  std::vector<FieldSlice> slices;
  slices.reserve(chosen.pieces.size());
  for (const EmitPiece& piece : chosen.pieces) {
    FieldSlice slice;
    slice.name = piece.field_name;
    slice.semantic = piece.semantic;
    slice.bit_width = piece.bit_width;
    slice.fixed_value = piece.fixed_value;
    slices.push_back(std::move(slice));
  }
  result.layout = pack_layout(result.nic_name, chosen.id,
                              deparser_endian(deparser), std::move(slices));
  verify_layout_or_throw(result.layout, registry_);

  for (const softnic::SemanticId missing : best.missing) {
    SoftNicShim shim;
    shim.semantic = missing;
    shim.semantic_name = registry_.name(missing);
    shim.cost_ns = effective_cost(result.intent, costs_, missing);
    result.shims.push_back(std::move(shim));
  }

  result.context_assignment = chosen.constraints.sample_assignment();

  CodegenOptions cg;
  cg.prefix = options.prefix.empty() ? "odx_" + sanitize_symbol(result.nic_name)
                                     : options.prefix;
  result.c_header = generate_c_header(result.layout, result.shims, registry_, cg);
  result.xdp_header =
      generate_xdp_header(result.layout, result.shims, registry_, cg);
  result.manifest = generate_manifest(result.layout, result.shims, registry_);
  result.report = build_report(result, registry_, costs_, result.intent);
  if (options.telemetry != nullptr) {
    publish_compile_telemetry(*options.telemetry, result, "rx");
  }
  return result;
}

CompileResult Compiler::compile_tx(std::string_view nic_source,
                                   std::string_view tx_intent_source,
                                   const CompileOptions& options) const {
  const p4::Program program = p4::parse_program(nic_source);
  const p4::TypeInfo types = p4::check_program(program);
  const p4::ParserDecl* desc_parser = nullptr;
  for (const p4::ParserDecl* parser : program.parsers()) {
    const bool has_desc_in = std::any_of(
        parser->params().begin(), parser->params().end(), [](const p4::Param& p) {
          return p.type.kind == p4::TypeRef::Kind::named &&
                 p.type.name == "desc_in";
        });
    if (has_desc_in) {
      if (desc_parser != nullptr) {
        throw Error(ErrorKind::semantic,
                    "NIC description declares several descriptor parsers");
      }
      desc_parser = parser;
    }
  }
  if (desc_parser == nullptr) {
    throw Error(ErrorKind::semantic,
                "NIC description declares no descriptor parser (parser with a "
                "desc_in parameter)");
  }
  Intent intent =
      parse_intent(tx_intent_source, registry_, options.auto_register_semantics);
  return compile_tx(program, types, *desc_parser, std::move(intent), options);
}

CompileResult Compiler::compile_tx(const p4::Program& nic_program,
                                   const p4::TypeInfo& types,
                                   const p4::ParserDecl& desc_parser,
                                   Intent intent,
                                   const CompileOptions& options) const {
  CompileResult result;
  result.nic_name = desc_parser.name();
  if (const p4::Annotation* nic =
          p4::find_annotation(desc_parser.annotations(), "nic")) {
    result.nic_name = nic->string_arg();
  }
  result.intent = std::move(intent);

  TxDescOptions tx_options;
  tx_options.consts = types.constants();
  result.paths =
      enumerate_tx_formats(nic_program, types, desc_parser, registry_, tx_options);

  OptimizerOptions opt_options;
  opt_options.dma_weight_per_byte = options.dma_weight_per_byte;
  result.ranking = rank_paths(result.paths, result.intent, costs_, opt_options);
  const PathScore best =
      choose_path(result.paths, result.intent, costs_, registry_, opt_options);
  result.chosen_index = best.path_index;
  const CompletionPath& chosen = result.paths[result.chosen_index];

  std::vector<FieldSlice> slices;
  slices.reserve(chosen.pieces.size());
  for (const EmitPiece& piece : chosen.pieces) {
    FieldSlice slice;
    slice.name = piece.field_name;
    slice.semantic = piece.semantic;
    slice.bit_width = piece.bit_width;
    slice.fixed_value = piece.fixed_value;
    slices.push_back(std::move(slice));
  }
  result.layout = pack_layout(result.nic_name, chosen.id,
                              desc_parser_endian(desc_parser), std::move(slices));
  verify_layout_or_throw(result.layout, registry_);

  for (const softnic::SemanticId missing : best.missing) {
    SoftNicShim shim;
    shim.semantic = missing;
    shim.semantic_name = registry_.name(missing);
    shim.cost_ns = effective_cost(result.intent, costs_, missing);
    result.shims.push_back(std::move(shim));
  }
  result.context_assignment = chosen.constraints.sample_assignment();

  const std::string prefix =
      options.prefix.empty() ? "odx_" + sanitize_symbol(result.nic_name) + "_tx"
                             : options.prefix;
  result.c_header = generate_tx_writer_header(result.layout, registry_, prefix);
  result.manifest = generate_manifest(result.layout, result.shims, registry_);
  result.report = build_report(result, registry_, costs_, result.intent);
  if (options.telemetry != nullptr) {
    publish_compile_telemetry(*options.telemetry, result, "tx");
  }
  return result;
}

}  // namespace opendesc::core
