// Host stub synthesis (§4 step 4).
//
// For the selected path p* the compiler emits:
//  * a plain-C header with constant-time accessors reading fixed bit slices
//    of the completion record (user-level drivers, DPDK-style datapaths);
//  * an XDP-style header whose accessors carry explicit data_end bounds
//    checks, mirroring what the eBPF verifier demands;
//  * a textual manifest describing the layout (consumed by tools/tests);
//  * extern declarations for the SoftNIC shims covering Req \ Prov(p*).
#pragma once

#include <string>
#include <vector>

#include "core/intent.hpp"
#include "core/layout.hpp"

namespace opendesc::core {

/// One software-fallback shim the application must link (or let the runtime
/// facade service, see runtime::MetadataFacade).
struct SoftNicShim {
  softnic::SemanticId semantic{};
  std::string semantic_name;
  double cost_ns = 0.0;
};

struct CodegenOptions {
  /// Identifier prefix of every generated symbol, e.g. "odx_e1000".
  std::string prefix = "odx";
};

/// Plain C11 accessor header for user-level datapaths.
[[nodiscard]] std::string generate_c_header(const CompiledLayout& layout,
                                            const std::vector<SoftNicShim>& shims,
                                            const softnic::SemanticRegistry& registry,
                                            const CodegenOptions& options = {});

/// Bounds-checked XDP/eBPF-style accessor header: every accessor takes
/// (data, data_end) and returns -1 without touching memory when the slice
/// would fall outside [data, data_end).
[[nodiscard]] std::string generate_xdp_header(const CompiledLayout& layout,
                                              const std::vector<SoftNicShim>& shims,
                                              const softnic::SemanticRegistry& registry,
                                              const CodegenOptions& options = {});

/// Batched (4-wide) accessor header: for every field, a
/// `<prefix>_<name>_x4(const uint8_t *r0, ..., uint64_t out[4])` reader
/// with hoisted geometry — the generated-SIMD extension the paper proposes
/// in §5 ("Most DPDK drivers implement another version of the driver
/// datapath using SSE to read 4 descriptors at a time... OpenDesc could be
/// extended to generate SIMD accessors instead").  Plain C so it vectorizes
/// under -O2 without intrinsics; a true SSE/NEON backend would emit the
/// same shape with intrinsics.
[[nodiscard]] std::string generate_c_batch_header(
    const CompiledLayout& layout, const softnic::SemanticRegistry& registry,
    const CodegenOptions& options = {});

/// Generated minimalist driver datapath (the paper's concluding goal: "a
/// generated minimalist driver datapath that can leverage the growing
/// capabilities of increasingly feature-rich NICs").  Emits:
///   * `<prefix>_meta_t` — a struct with exactly the requested semantics
///     the chosen path provides (narrowest C types);
///   * `<prefix>_rx_burst(ring, entries, tail, budget, out)` — walks the
///     completion ring from `tail`, stops at the first not-yet-written
///     record (detected via the layout's first @fixed field, the
///     descriptor-done convention) or after `budget` records, extracting
///     the requested fields of each record into `out[]`;
/// Returns the generated C source.  `wanted` orders the struct fields;
/// semantics the layout does not provide are skipped (they remain SoftNIC
/// shims at a higher layer).
[[nodiscard]] std::string generate_rx_burst_header(
    const CompiledLayout& layout,
    const std::vector<softnic::SemanticId>& wanted,
    const softnic::SemanticRegistry& registry,
    const CodegenOptions& options = {});

/// Stable machine-readable manifest, one line per layout element.
[[nodiscard]] std::string generate_manifest(const CompiledLayout& layout,
                                            const std::vector<SoftNicShim>& shims,
                                            const softnic::SemanticRegistry& registry);

}  // namespace opendesc::core
