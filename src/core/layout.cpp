#include "core/layout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::core {

CompiledLayout::CompiledLayout(std::string nic_name, std::string path_id,
                               Endian endian, std::vector<FieldSlice> slices)
    : nic_name_(std::move(nic_name)), path_id_(std::move(path_id)),
      endian_(endian), slices_(std::move(slices)) {
  for (const FieldSlice& s : slices_) {
    total_bits_ = std::max(total_bits_, s.bit_start + s.bit_width);
  }
}

const FieldSlice* CompiledLayout::find(softnic::SemanticId semantic) const noexcept {
  const auto it = std::find_if(
      slices_.begin(), slices_.end(),
      [&](const FieldSlice& s) { return s.semantic == semantic; });
  return it == slices_.end() ? nullptr : &*it;
}

std::vector<softnic::SemanticId> CompiledLayout::provided() const {
  std::vector<softnic::SemanticId> out;
  for (const FieldSlice& s : slices_) {
    if (s.semantic) {
      out.push_back(*s.semantic);
    }
  }
  return out;
}

void CompiledLayout::serialize(std::span<std::uint8_t> out,
                               std::span<const std::uint64_t> values) const {
  if (out.size() < total_bytes()) {
    throw Error(ErrorKind::layout, "completion buffer too small for layout '" +
                                       path_id_ + "'");
  }
  if (values.size() != slices_.size()) {
    throw Error(ErrorKind::layout,
                "serialize: expected " + std::to_string(slices_.size()) +
                    " values, got " + std::to_string(values.size()));
  }
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(total_bytes()), 0);
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    const FieldSlice& s = slices_[i];
    const std::uint64_t value = s.fixed_value.value_or(values[i]);
    write_bits(out, s.byte_offset(), s.bit_offset(), s.bit_width, endian_, value);
  }
}

std::uint64_t CompiledLayout::read_slice(std::span<const std::uint8_t> record,
                                         std::size_t index) const {
  const FieldSlice& s = slices_.at(index);
  return read_bits(record, s.byte_offset(), s.bit_offset(), s.bit_width, endian_);
}

std::uint64_t CompiledLayout::read(std::span<const std::uint8_t> record,
                                   softnic::SemanticId semantic) const {
  const FieldSlice* s = find(semantic);
  if (s == nullptr) {
    throw Error(ErrorKind::layout, "layout '" + path_id_ +
                                       "' does not provide semantic id " +
                                       std::to_string(softnic::raw(semantic)));
  }
  return read_bits(record, s->byte_offset(), s->bit_offset(), s->bit_width, endian_);
}

CompiledLayout pack_layout(std::string nic_name, std::string path_id,
                           Endian endian, std::vector<FieldSlice> pieces) {
  std::size_t bit_pos = 0;
  for (FieldSlice& s : pieces) {
    if (s.bit_width == 0 || s.bit_width > 64) {
      throw Error(ErrorKind::layout,
                  "field '" + s.name + "' has invalid width " +
                      std::to_string(s.bit_width));
    }
    // A slice is read through one 64-bit window: (bit_pos % 8) + width <= 64.
    if ((bit_pos % 8) + s.bit_width > 64) {
      throw Error(ErrorKind::layout,
                  "field '" + s.name + "' (" + std::to_string(s.bit_width) +
                      " bits) would start at bit " + std::to_string(bit_pos) +
                      " and exceed the 64-bit access window; align it to a "
                      "byte boundary in the deparser");
    }
    s.bit_start = bit_pos;
    bit_pos += s.bit_width;
  }
  return CompiledLayout(std::move(nic_name), std::move(path_id), endian,
                        std::move(pieces));
}

}  // namespace opendesc::core
