#include "core/layout.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "softnic/compute.hpp"

namespace opendesc::core {

CompiledLayout::CompiledLayout(std::string nic_name, std::string path_id,
                               Endian endian, std::vector<FieldSlice> slices)
    : nic_name_(std::move(nic_name)), path_id_(std::move(path_id)),
      endian_(endian), slices_(std::move(slices)) {
  for (const FieldSlice& s : slices_) {
    total_bits_ = std::max(total_bits_, s.bit_start + s.bit_width);
  }
}

const FieldSlice* CompiledLayout::find(softnic::SemanticId semantic) const noexcept {
  const auto it = std::find_if(
      slices_.begin(), slices_.end(),
      [&](const FieldSlice& s) { return s.semantic == semantic; });
  return it == slices_.end() ? nullptr : &*it;
}

std::vector<softnic::SemanticId> CompiledLayout::provided() const {
  std::vector<softnic::SemanticId> out;
  for (const FieldSlice& s : slices_) {
    if (s.semantic) {
      out.push_back(*s.semantic);
    }
  }
  return out;
}

void CompiledLayout::serialize(std::span<std::uint8_t> out,
                               std::span<const std::uint64_t> values) const {
  if (out.size() < total_bytes()) {
    throw Error(ErrorKind::layout, "completion buffer too small for layout '" +
                                       path_id_ + "'");
  }
  if (values.size() != slices_.size()) {
    throw Error(ErrorKind::layout,
                "serialize: expected " + std::to_string(slices_.size()) +
                    " values, got " + std::to_string(values.size()));
  }
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(total_bytes()), 0);
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    const FieldSlice& s = slices_[i];
    const std::uint64_t value = s.fixed_value.value_or(values[i]);
    write_bits(out, s.byte_offset(), s.bit_offset(), s.bit_width, endian_, value);
  }
}

std::uint64_t CompiledLayout::read_slice(std::span<const std::uint8_t> record,
                                         std::size_t index) const {
  const FieldSlice& s = slices_.at(index);
  return read_bits(record, s.byte_offset(), s.bit_offset(), s.bit_width, endian_);
}

std::uint64_t CompiledLayout::read(std::span<const std::uint8_t> record,
                                   softnic::SemanticId semantic) const {
  const FieldSlice* s = find(semantic);
  if (s == nullptr) {
    throw Error(ErrorKind::layout, "layout '" + path_id_ +
                                       "' does not provide semantic id " +
                                       std::to_string(softnic::raw(semantic)));
  }
  return read_bits(record, s->byte_offset(), s->bit_offset(), s->bit_width, endian_);
}

CompiledLayout CompiledLayout::with_guard() const {
  if (guard_index_) {
    return *this;
  }
  CompiledLayout guarded = *this;
  FieldSlice guard;
  guard.name = std::string(kGuardSliceName);
  guard.bit_width = kGuardBits;
  // Byte-align the tag; serialize() zero-fills any gap this leaves.
  guard.bit_start = (total_bits_ + 7) / 8 * 8;
  guarded.guard_index_ = guarded.slices_.size();
  guarded.total_bits_ = guard.bit_start + guard.bit_width;
  guarded.slices_.push_back(std::move(guard));
  return guarded;
}

std::uint16_t CompiledLayout::guard_tag(std::span<const std::uint8_t> record,
                                        std::span<const std::uint8_t> frame) const {
  // Tag = fold of (record body, frame length, frame head, frame tail).
  // Binding the frame catches stale/duplicated ring entries whose record
  // bytes are internally consistent but describe another packet.  Head and
  // tail windows bound the cost on jumbo frames; differences confined to
  // the middle of equal-length frames are outside the guard's reach
  // (documented in docs/fault_model.md).
  std::size_t body_bytes = total_bytes();
  if (guard_index_) {
    body_bytes = std::min(body_bytes, slices_[*guard_index_].byte_offset());
  }
  body_bytes = std::min(body_bytes, record.size());
  std::uint32_t tag = softnic::fnv1a32(record.first(body_bytes));
  tag = (tag * 0x9e3779b1u) ^ static_cast<std::uint32_t>(frame.size());
  tag ^= softnic::fnv1a32(frame.first(std::min<std::size_t>(frame.size(), 64)));
  tag = (tag * 0x85ebca6bu) ^
        softnic::fnv1a32(frame.last(std::min<std::size_t>(frame.size(), 32)));
  return static_cast<std::uint16_t>(tag ^ (tag >> 16));
}

void CompiledLayout::seal(std::span<std::uint8_t> record,
                          std::span<const std::uint8_t> frame) const {
  if (!guard_index_) {
    return;
  }
  if (record.size() < total_bytes()) {
    throw Error(ErrorKind::layout,
                "seal: record smaller than guarded layout '" + path_id_ + "'");
  }
  const FieldSlice& guard = slices_[*guard_index_];
  write_bits(record, guard.byte_offset(), guard.bit_offset(), guard.bit_width,
             endian_, guard_tag(record, frame));
}

bool CompiledLayout::verify_guard(std::span<const std::uint8_t> record,
                                  std::span<const std::uint8_t> frame) const {
  if (!guard_index_) {
    return true;
  }
  if (record.size() < total_bytes()) {
    return false;  // truncated: the tag itself is missing
  }
  const FieldSlice& guard = slices_[*guard_index_];
  const std::uint64_t stored = read_bits(record, guard.byte_offset(),
                                         guard.bit_offset(), guard.bit_width,
                                         endian_);
  return stored == guard_tag(record, frame);
}

CompiledLayout pack_layout(std::string nic_name, std::string path_id,
                           Endian endian, std::vector<FieldSlice> pieces) {
  std::size_t bit_pos = 0;
  for (FieldSlice& s : pieces) {
    if (s.bit_width == 0 || s.bit_width > 64) {
      throw Error(ErrorKind::layout,
                  "field '" + s.name + "' has invalid width " +
                      std::to_string(s.bit_width));
    }
    // A slice is read through one 64-bit window: (bit_pos % 8) + width <= 64.
    if ((bit_pos % 8) + s.bit_width > 64) {
      throw Error(ErrorKind::layout,
                  "field '" + s.name + "' (" + std::to_string(s.bit_width) +
                      " bits) would start at bit " + std::to_string(bit_pos) +
                      " and exceed the 64-bit access window; align it to a "
                      "byte boundary in the deparser");
    }
    s.bit_start = bit_pos;
    bit_pos += s.bit_width;
  }
  return CompiledLayout(std::move(nic_name), std::move(path_id), endian,
                        std::move(pieces));
}

}  // namespace opendesc::core
