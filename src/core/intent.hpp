// Application intent parsing (§3, Fig. 5).
//
// An application declares the metadata it wants as a plain P4 header whose
// fields carry @semantic annotations:
//
//     header intent_t {
//         @semantic("rss")         bit<32> rss_val;
//         @semantic("vlan")        bit<16> vlan_tag;
//         @semantic("ip_checksum") bit<16> csum;
//     }
//
// Fields may also carry @cost(ns) to override the software-fallback cost of
// that semantic, and unannotated fields are rejected (they would have no
// meaning to either side).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "p4/ast.hpp"
#include "p4/typecheck.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::core {

/// One requested metadata field.
struct IntentField {
  std::string field_name;
  softnic::SemanticId semantic{};
  std::size_t bit_width = 0;
  std::optional<double> cost_override;  ///< @cost(ns) annotation
};

/// The parsed intent: Req ⊆ Σ plus per-field details.
struct Intent {
  std::string header_name;
  std::vector<IntentField> fields;

  [[nodiscard]] std::set<softnic::SemanticId> requested() const {
    std::set<softnic::SemanticId> req;
    for (const IntentField& f : fields) {
      req.insert(f.semantic);
    }
    return req;
  }
};

/// Extracts the intent from an already-parsed header declaration.
/// Unknown @semantic names are auto-registered as extension semantics when
/// `auto_register` is true (the paper's "application can define new
/// @semantic annotations"); otherwise they raise Error(semantic).
[[nodiscard]] Intent intent_from_header(const p4::StructLikeDecl& header,
                                        const p4::TypeInfo& types,
                                        softnic::SemanticRegistry& registry,
                                        bool auto_register = true);

/// Parses P4 source containing exactly one intent header (plus optional
/// typedefs/consts) and extracts it.
[[nodiscard]] Intent parse_intent(std::string_view source,
                                  softnic::SemanticRegistry& registry,
                                  bool auto_register = true);

}  // namespace opendesc::core
