// TX-descriptor analysis: the DescParser side of the contract (Fig. 3).
//
// On TX, the *host* is the producer: it posts descriptors the NIC's
// DescParser interprets.  A NIC's descriptor parser is a P4 parser whose
// states extract header(s); select() transitions on already-extracted
// fields choose between descriptor formats (e.g. ixgbe's data vs context
// descriptors, QDMA's 16/32-byte H2C layouts).
//
// The analysis walks the state machine from `start`, collecting the
// extracted fields of every root-to-accept walk into one *descriptor
// format*.  Formats deliberately reuse the CompletionPath representation —
// Prov(p) becomes "TX semantics the NIC understands in this format",
// Size(p) the posted-descriptor footprint — so the Eq. 1 optimizer and the
// layout packer apply unchanged; only the roles of producer and consumer
// swap, exactly as §3 describes.
#pragma once

#include "core/layout.hpp"
#include "core/paths.hpp"

namespace opendesc::core {

/// Options for descriptor-format enumeration.
struct TxDescOptions {
  /// Known constants visible to select keysets.
  p4::ConstEnv consts;
  /// Safety valve for degenerate state machines.
  std::size_t max_formats = 4096;
};

/// Enumerates the descriptor formats accepted by `desc_parser`.
/// Each returned path's `provided` holds the TX semantics of the format,
/// `pieces` the field layout in extraction order, `constraints`/`branch_trace`
/// the select keyset that activates it.  Walks ending in `reject` are
/// dropped.  Throws Error(type) on cycles or malformed extracts.
[[nodiscard]] std::vector<CompletionPath> enumerate_tx_formats(
    const p4::Program& program, const p4::TypeInfo& types,
    const p4::ParserDecl& desc_parser, const softnic::SemanticRegistry& registry,
    const TxDescOptions& options = {});

/// The endianness a NIC declares on its descriptor parser via
/// @endian("big"/"little"); little when unannotated.
[[nodiscard]] Endian desc_parser_endian(const p4::ParserDecl& desc_parser);

/// Generates a C header of *writer* stubs for a chosen TX format: one
/// `<prefix>_set_<semantic>(uint8_t *desc, uint64_t value)` per field, plus
/// `<prefix>_desc_init` that zeroes the descriptor and stamps @fixed
/// fields.  The inverse of the completion accessors.
[[nodiscard]] std::string generate_tx_writer_header(
    const CompiledLayout& layout, const softnic::SemanticRegistry& registry,
    const std::string& prefix);

}  // namespace opendesc::core
