// Feature equivalence (§5).
//
// The paper asks whether "a feature described in the NIC is equivalent to a
// feature described in application code", to avoid standardizing semantics
// by name.  It also reports the sobering finding that full semantic
// equivalence is out of reach ("implementations from vendors differ
// slightly"), which is why OpenDesc settles on @semantic annotations.
//
// This module implements the tractable middle ground the paper's position
// implies:
//  * interface equivalence — two intents request interchangeable contracts
//    iff their semantic multisets match (names are the unit of meaning);
//  * structural equivalence — two P4 controls are the same feature modulo
//    alpha-renaming of their parameters (catches vendor copies that only
//    rename identifiers; deliberately does NOT attempt to prove that two
//    different algorithms agree — the thing the paper says needs symbolic
//    execution and remains future work).
#pragma once

#include "core/intent.hpp"
#include "p4/ast.hpp"

namespace opendesc::core {

/// True iff the two intents request the same multiset of semantics (widths
/// follow from the registry, so names suffice).
[[nodiscard]] bool interface_equivalent(const Intent& a, const Intent& b);

/// Result of a structural comparison, with the first divergence point for
/// diagnostics.
struct StructuralResult {
  bool equivalent = false;
  std::string divergence;  ///< human-readable reason when !equivalent

  explicit operator bool() const noexcept { return equivalent; }
};

/// Compares the apply bodies of two controls modulo a positional renaming
/// of their parameters (a's i-th parameter name ↦ b's i-th).  Field names,
/// literals, operators and control flow must match exactly.
[[nodiscard]] StructuralResult structurally_equivalent(
    const p4::ControlDecl& a, const p4::ControlDecl& b);

}  // namespace opendesc::core
