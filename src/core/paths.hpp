// Completion-path enumeration and characterization (§4 step 2).
//
// A completion path p = (v0, ..., vk) is a feasible root-to-leaf walk of the
// deparser CFG.  Each path is characterized by
//     Prov(p) = ∪ sem(v_i)      (the semantics the NIC emits on this path)
//     Size(p) = Σ size(v_i)     (the DMA completion footprint)
// Infeasible walks — whose branch predicates contradict each other or the
// declared widths of the context fields — are pruned with the symbolic
// ConstraintSet machinery.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/cfg.hpp"
#include "p4/eval.hpp"

namespace opendesc::core {

/// One feasible completion path.
struct CompletionPath {
  std::string id;                          ///< "path0", "path1", ... stable order
  std::vector<std::size_t> node_ids;       ///< emit vertices, in emit order
  std::vector<EmitPiece> pieces;           ///< flattened emit pieces
  std::set<softnic::SemanticId> provided;  ///< Prov(p)
  std::size_t size_bits = 0;               ///< Size(p) in bits
  p4::ConstraintSet constraints;           ///< context constraints of the walk
  std::vector<std::string> branch_trace;   ///< human-readable predicate trail

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return (size_bits + 7) / 8;
  }
  [[nodiscard]] bool provides(softnic::SemanticId s) const {
    return provided.contains(s);
  }
  /// "path2: {rss, ip_checksum} 8B  [ctx.use_rss=1]"
  [[nodiscard]] std::string describe(const softnic::SemanticRegistry& registry) const;
};

/// Enumeration options.
struct PathEnumOptions {
  /// Known constants visible to branch predicates.
  p4::ConstEnv consts;
  /// Width bounds of context variables ("ctx.cmpt_size" → max value).
  std::map<std::string, std::uint64_t> variable_bounds;
  /// Safety valve for pathological deparsers.
  std::size_t max_paths = 1 << 20;
  /// Disable symbolic feasibility pruning (ablation: enumerate every
  /// syntactic root-to-leaf walk, contradictory or not).
  bool prune_infeasible = true;
};

/// Enumerates every feasible completion path of `cfg` in deterministic
/// order (true branches explored first).  Throws Error(internal) when the
/// path count exceeds options.max_paths.
[[nodiscard]] std::vector<CompletionPath> enumerate_paths(
    const Cfg& cfg, const PathEnumOptions& options = {});

/// Convenience: derives variable_bounds from the deparser's context
/// parameters (each bit<w> field of every `in` struct parameter that is not
/// the metadata source gets the bound 2^w - 1).
[[nodiscard]] std::map<std::string, std::uint64_t> context_bounds(
    const p4::Program& program, const p4::TypeInfo& types,
    const p4::ControlDecl& deparser);

}  // namespace opendesc::core
