// Compiled completion layouts: the binary contract a chosen completion path
// defines between NIC and host (§5 of DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::core {

/// One contiguous bit field of a completion record.
struct FieldSlice {
  std::string name;                                ///< P4 field name
  std::optional<softnic::SemanticId> semantic;     ///< nullopt = status/padding
  std::size_t bit_start = 0;                       ///< from start of record
  std::size_t bit_width = 0;
  std::optional<std::uint64_t> fixed_value;        ///< @fixed(n) fields

  [[nodiscard]] std::size_t byte_offset() const noexcept { return bit_start / 8; }
  [[nodiscard]] std::size_t bit_offset() const noexcept { return bit_start % 8; }
};

/// The completion record layout selected for one (NIC, intent) pair.
class CompiledLayout {
 public:
  CompiledLayout() = default;
  CompiledLayout(std::string nic_name, std::string path_id, Endian endian,
                 std::vector<FieldSlice> slices);

  [[nodiscard]] const std::string& nic_name() const noexcept { return nic_name_; }
  [[nodiscard]] const std::string& path_id() const noexcept { return path_id_; }
  [[nodiscard]] Endian endian() const noexcept { return endian_; }
  [[nodiscard]] const std::vector<FieldSlice>& slices() const noexcept {
    return slices_;
  }

  /// Size of the record in bits / bytes (bytes rounded up).
  [[nodiscard]] std::size_t total_bits() const noexcept { return total_bits_; }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return bits_to_bytes(total_bits_);
  }

  /// Slice carrying `semantic`; nullptr when the path does not provide it.
  [[nodiscard]] const FieldSlice* find(softnic::SemanticId semantic) const noexcept;

  /// Every semantic this layout provides.
  [[nodiscard]] std::vector<softnic::SemanticId> provided() const;

  /// Serializes one completion record: values[i] corresponds to the i-th
  /// slice (fixed-value slices may pass any value; the fixed value wins;
  /// padding slices take the given raw value, normally 0).
  /// `out` must be at least total_bytes() long.
  void serialize(std::span<std::uint8_t> out,
                 std::span<const std::uint64_t> values) const;

  /// Reads the slice at `index` from a completion record.
  [[nodiscard]] std::uint64_t read_slice(std::span<const std::uint8_t> record,
                                         std::size_t index) const;

  /// Reads the slice carrying `semantic`; throws Error(layout) when absent.
  [[nodiscard]] std::uint64_t read(std::span<const std::uint8_t> record,
                                   softnic::SemanticId semantic) const;

  // --- Integrity guard (hardened datapath) ---------------------------------
  //
  // A guarded layout appends a byte-aligned 16-bit "__guard" slice carrying
  // a tag over the record body *and* the frame the record describes.  The
  // NIC seals each record after serializing it; the host's validating loop
  // recomputes the tag and quarantines records where it mismatches — this
  // catches bit flips, truncation, and stale/duplicated ring entries (a
  // stale record carries a tag bound to the *previous* frame).

  /// Copy of this layout with the guard slice appended (idempotent).
  [[nodiscard]] CompiledLayout with_guard() const;

  [[nodiscard]] bool has_guard() const noexcept { return guard_index_.has_value(); }

  /// The tag value for a record body + frame pair (valid on any layout).
  [[nodiscard]] std::uint16_t guard_tag(std::span<const std::uint8_t> record,
                                        std::span<const std::uint8_t> frame) const;

  /// Computes and writes the guard tag of a fully serialized record.
  /// No-op on unguarded layouts.
  void seal(std::span<std::uint8_t> record,
            std::span<const std::uint8_t> frame) const;

  /// True when the stored guard tag matches a recomputation (or the layout
  /// carries no guard — nothing to check).
  [[nodiscard]] bool verify_guard(std::span<const std::uint8_t> record,
                                  std::span<const std::uint8_t> frame) const;

 private:
  std::string nic_name_;
  std::string path_id_;
  Endian endian_ = Endian::little;
  std::vector<FieldSlice> slices_;
  std::size_t total_bits_ = 0;
  std::optional<std::size_t> guard_index_;  ///< index of the "__guard" slice
};

/// Name and width of the guard slice appended by with_guard().
inline constexpr std::string_view kGuardSliceName = "__guard";
inline constexpr std::size_t kGuardBits = 16;

/// Packs `pieces` sequentially from bit 0 and returns the layout.
/// Throws Error(layout) when a >56-bit field would start unaligned (the
/// bit-slice machinery reads through a single 64-bit window).
[[nodiscard]] CompiledLayout pack_layout(std::string nic_name, std::string path_id,
                                         Endian endian,
                                         std::vector<FieldSlice> pieces);

}  // namespace opendesc::core
