#include "core/intent.hpp"

#include "common/error.hpp"
#include "p4/parser.hpp"

namespace opendesc::core {

Intent intent_from_header(const p4::StructLikeDecl& header,
                          const p4::TypeInfo& types,
                          softnic::SemanticRegistry& registry,
                          bool auto_register) {
  Intent intent;
  intent.header_name = header.name();
  for (const p4::FieldDecl& field : header.fields()) {
    const p4::Annotation* sem = p4::find_annotation(field.annotations, "semantic");
    if (sem == nullptr) {
      throw Error(ErrorKind::semantic,
                  p4::to_string(field.location) + ": intent field '" + field.name +
                      "' lacks a @semantic annotation");
    }
    const std::string& sem_name = sem->string_arg();
    const std::size_t width = types.field_width(field);

    std::optional<softnic::SemanticId> id = registry.find(sem_name);
    if (!id) {
      if (!auto_register) {
        throw Error(ErrorKind::semantic,
                    p4::to_string(field.location) + ": unknown semantic '" +
                        sem_name + "'");
      }
      id = registry.register_extension(sem_name, width,
                                       "application-defined (auto-registered)");
    } else if (registry.bit_width(*id) != width) {
      throw Error(ErrorKind::semantic,
                  p4::to_string(field.location) + ": field '" + field.name +
                      "' is " + std::to_string(width) + " bits but semantic '" +
                      sem_name + "' is defined as " +
                      std::to_string(registry.bit_width(*id)) + " bits");
    }

    IntentField out;
    out.field_name = field.name;
    out.semantic = *id;
    out.bit_width = width;
    if (const p4::Annotation* cost = p4::find_annotation(field.annotations, "cost")) {
      out.cost_override = static_cast<double>(cost->int_arg());
    }
    intent.fields.push_back(std::move(out));
  }
  if (intent.fields.empty()) {
    throw Error(ErrorKind::semantic,
                "intent header '" + header.name() + "' declares no fields");
  }
  return intent;
}

Intent parse_intent(std::string_view source, softnic::SemanticRegistry& registry,
                    bool auto_register) {
  const p4::Program program = p4::parse_program(source);
  const p4::TypeInfo types = p4::check_program(program);

  const p4::StructLikeDecl* header = nullptr;
  for (const auto& decl : program.decls()) {
    if (decl->kind() == p4::DeclKind::header) {
      if (header != nullptr) {
        throw Error(ErrorKind::semantic,
                    "intent source declares more than one header; pass the "
                    "header explicitly via intent_from_header");
      }
      header = static_cast<const p4::StructLikeDecl*>(decl.get());
    }
  }
  if (header == nullptr) {
    throw Error(ErrorKind::semantic, "intent source declares no header");
  }
  return intent_from_header(*header, types, registry, auto_register);
}

}  // namespace opendesc::core
