// Host datapath strategies: OpenDesc vs the §2 baselines.
//
// Each strategy answers the same question — "give me the values of these
// semantics for this packet" — the way a real stack would:
//
//  * SkbuffStrategy  (Linux kernel style): eagerly extracts *every* field
//    the descriptor carries into a large metadata struct, parses headers,
//    and fills software defaults for the rest, whether or not the
//    application wants them.  Reads are then cheap struct loads.
//  * MbufStrategy    (DPDK style): the driver copies provided fields into a
//    fixed 128-byte mbuf guarded by offload flags; semantics beyond the
//    fixed struct go through a dynfield indirection table; missing ones are
//    computed on access.
//  * RawStrategy     (netmap style): buffer + length only; every requested
//    semantic is recomputed in software.
//  * OpenDescStrategy: the generated, intent-tailored datapath — lazy
//    constant-time accessor reads for provided semantics, SoftNIC shims for
//    the rest.
#pragma once

#include <string_view>

#include "runtime/facade.hpp"

namespace opendesc::rt {

/// Common interface: fold the requested semantics of one packet into a
/// checksum (returned so benches can defeat dead-code elimination).
class RxStrategy {
 public:
  virtual ~RxStrategy() = default;
  RxStrategy(const RxStrategy&) = delete;
  RxStrategy& operator=(const RxStrategy&) = delete;

  [[nodiscard]] virtual std::uint64_t consume(
      const PacketContext& pkt,
      std::span<const softnic::SemanticId> wanted) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

 protected:
  RxStrategy() = default;
};

/// Kernel-style full extraction into a big metadata struct.
class SkbuffStrategy final : public RxStrategy {
 public:
  SkbuffStrategy(const core::CompiledLayout& layout,
                 const softnic::ComputeEngine& engine);

  [[nodiscard]] std::uint64_t consume(
      const PacketContext& pkt,
      std::span<const softnic::SemanticId> wanted) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "skbuff-full-extract";
  }

  /// The sk_buff-like struct (exposed for tests).
  struct Meta {
    std::uint32_t len = 0;
    std::uint32_t hash = 0;
    std::uint8_t hash_type = 0;
    std::uint8_t csum_level = 0;
    bool ip_csum_ok = false;
    bool l4_csum_ok = false;
    std::uint16_t csum = 0;
    std::uint16_t l4_csum = 0;
    std::uint16_t vlan_tci = 0;
    bool vlan_present = false;
    std::uint64_t timestamp = 0;
    std::uint32_t mark = 0;
    std::uint32_t flow_id = 0;
    std::uint16_t packet_type = 0;
    std::uint16_t ip_id = 0;
    std::uint16_t queue = 0;
    std::uint32_t seq = 0;
    std::uint8_t lro_segs = 0;
    std::uint32_t kv_key_hash = 0;
    std::uint16_t protocol = 0;
  };

  /// The eager per-packet fill step (what a kernel driver's rx routine does).
  [[nodiscard]] Meta fill(const PacketContext& pkt) const;

 private:
  OffsetAccessor accessor_;
  const softnic::ComputeEngine& engine_;
};

/// DPDK-style mbuf with offload flags + dynfield indirection.
class MbufStrategy final : public RxStrategy {
 public:
  MbufStrategy(const core::CompiledLayout& layout,
               const softnic::ComputeEngine& engine);

  [[nodiscard]] std::uint64_t consume(
      const PacketContext& pkt,
      std::span<const softnic::SemanticId> wanted) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dpdk-mbuf-indirection";
  }

  /// rte_mbuf-like fixed struct: 128 bytes of metadata space, an offload
  /// flag word, and a dynamic-field area addressed through a registration
  /// table (modelled after rte_mbuf_dyn).
  struct Mbuf {
    std::uint64_t ol_flags = 0;
    std::uint16_t pkt_len = 0;
    std::uint16_t data_len = 0;
    std::uint32_t rss_hash = 0;
    std::uint16_t vlan_tci = 0;
    std::uint32_t fdir_id = 0;
    std::uint32_t mark = 0;
    std::uint16_t packet_type = 0;
    std::array<std::uint8_t, 64> dynfield{};  ///< registered dynamic fields
  };

  [[nodiscard]] Mbuf fill(const PacketContext& pkt) const;

 private:
  /// Dynamic-field registration: semantic → offset in Mbuf::dynfield
  /// (-1 = not registered, compute on access).
  [[nodiscard]] int dyn_offset(softnic::SemanticId id) const noexcept;

  OffsetAccessor accessor_;
  const softnic::ComputeEngine& engine_;
  std::array<std::int8_t, softnic::kBuiltinSemanticCount> dyn_offsets_{};
  std::array<std::int8_t, softnic::kBuiltinSemanticCount> dyn_sizes_{};
};

/// netmap-style raw buffer: all software.
class RawStrategy final : public RxStrategy {
 public:
  explicit RawStrategy(const softnic::ComputeEngine& engine) : engine_(engine) {}

  [[nodiscard]] std::uint64_t consume(
      const PacketContext& pkt,
      std::span<const softnic::SemanticId> wanted) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "raw-software";
  }

 private:
  const softnic::ComputeEngine& engine_;
};

/// The OpenDesc generated datapath.
class OpenDescStrategy final : public RxStrategy {
 public:
  OpenDescStrategy(const core::CompileResult& result,
                   const softnic::ComputeEngine& engine)
      : facade_(result, engine) {}
  OpenDescStrategy(const core::CompiledLayout& layout,
                   std::vector<core::SoftNicShim> shims,
                   const softnic::ComputeEngine& engine)
      : facade_(layout, std::move(shims), engine) {}

  [[nodiscard]] std::uint64_t consume(
      const PacketContext& pkt,
      std::span<const softnic::SemanticId> wanted) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "opendesc-generated";
  }

  [[nodiscard]] const MetadataFacade& facade() const noexcept { return facade_; }

 private:
  MetadataFacade facade_;
};

}  // namespace opendesc::rt
