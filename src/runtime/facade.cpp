#include "runtime/facade.hpp"

#include "common/error.hpp"

namespace opendesc::rt {

MetadataFacade::MetadataFacade(const core::CompileResult& result,
                               const softnic::ComputeEngine& engine)
    : MetadataFacade(result.layout, result.shims, engine) {}

MetadataFacade::MetadataFacade(const core::CompiledLayout& layout,
                               std::vector<core::SoftNicShim> shims,
                               const softnic::ComputeEngine& engine)
    : accessor_(layout, engine.registry()), shims_(std::move(shims)),
      engine_(engine) {}

Provided<std::uint64_t> MetadataFacade::fetch(
    const PacketContext& pkt, softnic::SemanticId semantic) const {
  Provided<std::uint64_t> nic = accessor_.read_provided(pkt.record(), semantic);
  if (nic.from_hardware()) {
    path_counters_.count(semantic, Provenance::nic_path);
    return nic;
  }
  return compute_software(pkt, semantic, nic.miss_reason());
}

Provided<std::uint64_t> MetadataFacade::fetch_software(
    const PacketContext& pkt, softnic::SemanticId semantic,
    MissReason nic_miss) const {
  return compute_software(pkt, semantic, nic_miss);
}

Provided<std::uint64_t> MetadataFacade::compute_software(
    const PacketContext& pkt, softnic::SemanticId semantic,
    MissReason nic_miss) const {
  // Software fallback: recompute from the frame.  The host has no NIC
  // context, so NIC-private values are unavailable (caught at compile time
  // for chosen paths, observable here for damaged packets) and the
  // timestamp degrades to "no hardware stamp".
  Provided<std::uint64_t> out = Provided<std::uint64_t>::missing(nic_miss);
  if (engine_.can_compute(semantic)) {
    try {
      const softnic::RxContext host_ctx{};
      out = Provided<std::uint64_t>::softnic(
          engine_.compute(semantic, pkt.frame(), pkt.view(), host_ctx),
          nic_miss);
    } catch (const Error&) {
      out = Provided<std::uint64_t>::missing(MissReason::frame_unparseable);
    }
  } else {
    out = Provided<std::uint64_t>::missing(MissReason::no_software_impl);
  }
  path_counters_.count(semantic, out.provenance());
  return out;
}

}  // namespace opendesc::rt
