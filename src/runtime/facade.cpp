#include "runtime/facade.hpp"

#include "common/error.hpp"

namespace opendesc::rt {

MetadataFacade::MetadataFacade(const core::CompileResult& result,
                               const softnic::ComputeEngine& engine)
    : MetadataFacade(result.layout, result.shims, engine) {}

MetadataFacade::MetadataFacade(const core::CompiledLayout& layout,
                               std::vector<core::SoftNicShim> shims,
                               const softnic::ComputeEngine& engine)
    : accessor_(layout, engine.registry()), shims_(std::move(shims)),
      engine_(engine) {}

std::uint64_t MetadataFacade::get(const PacketContext& pkt,
                                  softnic::SemanticId semantic) const {
  if (accessor_.provides(semantic)) {
    return accessor_.read(pkt.record().data(), semantic);
  }
  ++fallback_calls_;
  // Software fallback: recompute from the frame.  The host has no NIC
  // context, so NIC-private values are unavailable (caught at compile time)
  // and the timestamp degrades to "no hardware stamp".
  const softnic::RxContext host_ctx{};
  return engine_.compute(semantic, pkt.frame(), pkt.view(), host_ctx);
}

}  // namespace opendesc::rt
