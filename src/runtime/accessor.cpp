#include "runtime/accessor.hpp"

#include "common/error.hpp"
#include "core/verifier.hpp"

namespace opendesc::rt {

OffsetAccessor::OffsetAccessor(const core::CompiledLayout& layout,
                               const softnic::SemanticRegistry& registry) {
  core::verify_layout_or_throw(layout, registry);
  record_size_ = layout.total_bytes();
  endian_ = layout.endian();
  for (const core::FieldSlice& slice : layout.slices()) {
    if (!slice.semantic) {
      continue;
    }
    AccessorSlot slot;
    slot.byte_offset = static_cast<std::uint32_t>(slice.byte_offset());
    slot.bit_offset = static_cast<std::uint8_t>(slice.bit_offset());
    slot.bit_width = static_cast<std::uint8_t>(slice.bit_width);
    const std::uint32_t id_raw = softnic::raw(*slice.semantic);
    if (id_raw < softnic::kBuiltinSemanticCount) {
      builtin_[id_raw] = slot;
    } else {
      extensions_.emplace_back(id_raw, slot);
    }
  }
}

const AccessorSlot* OffsetAccessor::slot_of(softnic::SemanticId id) const noexcept {
  const std::uint32_t id_raw = softnic::raw(id);
  if (id_raw < softnic::kBuiltinSemanticCount) {
    const auto& slot = builtin_[id_raw];
    return slot ? &*slot : nullptr;
  }
  for (const auto& [raw_id, slot] : extensions_) {
    if (raw_id == id_raw) {
      return &slot;
    }
  }
  return nullptr;
}

Provided<std::uint64_t> OffsetAccessor::read_provided(
    std::span<const std::uint8_t> record, softnic::SemanticId id) const {
  const AccessorSlot* slot = slot_of(id);
  if (slot == nullptr) {
    return Provided<std::uint64_t>::missing(MissReason::not_in_layout);
  }
  const std::size_t span_bytes =
      bits_to_bytes(slot->bit_offset + slot->bit_width);
  if (slot->byte_offset + span_bytes > record.size()) {
    // Truncated record: refuse, like the eBPF verifier.
    return Provided<std::uint64_t>::missing(MissReason::record_truncated);
  }
  return Provided<std::uint64_t>::nic(
      read_bits_unchecked(record.data(), slot->byte_offset, slot->bit_offset,
                          slot->bit_width, endian_));
}

}  // namespace opendesc::rt
