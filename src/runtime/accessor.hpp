// Runtime offset-table accessors.
//
// The in-process equivalent of the generated C accessors: a CompiledLayout
// is "loaded" once (verified, flattened into a dense slot table) and then
// read with constant-time unchecked bit-slice loads.  This is what a
// generated driver datapath compiles down to; benches use it to measure the
// OpenDesc datapath without a C compiler in the loop.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "common/error.hpp"
#include "core/layout.hpp"
#include "runtime/provided.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::rt {

/// Dense per-semantic slot: precomputed geometry of one field.
struct AccessorSlot {
  std::uint32_t byte_offset = 0;
  std::uint8_t bit_offset = 0;
  std::uint8_t bit_width = 0;
};

/// Verified constant-time reader over one CompiledLayout.
class OffsetAccessor {
 public:
  /// Verifies the layout (Error(verification) on failure) and builds the
  /// slot table.
  OffsetAccessor(const core::CompiledLayout& layout,
                 const softnic::SemanticRegistry& registry);

  [[nodiscard]] std::size_t record_size() const noexcept { return record_size_; }
  [[nodiscard]] Endian endian() const noexcept { return endian_; }

  /// True when the layout carries this semantic.
  [[nodiscard]] bool provides(softnic::SemanticId id) const noexcept {
    return slot_of(id) != nullptr;
  }

  /// Unchecked constant-time read; the caller guarantees record has
  /// record_size() bytes (the ring's entry size, checked once at setup).
  [[nodiscard]] std::uint64_t read(const std::uint8_t* record,
                                   softnic::SemanticId id) const {
    const AccessorSlot* slot = slot_of(id);
    if (slot == nullptr) {
      throw Error(ErrorKind::layout,
                  "accessor: semantic not provided by this layout");
    }
    return read_bits_unchecked(record, slot->byte_offset, slot->bit_offset,
                               slot->bit_width, endian_);
  }

  /// Checked read for untrusted/truncated records (XDP-style), reporting
  /// provenance: nic(value) on success, missing(not_in_layout) when the
  /// layout lacks the semantic, missing(record_truncated) when the slice
  /// would cross `record.size()`.
  [[nodiscard]] Provided<std::uint64_t> read_provided(
      std::span<const std::uint8_t> record, softnic::SemanticId id) const;

 private:
  [[nodiscard]] const AccessorSlot* slot_of(softnic::SemanticId id) const noexcept;

  // Builtins get a direct-indexed table (hot path); extensions use a small
  // linear-scanned vector.
  std::array<std::optional<AccessorSlot>, softnic::kBuiltinSemanticCount> builtin_{};
  std::vector<std::pair<std::uint32_t, AccessorSlot>> extensions_;
  std::size_t record_size_ = 0;
  Endian endian_ = Endian::little;
};

}  // namespace opendesc::rt
