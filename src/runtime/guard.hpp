// Hardened host datapath: record validation, quarantine, SoftNIC recovery,
// and verify-after-write control programming.
//
// The paper's contract lets the host consume NIC metadata without parsing —
// but a production driver can never trust DMA'd bytes unconditionally:
// firmware bugs, torn writes and misprogrammed context registers all
// surface as malformed completion records.  The ValidatingRxLoop is the
// driver that survives them:
//
//   1. every record is validated against the CompiledLayout (length, fixed
//      status fields, and — on guarded layouts — the integrity tag binding
//      record to frame);
//   2. malformed records are quarantined into an inspectable dead-letter
//      buffer instead of being consumed (or crashing the loop);
//   3. the packet's wanted semantics are *recovered* through the SoftNIC
//      reference implementations, so goodput degrades to software speed
//      instead of dropping to zero;
//   4. completions that never arrive (device lost them) are detected by
//      frame-matching the in-flight FIFO and recovered the same way;
//   5. control-channel programming is wrapped in readback verification with
//      bounded exponential-backoff retry, failing with Error(device) only
//      after the policy is exhausted.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <string_view>

#include "runtime/engine_config.hpp"
#include "runtime/provided.hpp"
#include "runtime/rxloop.hpp"
#include "sim/ctrlchan.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::rt {

/// Why a record failed validation.
enum class RecordVerdict : std::size_t {
  ok,
  truncated,        ///< shorter than the layout's record size
  bad_fixed_field,  ///< a @fixed status field holds the wrong value
  bad_guard_tag,    ///< integrity tag mismatch (corruption or stale record)
};

inline constexpr std::size_t kRecordVerdictCount = 4;

[[nodiscard]] std::string_view to_string(RecordVerdict verdict) noexcept;

/// Validation knobs.
struct GuardConfig {
  bool check_fixed_fields = true;
  bool check_guard_tag = true;
  std::size_t quarantine_capacity = 64;  ///< dead letters kept for inspection
  std::size_t frame_capture_bytes = 64;  ///< frame head stored per dead letter
  std::uint16_t queue_id = 0;            ///< device queue (recovery context)
};

/// Stateless validator for completion records of one wire layout.
class RecordGuard {
 public:
  explicit RecordGuard(const core::CompiledLayout& wire_layout,
                       GuardConfig config = {});

  /// Checks one record against the layout; `frame` feeds the integrity-tag
  /// recomputation on guarded layouts.
  [[nodiscard]] RecordVerdict validate(std::span<const std::uint8_t> record,
                                       std::span<const std::uint8_t> frame) const;

  [[nodiscard]] const core::CompiledLayout& layout() const noexcept {
    return *layout_;
  }
  [[nodiscard]] const GuardConfig& config() const noexcept { return config_; }

 private:
  const core::CompiledLayout* layout_;  ///< not owned; must outlive the guard
  GuardConfig config_;
  std::vector<std::size_t> fixed_slices_;  ///< indices of @fixed slices
};

/// One quarantined completion record.
struct QuarantinedRecord {
  std::vector<std::uint8_t> record;      ///< the malformed record, verbatim
  std::vector<std::uint8_t> frame_head;  ///< first bytes of the frame
  RecordVerdict reason = RecordVerdict::ok;
  std::uint64_t sequence = 0;  ///< loop-delivery index when quarantined
};

/// Bounded dead-letter buffer: keeps the newest `capacity` malformed
/// records for inspection and counts every quarantine by reason.
///
/// Storage is arena-style: reserve_slots() preallocates every entry's
/// record/frame byte storage up front, and evicted entries recycle through a
/// free pool — after warm-up, quarantining allocates nothing, so a worker
/// shard under a fault storm never touches the global allocator from its
/// hot loop.
class DeadLetterBuffer {
 public:
  explicit DeadLetterBuffer(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Preallocates `capacity` pooled entries sized for `record_bytes`-byte
  /// records and `frame_bytes`-byte frame captures.
  void reserve_slots(std::size_t record_bytes, std::size_t frame_bytes);

  void push(QuarantinedRecord letter);

  /// Copies the spans into pooled storage (no allocation once warmed up).
  void push(std::span<const std::uint8_t> record,
            std::span<const std::uint8_t> frame_head, RecordVerdict reason,
            std::uint64_t sequence);

  [[nodiscard]] const std::deque<QuarantinedRecord>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(RecordVerdict reason) const noexcept {
    return by_reason_[static_cast<std::size_t>(reason)];
  }
  void clear();

 private:
  /// Takes a recycled entry (or a fresh one) off the pool.
  [[nodiscard]] QuarantinedRecord take_slot();
  void evict_over_capacity();

  std::size_t capacity_;
  std::deque<QuarantinedRecord> entries_;
  std::vector<QuarantinedRecord> free_;  ///< recycled entry storage
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kRecordVerdictCount> by_reason_{};
};

// --- Control-channel verify-after-write ------------------------------------

/// Bounded-retry policy for control programming.  Backoff time is
/// *simulated* (accumulated in the report, not slept) so tests stay fast.
struct RetryPolicy {
  std::size_t max_attempts = 8;
  double backoff_base_ns = 1000.0;
  double backoff_multiplier = 2.0;
};

/// Outcome of a verified programming sequence.
struct ProgramReport {
  std::size_t attempts = 0;    ///< 1 = first write stuck
  double backoff_ns = 0.0;     ///< simulated waiting time across retries
  std::string verified_path_id;
};

/// Programs `assignment` with verify-after-write: quiesce (drain pending
/// completions), program, read every register back, confirm the selection is
/// unambiguous (and equals `expect_path_id` when given); on any mismatch
/// back off and reprogram.  Throws Error(device) when the policy's attempts
/// are exhausted — the device is declared misbehaving.  When `sink` is
/// given, each retry/success lands in its control-plane trace ring and the
/// attempt totals in its registry.
ProgramReport program_with_verify(sim::ProgrammableNic& nic,
                                  const p4::ConstEnv& assignment,
                                  const RetryPolicy& policy = {},
                                  std::string_view expect_path_id = {},
                                  telemetry::Sink* sink = nullptr);

// --- The validating receive loop -------------------------------------------

/// No-op per-batch stats observer (the default for run_stream).
struct NullStatsObserver {
  void operator()(const RxLoopStats&) const noexcept {}
};

/// Drop-in hardened replacement for run_rx_loop.  Works with any device
/// exposing the NicSimulator datapath contract (rx/poll/advance/pending/
/// dma/free_buffers) — both sim::NicSimulator and sim::ProgrammableNic.
class ValidatingRxLoop {
 public:
  /// `wire_layout` is the layout the device actually serializes (the
  /// guarded one when the guard is enabled); `engine` services recovery.
  /// Both must outlive the loop.
  ValidatingRxLoop(const core::CompiledLayout& wire_layout,
                   const softnic::ComputeEngine& engine,
                   GuardConfig config = {});

  /// Unified-config construction: derives the guard knobs from the shared
  /// rt::EngineConfig and attaches its telemetry sink as queue `queue` —
  /// the same struct that configures MultiQueueEngine.
  ValidatingRxLoop(const core::CompiledLayout& wire_layout,
                   const softnic::ComputeEngine& engine,
                   const EngineConfig& config, std::size_t queue = 0);

  /// Attaches (or detaches, with nullptr) a telemetry sink; this loop
  /// writes queue `queue`'s trace ring and batch-latency histogram shard,
  /// and drives the sink profiler's shard `queue` (cycle accounting).
  void set_telemetry(telemetry::Sink* sink, std::size_t queue = 0);

  /// Overrides (or detaches, with nullptr) the profiler lane this loop
  /// drives; set_telemetry attaches the sink's matching shard by default.
  void set_profile(telemetry::ProfileShard* shard) noexcept {
    profile_shard_ = shard;
  }
  [[nodiscard]] telemetry::ProfileShard* profile_shard() const noexcept {
    return profile_shard_;
  }

  template <typename Nic>
  [[nodiscard]] RxLoopStats run(Nic& nic, net::WorkloadGenerator& workload,
                                RxStrategy& strategy,
                                std::span<const softnic::SemanticId> wanted,
                                const RxLoopConfig& config = {});

  /// Stream-driven variant: the engine's per-queue workers feed on this.
  /// `source()` returns the next packet or nullopt for end-of-stream (it may
  /// block — e.g. on an SPSC handoff ring — and blocking time is *not*
  /// charged to host_ns).  Per iteration the loop accepts up to
  /// config.batch packets, then polls and consumes one completion batch;
  /// after the stream ends it drains the device and recovers whatever never
  /// completed, exactly like run().  `observe(stats)` fires after every
  /// consumed batch (and once on exit) so a live stats registry can publish
  /// shard counters without the loop taking locks.
  template <typename Nic, typename Source, typename Observer = NullStatsObserver>
  [[nodiscard]] RxLoopStats run_stream(
      Nic& nic, Source&& source, RxStrategy& strategy,
      std::span<const softnic::SemanticId> wanted,
      const RxLoopConfig& config = {}, Observer&& observe = {});

  /// Epoch cutover: re-targets validation at a new wire layout after the
  /// caller has drained the device against the old one.  The dead-letter
  /// arena is re-sized for the new record shape and a layout_cutover trace
  /// event (arg = epoch) marks the boundary in this queue's ring.
  /// `wire_layout` must outlive the loop, like the constructor's.
  void cut_over(const core::CompiledLayout& wire_layout, std::uint32_t epoch);

  [[nodiscard]] const DeadLetterBuffer& dead_letters() const noexcept {
    return dead_letters_;
  }
  [[nodiscard]] const RecordGuard& guard() const noexcept { return guard_; }

  /// Per-semantic path counts for packets this loop recovered in software
  /// (quarantined / lost / rejected) — the complement of the facade's
  /// path_counters(), so per-semantic totals reconcile with packets.
  [[nodiscard]] const SemanticPathCounters& recovery_path_counters()
      const noexcept {
    return recovery_paths_;
  }

 private:
  /// Records one trace event into this loop's ring (no-op without a sink).
  void trace(telemetry::TraceEventType type, std::uint8_t detail = 0,
             std::uint32_t arg = 0) {
    if (trace_ring_ != nullptr) {
      trace_ring_->record({type, detail, queue_, arg, trace_seq_++});
    }
  }

  /// Computes the wanted semantics of one packet entirely in software,
  /// mirroring what the hardware path would have returned: NIC-provided
  /// semantics use the device context (timestamp, queue), facade-fallback
  /// semantics use the host context — so the fold matches a fault-free run.
  /// Counts each semantic's outcome in recovery_path_counters() with
  /// `nic_miss` as the reason the NIC path was unusable.
  [[nodiscard]] std::uint64_t software_fold(
      const net::Packet& packet, std::span<const softnic::SemanticId> wanted,
      RxLoopStats& stats, MissReason nic_miss);

  /// Validation pass: verdicts[i] for each of the `n` polled events.
  /// Pure per-record work (no FIFO interaction), so it is its own
  /// stage-latency span.  Sampled events additionally record per-event
  /// `validate` lifecycle spans (detail = verdict).
  void validate_events(std::span<const sim::RxEvent> events, std::size_t n,
                       std::vector<RecordVerdict>& verdicts) const;

  /// Consume pass over pre-validated events: re-aligns against the
  /// in-flight FIFO (detects dropped completions by frame mismatch),
  /// consumes good records through the strategy and recovers the rest.
  void consume_events(std::span<const sim::RxEvent> events, std::size_t n,
                      std::span<const RecordVerdict> verdicts,
                      std::deque<net::Packet>& pending, RxStrategy& strategy,
                      std::span<const softnic::SemanticId> wanted,
                      RxLoopStats& stats);

  /// Captures one postmortem incident into the sink's flight recorder
  /// (no-op without a sink).  Fault-path only.  `trace_id` stamps the
  /// incident with the offending packet's causal trace; 0 falls back to the
  /// ring's most recent sampled id (nearest in time).
  void flight_capture(telemetry::FlightCause cause, std::uint8_t detail,
                      std::span<const std::uint8_t> record,
                      std::span<const std::uint8_t> frame_head,
                      std::uint64_t trace_id = 0);

  /// Recovers one packet whose completion never arrived (or was refused at
  /// rx when `reason` says so).
  void recover_lost(const net::Packet& packet,
                    std::span<const softnic::SemanticId> wanted,
                    RxLoopStats& stats,
                    MissReason reason = MissReason::completion_lost);

  RecordGuard guard_;
  const softnic::ComputeEngine* engine_;
  DeadLetterBuffer dead_letters_;
  std::uint64_t sequence_ = 0;
  SemanticPathCounters recovery_paths_;
  telemetry::Sink* sink_ = nullptr;
  telemetry::TraceRing* trace_ring_ = nullptr;          ///< sink_->ring(queue_)
  telemetry::Histogram::Shard* latency_shard_ = nullptr;///< per-batch host ns
  /// Worker-owned stage spans (ring / validate / consume); steer and
  /// handoff stay null here — they belong to the dispatch thread.
  std::array<telemetry::Histogram::Shard*, telemetry::kStageCount>
      stage_shards_{};
  telemetry::ProfileShard* profile_shard_ = nullptr;  ///< cycle accounting
  telemetry::SpanRing* span_ring_ = nullptr;  ///< sink_->span_ring(queue_)
  telemetry::Histogram* latency_hist_ = nullptr;  ///< exemplar target
  /// Exemplar targets per stage (null where this worker records no stage).
  std::array<telemetry::Histogram*, telemetry::kStageCount> stage_hists_{};
  std::uint16_t queue_ = 0;
  std::uint64_t trace_seq_ = 0;
  std::uint64_t span_batch_trace_ = 0;  ///< last sampled trace id this batch
  std::vector<RecordVerdict> verdicts_;  ///< per-batch scratch (no realloc)
};

template <typename Nic>
RxLoopStats ValidatingRxLoop::run(Nic& nic, net::WorkloadGenerator& workload,
                                  RxStrategy& strategy,
                                  std::span<const softnic::SemanticId> wanted,
                                  const RxLoopConfig& config) {
  std::size_t remaining = config.packet_count;
  return run_stream(
      nic,
      [&]() -> std::optional<net::Packet> {
        if (remaining == 0) {
          return std::nullopt;
        }
        --remaining;
        return workload.next();
      },
      strategy, wanted, config);
}

template <typename Nic, typename Source, typename Observer>
RxLoopStats ValidatingRxLoop::run_stream(
    Nic& nic, Source&& source, RxStrategy& strategy,
    std::span<const softnic::SemanticId> wanted, const RxLoopConfig& config,
    Observer&& observe) {
  RxLoopStats stats;
  std::vector<sim::RxEvent> events(config.batch);
  std::deque<net::Packet> pending;  ///< accepted, completion not yet seen
  std::vector<net::Packet> burst;   ///< popped from the source, pre-rx
  std::vector<net::Packet> rejected;  ///< rx() refused, recover in software
  burst.reserve(config.batch);
  rejected.reserve(config.batch);
  verdicts_.reserve(config.batch);

  // Profiler lane: spans re-use the histogram spans' elapsed time (no extra
  // clock reads for work stages); sampling is decided per batch by the
  // shard's auto-tuned stride.  prof_sampled is live state the span lambdas
  // read — it flips at every batch_begin.
  telemetry::ProfileShard* const prof = profile_shard_;
  bool prof_sampled = false;

  // host_ns is charged on the per-thread CPU clock: when several shard
  // workers share fewer cores (or one), preemption by a sibling shard must
  // not count against this shard's datapath cost.  Each span also lands in
  // the sink's per-stage latency histogram (sink-gated: one branch when
  // telemetry is off), and a consumed batch's validate+consume total in
  // the batch-latency histogram.
  const auto span = [&](telemetry::Stage stage, auto&& body) -> double {
    const double start = thread_cpu_now_ns();
    body();
    const double elapsed = thread_cpu_now_ns() - start;
    stats.host_ns += elapsed;
    auto* shard = stage_shards_[static_cast<std::size_t>(stage)];
    if (shard != nullptr && elapsed > 0.0) {
      shard->observe(static_cast<std::uint64_t>(elapsed));
      // Exemplar: link this bucket to the batch's sampled packet (if any).
      if (auto* hist = stage_hists_[static_cast<std::size_t>(stage)];
          hist != nullptr && span_batch_trace_ != 0) {
        hist->record_exemplar(static_cast<std::uint64_t>(elapsed),
                              span_batch_trace_);
      }
    }
    if (prof_sampled) {
      prof->record(telemetry::to_profile_stage(stage), elapsed);
    }
    return elapsed;
  };
  // The ring stage (rx feed + completion poll) is simulated-device work:
  // it is spanned for the stage histogram but never charged to host_ns,
  // and costs zero clock reads when telemetry is off.
  auto* const ring_shard =
      stage_shards_[static_cast<std::size_t>(telemetry::Stage::ring)];
  const auto ring_span = [&](auto&& body) {
    if (ring_shard == nullptr && !prof_sampled) {
      body();
      return;
    }
    const double start = thread_cpu_now_ns();
    body();
    const double elapsed = thread_cpu_now_ns() - start;
    if (ring_shard != nullptr && elapsed > 0.0) {
      ring_shard->observe(static_cast<std::uint64_t>(elapsed));
    }
    if (prof_sampled) {
      prof->record(telemetry::ProfileStage::ring, elapsed);
    }
  };
  const auto consume_batch = [&](std::size_t n) {
    double batch_ns = 0.0;
    batch_ns += span(telemetry::Stage::validate,
                     [&] { validate_events(events, n, verdicts_); });
    batch_ns += span(telemetry::Stage::consume, [&] {
      consume_events(events, n, verdicts_, pending, strategy, wanted, stats);
      for (const net::Packet& pkt : rejected) {
        // Backpressure or device refusal: degrade gracefully — the packet's
        // semantics still get delivered, from software.
        recover_lost(pkt, wanted, stats, MissReason::rx_rejected);
        --stats.lost_completions;  // rejected, not lost: recounted above
      }
      rejected.clear();
    });
    if (latency_shard_ != nullptr && batch_ns > 0.0) {
      latency_shard_->observe(static_cast<std::uint64_t>(batch_ns));
      if (latency_hist_ != nullptr && span_batch_trace_ != 0) {
        latency_hist_->record_exemplar(static_cast<std::uint64_t>(batch_ns),
                                       span_batch_trace_);
      }
    }
  };

  trace(telemetry::TraceEventType::run_started, 0,
        static_cast<std::uint32_t>(config.batch));

  bool open = true;
  while (open) {
    prof_sampled = prof != nullptr && prof->batch_begin();
    span_batch_trace_ = 0;  // exemplars bind to *this* batch's sampled packet
    // Pop the burst before touching the device: source() may block (e.g. on
    // an SPSC handoff ring), and waiting must not pollute the ring span.
    // On sampled batches the whole refill is accounted as wait — source-side
    // blocking on the TSC/wall clock, because blocked time never shows on
    // the CPU clock the work spans use.
    const double wait_start =
        prof_sampled ? telemetry::profile_now_ns() : 0.0;
    burst.clear();
    while (burst.size() < config.batch) {
      std::optional<net::Packet> next = source();
      if (!next) {
        open = false;
        break;
      }
      burst.push_back(std::move(*next));
    }
    if (prof_sampled) {
      prof->record(telemetry::ProfileStage::wait,
                   telemetry::profile_now_ns() - wait_start);
    }
    if (burst.empty()) {
      if (prof_sampled) {
        prof->batch_end(0);
      } else if (prof != nullptr) {
        prof->batch_skip(0);
      }
      break;  // stream ended exactly on a batch boundary
    }

    std::size_t n = 0;
    ring_span([&] {
      for (net::Packet& pkt : burst) {
        // Sampled packets get a per-packet `ring` lifecycle span around the
        // rx feed; the device then records nic_parse / completion_write
        // inside rx() on this same thread (single-writer ring holds).
        const bool traced = span_ring_ != nullptr && pkt.trace_id != 0;
        const double t0 = traced ? telemetry::profile_now_ns() : 0.0;
        const std::uint64_t trace_id = pkt.trace_id;
        if (nic.rx(pkt)) {
          pending.push_back(std::move(pkt));
        } else {
          ++stats.drops;
          ++stats.rx_rejected;
          trace(telemetry::TraceEventType::rx_rejected);
          rejected.push_back(std::move(pkt));
        }
        if (traced) {
          span_batch_trace_ = trace_id;
          span_ring_->record(telemetry::SpanStage::ring, trace_id, t0,
                             telemetry::profile_now_ns() - t0);
        }
      }
      n = nic.poll(events);
    });
    consume_batch(n);
    nic.advance(n);
    observe(stats);
    // Packets are attributed at consumption (polled completions), never at
    // burst refill — otherwise a completion surfacing in the drain phase
    // would be counted against two batches.
    if (prof_sampled) {
      prof->batch_end(n);
    } else if (prof != nullptr) {
      prof->batch_skip(n);
    }
  }

  // Drain.  Delayed doorbells surface completions only after further polls;
  // keep polling while the device reports work in flight.  Cold path, so
  // every drain iteration is force-sampled; an empty poll is an idle spin
  // (doorbell delay) and accounted as wait, not ring work.
  while (nic.pending() > 0) {
    std::size_t n = 0;
    if (prof != nullptr) {
      prof_sampled = prof->batch_begin(/*force=*/true);
      const double start = thread_cpu_now_ns();
      n = nic.poll(events);
      const double elapsed = thread_cpu_now_ns() - start;
      if (n == 0) {
        prof->record(telemetry::ProfileStage::wait, elapsed);
        prof->batch_end(0);
        continue;  // doorbell delay: the next poll advances the clock
      }
      prof->record(telemetry::ProfileStage::ring, elapsed);
      if (ring_shard != nullptr && elapsed > 0.0) {
        ring_shard->observe(static_cast<std::uint64_t>(elapsed));
      }
    } else {
      ring_span([&] { n = nic.poll(events); });
      if (n == 0) {
        continue;  // doorbell delay: the next poll advances the clock
      }
    }
    consume_batch(n);
    nic.advance(n);
    observe(stats);
    if (prof != nullptr) {
      prof->batch_end(n);
    }
  }

  // Whatever is still unmatched was accepted by rx() but never completed.
  const std::size_t recovered = pending.size();
  if (prof != nullptr) {
    prof_sampled = prof->batch_begin(/*force=*/true);
  }
  span(telemetry::Stage::consume, [&] {
    for (const net::Packet& pkt : pending) {
      recover_lost(pkt, wanted, stats);
    }
  });
  pending.clear();
  if (prof != nullptr) {
    prof->batch_end(recovered);
    prof->flush();
  }

  stats.completion_bytes = nic.dma().completion_bytes;
  stats.frame_bytes = nic.dma().rx_frame_bytes;
  stats.drops_ring_full = nic.dma().drops_ring_full;
  stats.drops_pool_exhausted = nic.dma().drops_pool_exhausted;
  stats.drops_oversize = nic.dma().drops_oversize;
  trace(telemetry::TraceEventType::run_finished, 0,
        static_cast<std::uint32_t>(
            stats.packets > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : stats.packets));
  observe(stats);
  return stats;
}

}  // namespace opendesc::rt
