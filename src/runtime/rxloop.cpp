#include "runtime/rxloop.hpp"

#include <chrono>
#include <ctime>

namespace opendesc::rt {

RxLoopStats& RxLoopStats::operator+=(const RxLoopStats& other) noexcept {
  packets += other.packets;
  drops += other.drops;
  value_checksum ^= other.value_checksum;
  host_ns += other.host_ns;
  completion_bytes += other.completion_bytes;
  frame_bytes += other.frame_bytes;
  drops_ring_full += other.drops_ring_full;
  drops_pool_exhausted += other.drops_pool_exhausted;
  drops_oversize += other.drops_oversize;
  hw_consumed += other.hw_consumed;
  quarantined += other.quarantined;
  softnic_recovered += other.softnic_recovered;
  lost_completions += other.lost_completions;
  rx_rejected += other.rx_rejected;
  unrecoverable_values += other.unrecoverable_values;
  return *this;
}

double thread_cpu_now_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e9 + static_cast<double>(ts.tv_nsec);
  }
#endif
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RxLoopStats run_rx_loop(sim::NicSimulator& nic, net::WorkloadGenerator& workload,
                        RxStrategy& strategy,
                        std::span<const softnic::SemanticId> wanted,
                        const RxLoopConfig& config) {
  RxLoopStats stats;
  std::vector<sim::RxEvent> events(config.batch);

  std::size_t remaining = config.packet_count;
  while (remaining > 0) {
    const std::size_t burst = std::min(config.batch, remaining);

    // NIC side: packets arrive from the wire.
    for (std::size_t i = 0; i < burst; ++i) {
      const net::Packet pkt = workload.next();
      if (!nic.rx(pkt)) {
        ++stats.drops;
      }
    }
    remaining -= burst;

    // Host side: poll + consume (the timed section).
    const std::size_t n = nic.poll(events);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const PacketContext pkt(events[i]);
      stats.value_checksum ^= strategy.consume(pkt, wanted);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    stats.host_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    stats.packets += n;
    nic.advance(n);
  }

  // Drain anything still pending (possible when bursts exceeded ring space).
  for (;;) {
    const std::size_t n = nic.poll(events);
    if (n == 0) {
      break;
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const PacketContext pkt(events[i]);
      stats.value_checksum ^= strategy.consume(pkt, wanted);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    stats.host_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    stats.packets += n;
    nic.advance(n);
  }

  stats.completion_bytes = nic.dma().completion_bytes;
  stats.frame_bytes = nic.dma().rx_frame_bytes;
  stats.drops_ring_full = nic.dma().drops_ring_full;
  stats.drops_pool_exhausted = nic.dma().drops_pool_exhausted;
  stats.drops_oversize = nic.dma().drops_oversize;
  return stats;
}

}  // namespace opendesc::rt
