// Provenance-aware accessor results — the redesigned facade return type.
//
// A bare std::optional<uint64_t> answers "did I get a value?" but not the
// question the paper actually cares about: *which path served it*.  Eq. 1
// trades SoftNIC fallback cost against descriptor DMA footprint at compile
// time; Provided<T> makes the same trade observable at runtime.  Every
// facade read reports whether the value came off the NIC descriptor
// (nic_path), was recomputed by a SoftNIC shim (softnic_shim), or could not
// be produced at all (unavailable) — and, for the latter two, why the NIC
// path missed.
//
// Migration note: the pre-Provided wrappers (OffsetAccessor::read_checked,
// MetadataFacade::get/try_get) lived one release as deprecated shims and
// are now removed; read_provided / fetch are the only spellings.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "softnic/semantics.hpp"

namespace opendesc::rt {

/// Which path produced the value.
enum class Provenance : std::uint8_t {
  nic_path,      ///< constant-time descriptor read (hardware provided it)
  softnic_shim,  ///< recomputed in software from the frame
  unavailable,   ///< neither path could produce it
};

/// Why the NIC path did not serve the read (none when it did).
enum class MissReason : std::uint8_t {
  none,              ///< served from the descriptor
  not_in_layout,     ///< chosen path does not carry this semantic
  record_truncated,  ///< slice would cross the record boundary
  record_invalid,    ///< record failed validation (quarantined)
  completion_lost,   ///< completion never arrived for this packet
  rx_rejected,       ///< device refused the packet at rx
  no_software_impl,  ///< no SoftNIC shim exists (w(s) = infinity)
  frame_unparseable, ///< shim exists but the frame could not be parsed
};

[[nodiscard]] constexpr std::string_view to_string(Provenance p) noexcept {
  switch (p) {
    case Provenance::nic_path:
      return "nic_path";
    case Provenance::softnic_shim:
      return "softnic_shim";
    case Provenance::unavailable:
      return "unavailable";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(MissReason r) noexcept {
  switch (r) {
    case MissReason::none:
      return "none";
    case MissReason::not_in_layout:
      return "not_in_layout";
    case MissReason::record_truncated:
      return "record_truncated";
    case MissReason::record_invalid:
      return "record_invalid";
    case MissReason::completion_lost:
      return "completion_lost";
    case MissReason::rx_rejected:
      return "rx_rejected";
    case MissReason::no_software_impl:
      return "no_software_impl";
    case MissReason::frame_unparseable:
      return "frame_unparseable";
  }
  return "?";
}

/// A value plus where it came from.  Behaves like std::optional (has_value,
/// value, value_or, operator bool) with provenance() and miss_reason()
/// riding along.
template <typename T>
class Provided {
 public:
  [[nodiscard]] static Provided nic(T value) {
    return Provided(std::move(value), Provenance::nic_path, MissReason::none);
  }
  [[nodiscard]] static Provided softnic(T value, MissReason nic_miss) {
    return Provided(std::move(value), Provenance::softnic_shim, nic_miss);
  }
  [[nodiscard]] static Provided missing(MissReason reason) {
    return Provided(T{}, Provenance::unavailable, reason);
  }

  [[nodiscard]] bool has_value() const noexcept {
    return provenance_ != Provenance::unavailable;
  }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  /// Throws Error(semantic) when unavailable.
  [[nodiscard]] const T& value() const {
    if (!has_value()) {
      throw Error(ErrorKind::semantic,
                  "provided: value unavailable (" +
                      std::string(to_string(reason_)) + ")");
    }
    return value_;
  }
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? value_ : std::move(fallback);
  }

  [[nodiscard]] Provenance provenance() const noexcept { return provenance_; }
  /// Why the NIC path missed; `none` iff provenance() == nic_path.
  [[nodiscard]] MissReason miss_reason() const noexcept { return reason_; }
  [[nodiscard]] bool from_hardware() const noexcept {
    return provenance_ == Provenance::nic_path;
  }

  /// Drops provenance — the shape the deprecated wrappers return.
  [[nodiscard]] std::optional<T> to_optional() const {
    return has_value() ? std::optional<T>(value_) : std::nullopt;
  }

 private:
  Provided(T value, Provenance provenance, MissReason reason)
      : value_(std::move(value)), provenance_(provenance), reason_(reason) {}

  T value_{};
  Provenance provenance_ = Provenance::unavailable;
  MissReason reason_ = MissReason::none;
};

/// Per-semantic read totals split by path.
struct PathCounts {
  std::uint64_t nic_path = 0;
  std::uint64_t softnic_shim = 0;
  std::uint64_t unavailable = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return nic_path + softnic_shim + unavailable;
  }
  PathCounts& operator+=(const PathCounts& other) noexcept {
    nic_path += other.nic_path;
    softnic_shim += other.softnic_shim;
    unavailable += other.unavailable;
    return *this;
  }
};

/// Counts, per semantic, how many reads each path served.  Built for the
/// facade hot path: builtins index a flat array, extensions a short
/// linear-scanned vector — the same shape as OffsetAccessor's slot table.
/// Single writer per instance (the thread driving the facade); merge
/// snapshots after the writers quiesce.
class SemanticPathCounters {
 public:
  void count(softnic::SemanticId id, Provenance path) {
    PathCounts& counts = slot(softnic::raw(id));
    switch (path) {
      case Provenance::nic_path:
        ++counts.nic_path;
        break;
      case Provenance::softnic_shim:
        ++counts.softnic_shim;
        break;
      case Provenance::unavailable:
        ++counts.unavailable;
        break;
    }
  }

  [[nodiscard]] PathCounts for_semantic(softnic::SemanticId id) const noexcept {
    const std::uint32_t raw = softnic::raw(id);
    if (raw < softnic::kBuiltinSemanticCount) {
      return builtin_[raw];
    }
    for (const auto& [ext_raw, counts] : extensions_) {
      if (ext_raw == raw) {
        return counts;
      }
    }
    return {};
  }

  /// Sum over every semantic.
  [[nodiscard]] PathCounts total() const noexcept {
    PathCounts sum;
    for (const PathCounts& counts : builtin_) {
      sum += counts;
    }
    for (const auto& [raw, counts] : extensions_) {
      sum += counts;
    }
    return sum;
  }

  /// (raw semantic id, counts) for every semantic with at least one read,
  /// builtins first in id order.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, PathCounts>> snapshot()
      const {
    std::vector<std::pair<std::uint32_t, PathCounts>> out;
    for (std::uint32_t raw = 0; raw < softnic::kBuiltinSemanticCount; ++raw) {
      if (builtin_[raw].total() != 0) {
        out.emplace_back(raw, builtin_[raw]);
      }
    }
    for (const auto& [raw, counts] : extensions_) {
      if (counts.total() != 0) {
        out.emplace_back(raw, counts);
      }
    }
    return out;
  }

  SemanticPathCounters& operator+=(const SemanticPathCounters& other) {
    for (std::uint32_t raw = 0; raw < softnic::kBuiltinSemanticCount; ++raw) {
      builtin_[raw] += other.builtin_[raw];
    }
    for (const auto& [raw, counts] : other.extensions_) {
      slot(raw) += counts;
    }
    return *this;
  }

  /// this - earlier, per semantic — how the engine turns a cumulative
  /// facade counter into a per-run delta.
  [[nodiscard]] SemanticPathCounters since(
      const SemanticPathCounters& earlier) const {
    SemanticPathCounters delta = *this;
    for (std::uint32_t raw = 0; raw < softnic::kBuiltinSemanticCount; ++raw) {
      delta.builtin_[raw].nic_path -= earlier.builtin_[raw].nic_path;
      delta.builtin_[raw].softnic_shim -= earlier.builtin_[raw].softnic_shim;
      delta.builtin_[raw].unavailable -= earlier.builtin_[raw].unavailable;
    }
    for (const auto& [raw, counts] : earlier.extensions_) {
      PathCounts& mine = delta.slot(raw);
      mine.nic_path -= counts.nic_path;
      mine.softnic_shim -= counts.softnic_shim;
      mine.unavailable -= counts.unavailable;
    }
    return delta;
  }

  void clear() noexcept {
    builtin_.fill({});
    extensions_.clear();
  }

 private:
  [[nodiscard]] PathCounts& slot(std::uint32_t raw) {
    if (raw < softnic::kBuiltinSemanticCount) {
      return builtin_[raw];
    }
    for (auto& [ext_raw, counts] : extensions_) {
      if (ext_raw == raw) {
        return counts;
      }
    }
    return extensions_.emplace_back(raw, PathCounts{}).second;
  }

  std::array<PathCounts, softnic::kBuiltinSemanticCount> builtin_{};
  std::vector<std::pair<std::uint32_t, PathCounts>> extensions_;
};

}  // namespace opendesc::rt
