// The host-side metadata facade — the "facade API" of §3.
//
// One facade instance is built per (NIC, intent) compilation: semantics the
// chosen path provides are served by constant-time accessor reads; the rest
// go through SoftNIC shims (reference software implementations), computed
// lazily per packet.  This is the application-visible API generated drivers
// would expose.
#pragma once

#include <optional>

#include "core/compiler.hpp"
#include "runtime/accessor.hpp"
#include "sim/nicsim.hpp"
#include "softnic/compute.hpp"

namespace opendesc::rt {

/// Per-packet lazily-parsed state shared by software fallbacks.
class PacketContext {
 public:
  PacketContext(std::span<const std::uint8_t> record,
                std::span<const std::uint8_t> frame)
      : record_(record), frame_(frame) {}

  explicit PacketContext(const sim::RxEvent& event)
      : PacketContext(event.record, event.frame) {}

  [[nodiscard]] std::span<const std::uint8_t> record() const noexcept {
    return record_;
  }
  [[nodiscard]] std::span<const std::uint8_t> frame() const noexcept {
    return frame_;
  }

  /// Parses the frame on first use and caches the view.
  [[nodiscard]] const net::PacketView& view() const {
    if (!view_) {
      view_ = net::PacketView::parse(frame_);
    }
    return *view_;
  }

 private:
  std::span<const std::uint8_t> record_;
  std::span<const std::uint8_t> frame_;
  mutable std::optional<net::PacketView> view_;
};

/// Intent-tailored metadata access: NIC-provided fields via accessors,
/// missing fields via SoftNIC fallbacks.
class MetadataFacade {
 public:
  /// Builds a facade from a compilation result.  `engine` must outlive the
  /// facade; it services the software fallbacks.
  MetadataFacade(const core::CompileResult& result,
                 const softnic::ComputeEngine& engine);

  /// Direct construction (tests): layout + explicit fallback set.
  MetadataFacade(const core::CompiledLayout& layout,
                 std::vector<core::SoftNicShim> shims,
                 const softnic::ComputeEngine& engine);

  /// The value of `semantic` for this packet.  Constant-time accessor read
  /// when the NIC provides it; otherwise the SoftNIC shim computes it from
  /// the frame (throws Error(semantic) when impossible — should have been
  /// caught at compile time as unsatisfiable).
  [[nodiscard]] std::uint64_t get(const PacketContext& pkt,
                                  softnic::SemanticId semantic) const;

  [[nodiscard]] bool hardware_provided(softnic::SemanticId semantic) const noexcept {
    return accessor_.provides(semantic);
  }
  [[nodiscard]] const OffsetAccessor& accessor() const noexcept { return accessor_; }
  [[nodiscard]] std::size_t record_size() const noexcept {
    return accessor_.record_size();
  }

  /// Number of get() calls served by software fallbacks (telemetry).
  [[nodiscard]] std::uint64_t fallback_calls() const noexcept {
    return fallback_calls_;
  }

 private:
  OffsetAccessor accessor_;
  std::vector<core::SoftNicShim> shims_;
  const softnic::ComputeEngine& engine_;
  mutable std::uint64_t fallback_calls_ = 0;
};

}  // namespace opendesc::rt
