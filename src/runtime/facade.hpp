// The host-side metadata facade — the "facade API" of §3.
//
// One facade instance is built per (NIC, intent) compilation: semantics the
// chosen path provides are served by constant-time accessor reads; the rest
// go through SoftNIC shims (reference software implementations), computed
// lazily per packet.  This is the application-visible API generated drivers
// would expose.
#pragma once

#include <optional>

#include "core/compiler.hpp"
#include "runtime/accessor.hpp"
#include "runtime/provided.hpp"
#include "sim/nicsim.hpp"
#include "softnic/compute.hpp"

namespace opendesc::rt {

/// Per-packet lazily-parsed state shared by software fallbacks.
class PacketContext {
 public:
  PacketContext(std::span<const std::uint8_t> record,
                std::span<const std::uint8_t> frame)
      : record_(record), frame_(frame) {}

  explicit PacketContext(const sim::RxEvent& event)
      : PacketContext(event.record, event.frame) {}

  [[nodiscard]] std::span<const std::uint8_t> record() const noexcept {
    return record_;
  }
  [[nodiscard]] std::span<const std::uint8_t> frame() const noexcept {
    return frame_;
  }

  /// Parses the frame on first use and caches the view.
  [[nodiscard]] const net::PacketView& view() const {
    if (!view_) {
      view_ = net::PacketView::parse(frame_);
    }
    return *view_;
  }

 private:
  std::span<const std::uint8_t> record_;
  std::span<const std::uint8_t> frame_;
  mutable std::optional<net::PacketView> view_;
};

/// Intent-tailored metadata access: NIC-provided fields via accessors,
/// missing fields via SoftNIC fallbacks.
class MetadataFacade {
 public:
  /// Builds a facade from a compilation result.  `engine` must outlive the
  /// facade; it services the software fallbacks.
  MetadataFacade(const core::CompileResult& result,
                 const softnic::ComputeEngine& engine);

  /// Direct construction (tests): layout + explicit fallback set.
  MetadataFacade(const core::CompiledLayout& layout,
                 std::vector<core::SoftNicShim> shims,
                 const softnic::ComputeEngine& engine);

  /// Primary accessor: the value of `semantic` plus its provenance.
  /// Constant-time descriptor read when the chosen path provides it
  /// (nic_path); otherwise the SoftNIC shim recomputes it from the frame
  /// (softnic_shim, with the reason the NIC path missed); unavailable when
  /// neither path can produce it — never throws for missing values.  Every
  /// call counts its path in path_counters(), so per-semantic nic/softnic
  /// totals reconcile exactly with packets processed.
  [[nodiscard]] Provided<std::uint64_t> fetch(
      const PacketContext& pkt, softnic::SemanticId semantic) const;

  /// Software-only fetch for packets whose descriptor record cannot be
  /// trusted (quarantined, completion lost, rx-rejected): skips the
  /// accessor entirely and recomputes from the frame, recording `nic_miss`
  /// as the reason the NIC path was unusable.  Counts in path_counters()
  /// like fetch().
  [[nodiscard]] Provided<std::uint64_t> fetch_software(
      const PacketContext& pkt, softnic::SemanticId semantic,
      MissReason nic_miss) const;

  [[nodiscard]] bool hardware_provided(softnic::SemanticId semantic) const noexcept {
    return accessor_.provides(semantic);
  }
  [[nodiscard]] const OffsetAccessor& accessor() const noexcept { return accessor_; }
  [[nodiscard]] std::size_t record_size() const noexcept {
    return accessor_.record_size();
  }

  /// Per-semantic totals of every fetch, split by the path that served it
  /// (nic_path / softnic_shim / unavailable).  Cumulative over the facade's
  /// lifetime; snapshot and use SemanticPathCounters::since() for per-run
  /// deltas.  Single-threaded like the facade itself.
  [[nodiscard]] const SemanticPathCounters& path_counters() const noexcept {
    return path_counters_;
  }

 private:
  [[nodiscard]] Provided<std::uint64_t> compute_software(
      const PacketContext& pkt, softnic::SemanticId semantic,
      MissReason nic_miss) const;

  OffsetAccessor accessor_;
  std::vector<core::SoftNicShim> shims_;
  const softnic::ComputeEngine& engine_;
  mutable SemanticPathCounters path_counters_;
};

}  // namespace opendesc::rt
