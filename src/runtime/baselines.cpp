#include "runtime/baselines.hpp"

namespace opendesc::rt {

using softnic::SemanticId;

namespace {

/// Software fallback value with host-side context (no NIC state).
std::uint64_t software_value(const softnic::ComputeEngine& engine,
                             const PacketContext& pkt, SemanticId id) {
  const softnic::RxContext host_ctx{};
  if (!engine.can_compute(id)) {
    return 0;  // kernel semantics: absent fields read as zero
  }
  return engine.compute(id, pkt.frame(), pkt.view(), host_ctx);
}

/// Size-limited little-endian dynfield stores/loads.
void store_dynfield(std::uint8_t* p, std::uint64_t v, int size) noexcept {
  for (int i = 0; i < size; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
std::uint64_t load_dynfield(const std::uint8_t* p, int size) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < size; ++i) {
    v |= std::uint64_t{p[i]} << (8 * i);
  }
  return v;
}

/// Hardware-or-software value used by the eager fill paths.
std::uint64_t hw_or_sw(const OffsetAccessor& accessor,
                       const softnic::ComputeEngine& engine,
                       const PacketContext& pkt, SemanticId id) {
  if (accessor.provides(id)) {
    return accessor.read(pkt.record().data(), id);
  }
  return software_value(engine, pkt, id);
}

}  // namespace

// ---------------------------------------------------------------------------
// SkbuffStrategy
// ---------------------------------------------------------------------------

SkbuffStrategy::SkbuffStrategy(const core::CompiledLayout& layout,
                               const softnic::ComputeEngine& engine)
    : accessor_(layout, engine.registry()), engine_(engine) {}

SkbuffStrategy::Meta SkbuffStrategy::fill(const PacketContext& pkt) const {
  // The kernel model: every rx packet gets a fully populated metadata
  // struct, independent of what the application will read.  Header parsing
  // happens eagerly too (eth_type_trans + flow dissector equivalents).
  Meta meta;
  meta.len = static_cast<std::uint32_t>(pkt.frame().size());
  const net::PacketView& view = pkt.view();  // eager parse
  meta.protocol = view.eth().ethertype;

  meta.hash = static_cast<std::uint32_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::rss_hash));
  meta.hash_type = static_cast<std::uint8_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::rss_type));
  meta.ip_csum_ok =
      hw_or_sw(accessor_, engine_, pkt, SemanticId::ip_csum_ok) != 0;
  meta.l4_csum_ok =
      hw_or_sw(accessor_, engine_, pkt, SemanticId::l4_csum_ok) != 0;
  meta.csum = static_cast<std::uint16_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::ip_checksum));
  meta.l4_csum = static_cast<std::uint16_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::l4_checksum));
  meta.vlan_tci = static_cast<std::uint16_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::vlan_tci));
  meta.vlan_present =
      hw_or_sw(accessor_, engine_, pkt, SemanticId::vlan_stripped) != 0;
  meta.timestamp = hw_or_sw(accessor_, engine_, pkt, SemanticId::timestamp);
  meta.mark = static_cast<std::uint32_t>(
      accessor_.provides(SemanticId::mark)
          ? accessor_.read(pkt.record().data(), SemanticId::mark)
          : 0);
  meta.flow_id = static_cast<std::uint32_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::flow_id));
  meta.packet_type = static_cast<std::uint16_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::packet_type));
  meta.ip_id = static_cast<std::uint16_t>(
      hw_or_sw(accessor_, engine_, pkt, SemanticId::ip_id));
  meta.queue = static_cast<std::uint16_t>(
      accessor_.provides(SemanticId::queue_id)
          ? accessor_.read(pkt.record().data(), SemanticId::queue_id)
          : 0);
  meta.seq = static_cast<std::uint32_t>(
      accessor_.provides(SemanticId::seq_no)
          ? accessor_.read(pkt.record().data(), SemanticId::seq_no)
          : 0);
  meta.lro_segs = static_cast<std::uint8_t>(
      accessor_.provides(SemanticId::lro_seg_count)
          ? accessor_.read(pkt.record().data(), SemanticId::lro_seg_count)
          : 1);
  meta.kv_key_hash = static_cast<std::uint32_t>(
      accessor_.provides(SemanticId::kv_key_hash)
          ? accessor_.read(pkt.record().data(), SemanticId::kv_key_hash)
          : 0);
  return meta;
}

std::uint64_t SkbuffStrategy::consume(
    const PacketContext& pkt, std::span<const SemanticId> wanted) {
  const Meta meta = fill(pkt);  // eager, unconditional
  std::uint64_t checksum = 0;
  for (const SemanticId id : wanted) {
    switch (id) {
      case SemanticId::rss_hash: checksum ^= meta.hash; break;
      case SemanticId::rss_type: checksum ^= meta.hash_type; break;
      case SemanticId::ip_csum_ok: checksum ^= meta.ip_csum_ok ? 1 : 0; break;
      case SemanticId::l4_csum_ok: checksum ^= meta.l4_csum_ok ? 1 : 0; break;
      case SemanticId::ip_checksum: checksum ^= meta.csum; break;
      case SemanticId::l4_checksum: checksum ^= meta.l4_csum; break;
      case SemanticId::ip_id: checksum ^= meta.ip_id; break;
      case SemanticId::vlan_tci: checksum ^= meta.vlan_tci; break;
      case SemanticId::vlan_stripped: checksum ^= meta.vlan_present ? 1 : 0; break;
      case SemanticId::timestamp: checksum ^= meta.timestamp; break;
      case SemanticId::flow_id: checksum ^= meta.flow_id; break;
      case SemanticId::packet_type: checksum ^= meta.packet_type; break;
      case SemanticId::pkt_len: checksum ^= meta.len; break;
      case SemanticId::queue_id: checksum ^= meta.queue; break;
      case SemanticId::seq_no: checksum ^= meta.seq; break;
      case SemanticId::mark: checksum ^= meta.mark; break;
      case SemanticId::lro_seg_count: checksum ^= meta.lro_segs; break;
      case SemanticId::kv_key_hash: checksum ^= meta.kv_key_hash; break;
      default: break;  // extension semantics: not part of sk_buff
    }
  }
  return checksum;
}

// ---------------------------------------------------------------------------
// MbufStrategy
// ---------------------------------------------------------------------------

MbufStrategy::MbufStrategy(const core::CompiledLayout& layout,
                           const softnic::ComputeEngine& engine)
    : accessor_(layout, engine.registry()), engine_(engine) {
  // Dynamic-field registrations, mirroring rte_mbuf_dyn: a fixed set of
  // "extra" semantics gets offsets in the 64-byte dynfield area.
  dyn_offsets_.fill(-1);
  dyn_sizes_.fill(0);
  int next = 0;
  const auto reg = [&](SemanticId id, int size) {
    dyn_offsets_[softnic::raw(id)] = static_cast<std::int8_t>(next);
    dyn_sizes_[softnic::raw(id)] = static_cast<std::int8_t>(size);
    next += size;
  };
  reg(SemanticId::timestamp, 8);
  reg(SemanticId::l4_checksum, 2);
  reg(SemanticId::ip_checksum, 2);
  reg(SemanticId::ip_id, 2);
  reg(SemanticId::seq_no, 4);
  reg(SemanticId::queue_id, 2);
  reg(SemanticId::flow_id, 4);
  reg(SemanticId::kv_key_hash, 4);
  reg(SemanticId::rss_type, 1);
  reg(SemanticId::lro_seg_count, 1);
  reg(SemanticId::ip_csum_ok, 1);
  reg(SemanticId::l4_csum_ok, 1);
  reg(SemanticId::vlan_stripped, 1);
}

int MbufStrategy::dyn_offset(SemanticId id) const noexcept {
  const std::uint32_t id_raw = softnic::raw(id);
  if (id_raw >= dyn_offsets_.size()) {
    return -1;
  }
  return dyn_offsets_[id_raw];
}

MbufStrategy::Mbuf MbufStrategy::fill(const PacketContext& pkt) const {
  // The DPDK driver model: copy every provided descriptor field into the
  // mbuf (fixed fields first, dynfields for the rest) and set ol_flags.
  // The per-field conditionals are exactly the "numerous configuration
  // flags" indirection the paper calls a bottleneck.
  Mbuf mbuf;
  mbuf.pkt_len = static_cast<std::uint16_t>(pkt.frame().size());
  mbuf.data_len = mbuf.pkt_len;

  const auto copy_fixed = [&](SemanticId id, auto member, std::uint64_t flag) {
    if (accessor_.provides(id)) {
      *member = static_cast<std::remove_reference_t<decltype(*member)>>(
          accessor_.read(pkt.record().data(), id));
      mbuf.ol_flags |= flag;
    }
  };
  copy_fixed(SemanticId::rss_hash, &mbuf.rss_hash, 1u << 0);
  copy_fixed(SemanticId::vlan_tci, &mbuf.vlan_tci, 1u << 1);
  copy_fixed(SemanticId::flow_id, &mbuf.fdir_id, 1u << 2);
  copy_fixed(SemanticId::mark, &mbuf.mark, 1u << 3);
  copy_fixed(SemanticId::packet_type, &mbuf.packet_type, 1u << 4);

  // Dynfields: one copy + flag per registered semantic the NIC provides.
  for (std::uint32_t id_raw = 0; id_raw < dyn_offsets_.size(); ++id_raw) {
    const int offset = dyn_offsets_[id_raw];
    if (offset < 0) {
      continue;
    }
    const auto id = static_cast<SemanticId>(id_raw);
    if (!accessor_.provides(id)) {
      continue;
    }
    const std::uint64_t value = accessor_.read(pkt.record().data(), id);
    store_dynfield(mbuf.dynfield.data() + offset, value, dyn_sizes_[id_raw]);
    mbuf.ol_flags |= std::uint64_t{1} << (8 + id_raw);
  }
  return mbuf;
}

std::uint64_t MbufStrategy::consume(const PacketContext& pkt,
                                    std::span<const SemanticId> wanted) {
  const Mbuf mbuf = fill(pkt);  // eager driver-side transform
  std::uint64_t checksum = 0;
  for (const SemanticId id : wanted) {
    // Application-side access: flag check, then fixed field / dynfield /
    // software compute — the indirection chain of rte_mbuf_dyn.
    switch (id) {
      case SemanticId::pkt_len: checksum ^= mbuf.pkt_len; continue;
      case SemanticId::rss_hash:
        if (mbuf.ol_flags & (1u << 0)) { checksum ^= mbuf.rss_hash; continue; }
        break;
      case SemanticId::vlan_tci:
        if (mbuf.ol_flags & (1u << 1)) { checksum ^= mbuf.vlan_tci; continue; }
        break;
      case SemanticId::flow_id:
        if (mbuf.ol_flags & (1u << 2)) { checksum ^= mbuf.fdir_id; continue; }
        break;
      case SemanticId::mark:
        if (mbuf.ol_flags & (1u << 3)) { checksum ^= mbuf.mark; continue; }
        break;
      case SemanticId::packet_type:
        if (mbuf.ol_flags & (1u << 4)) { checksum ^= mbuf.packet_type; continue; }
        break;
      default:
        break;
    }
    const int offset = dyn_offset(id);
    const std::uint32_t id_raw = softnic::raw(id);
    if (offset >= 0 && id_raw < 56 &&
        (mbuf.ol_flags & (std::uint64_t{1} << (8 + id_raw)))) {
      checksum ^= load_dynfield(mbuf.dynfield.data() + offset, dyn_sizes_[id_raw]);
      continue;
    }
    checksum ^= software_value(engine_, pkt, id);
  }
  return checksum;
}

// ---------------------------------------------------------------------------
// RawStrategy
// ---------------------------------------------------------------------------

std::uint64_t RawStrategy::consume(const PacketContext& pkt,
                                   std::span<const SemanticId> wanted) {
  std::uint64_t checksum = 0;
  for (const SemanticId id : wanted) {
    if (id == SemanticId::pkt_len) {
      checksum ^= pkt.frame().size();  // length is the one thing netmap has
      continue;
    }
    checksum ^= software_value(engine_, pkt, id);
  }
  return checksum;
}

// ---------------------------------------------------------------------------
// OpenDescStrategy
// ---------------------------------------------------------------------------

std::uint64_t OpenDescStrategy::consume(const PacketContext& pkt,
                                        std::span<const SemanticId> wanted) {
  std::uint64_t checksum = 0;
  for (const SemanticId id : wanted) {
    // fetch() never throws for missing values; unavailable reads fold as 0
    // and show up in the facade's path counters as `unavailable`.
    checksum ^= facade_.fetch(pkt, id).value_or(0);
  }
  return checksum;
}

}  // namespace opendesc::rt
