// Receive-loop driver: pushes a synthetic workload through a simulated NIC
// and processes completions with a chosen host datapath strategy.  Shared by
// the integration tests, the examples, and every throughput-shaped bench.
#pragma once

#include "net/workload.hpp"
#include "runtime/baselines.hpp"
#include "sim/nicsim.hpp"

namespace opendesc::rt {

struct RxLoopStats {
  std::uint64_t packets = 0;
  std::uint64_t drops = 0;
  std::uint64_t value_checksum = 0;  ///< xor-fold of consumed metadata
  double host_ns = 0.0;              ///< host-side processing time
  std::uint64_t completion_bytes = 0;
  std::uint64_t frame_bytes = 0;

  // Per-cause breakdown of device-side drops (mirrors sim::DmaAccounting).
  std::uint64_t drops_ring_full = 0;
  std::uint64_t drops_pool_exhausted = 0;
  std::uint64_t drops_oversize = 0;

  // Hardened-datapath counters (populated by the ValidatingRxLoop; zero for
  // the plain loop).  packets = hw_consumed + softnic_recovered.
  std::uint64_t hw_consumed = 0;        ///< records that passed validation
  std::uint64_t quarantined = 0;        ///< malformed records dead-lettered
  std::uint64_t softnic_recovered = 0;  ///< packets recovered in software
  std::uint64_t lost_completions = 0;   ///< accepted by rx(), never completed
  std::uint64_t rx_rejected = 0;        ///< rx() returned false (backpressure)
  std::uint64_t unrecoverable_values = 0;  ///< wanted semantics w(s) = inf

  [[nodiscard]] double ns_per_packet() const noexcept {
    return packets == 0 ? 0.0 : host_ns / static_cast<double>(packets);
  }
  [[nodiscard]] double packets_per_second() const noexcept {
    const double ns = ns_per_packet();
    return ns <= 0.0 ? 0.0 : 1e9 / ns;
  }
  /// Fraction of offered packets whose semantics were delivered through
  /// either path (goodput under fault).
  [[nodiscard]] double delivery_ratio(std::uint64_t offered) const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(packets) /
                              static_cast<double>(offered);
  }

  /// Merges another loop's (e.g. another queue's) stats into this one.
  /// Counters and host_ns are *totals*, so they add — which is exactly what
  /// makes the derived rates weight by per-queue packet counts:
  /// merged ns_per_packet == sum(host_ns) / sum(packets), never the naive
  /// mean of per-queue averages, and merged delivery_ratio(offered) divides
  /// total delivered packets by total offered.  value_checksum xor-folds,
  /// matching the per-packet fold, so an aggregate over any sharding of the
  /// same trace reproduces the single-queue checksum.
  RxLoopStats& operator+=(const RxLoopStats& other) noexcept;
};

[[nodiscard]] inline RxLoopStats operator+(RxLoopStats lhs,
                                           const RxLoopStats& rhs) noexcept {
  lhs += rhs;
  return lhs;
}

/// Per-thread CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID).  The
/// sharded loops time their host-side consume sections with this clock so a
/// worker's host_ns measures the work *its* shard performed even when more
/// workers than cores are runnable — preemption by sibling shards does not
/// inflate the measurement the way a wall clock would.
[[nodiscard]] double thread_cpu_now_ns() noexcept;

struct RxLoopConfig {
  std::size_t packet_count = 10000;
  std::size_t batch = 32;
};

/// Runs the loop: per batch, inject packets on the NIC side, poll, consume
/// each completion with `strategy` for the `wanted` semantics, advance.
/// Only the host-side consume portion is timed.
[[nodiscard]] RxLoopStats run_rx_loop(sim::NicSimulator& nic,
                                      net::WorkloadGenerator& workload,
                                      RxStrategy& strategy,
                                      std::span<const softnic::SemanticId> wanted,
                                      const RxLoopConfig& config = {});

}  // namespace opendesc::rt
