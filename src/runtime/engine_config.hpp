// rt::EngineConfig — the one configuration type for the host datapath.
//
// Before this header, ValidatingRxLoop and MultiQueueEngine grew divergent
// ad-hoc constructor argument lists (GuardConfig here, queue counts there,
// fault knobs in a third place).  EngineConfig unifies them: a single plain
// struct covering queues, batching, steering, fault injection, quarantine
// and the telemetry sink, consumed by both the single-queue hardened loop
// (which reads the per-queue subset) and the multi-queue engine (which
// reads all of it).  Fields stay public for aggregate-style setup; the
// fluent with_*() methods chain for one-expression construction:
//
//   auto config = rt::EngineConfig{}
//                     .with_queues(4)
//                     .with_fault_rate(0.01, /*seed=*/7)
//                     .with_telemetry(&sink);
#pragma once

#include <cstdint>
#include <string>

#include "sim/nicsim.hpp"

namespace opendesc::telemetry {
class Sink;  // full definition only needed by code that sets/uses a sink
}  // namespace opendesc::telemetry

namespace opendesc::rt {

struct EngineConfig {
  std::size_t queues = 1;
  std::size_t batch = 32;          ///< rx burst + completion batch per shard
  bool pin = false;                ///< pin worker q to CPU (q mod cores)
  std::size_t spsc_capacity = 1024;///< handoff ring entries per queue
  std::size_t rss_table_size = 128;
  bool guard = false;              ///< seal records with the integrity tag
  double fault_rate = 0.0;         ///< composite per-queue injection rate
  std::uint64_t fault_seed = 1;    ///< base seed; queue q derives its own
  sim::SimConfig sim;              ///< per-queue device template (queue_id is
                                   ///< overridden with the queue index)
  std::size_t quarantine_capacity = 64;  ///< dead letters kept per shard
  telemetry::Sink* telemetry = nullptr;  ///< null = telemetry off
  /// Non-empty = embed the observability HTTP server ("host:port", ":port"
  /// or "port"; port 0 binds an ephemeral port).  When no sink is attached
  /// the engine creates its own so the server always has data to serve.
  std::string listen;
  /// SLO rules document (health.hpp grammar).  Non-empty activates the
  /// health monitor: sampler thread, time-series store and rule engine.
  std::string health_rules;
  /// Force the health monitor on even with no rules and no server (the
  /// time-series windows still populate and /timeseries-style queries work
  /// through MultiQueueEngine::timeseries()).
  bool monitor = false;
  /// Sampler tick in milliseconds; 0 disables the monitor entirely.
  std::size_t sample_interval_ms = 100;
  /// Ticks retained per series (default 600 = 60 s at the 100 ms tick).
  std::size_t timeseries_capacity = 600;
  /// Auto-swap cadence: every `swap_every` offered packets the dispatch
  /// thread hot-swaps to the next compilation in the engine's swap cycle
  /// (see MultiQueueEngine::set_swap_cycle).  0 disables auto-swapping;
  /// explicit request_swap() orders work either way.
  std::size_t swap_every = 0;
  /// Target concurrent-flow capacity.  >0 builds an engine-owned
  /// flow::FlowTable with one shard per queue; each rx worker records the
  /// packets it consumes against the NIC-provided flow key, shard-locally
  /// and lock-free.  0 disables flow tracking.
  std::size_t flows = 0;
  /// Idle-expiry timeout for tracked flows, against the workload's packet
  /// timestamps.  0 = flows only leave by LRU eviction.
  std::uint64_t flow_idle_ns = 0;
  /// Tenant label stamped on this engine's flow/goodput metric families.
  std::string tenant = "default";
  /// Non-empty enables authenticated POST /layout on the embedded server:
  /// a request carrying "Authorization: Bearer <swap_token>" queues a live
  /// layout swap from the engine's swap cycle.  Empty = the route answers
  /// 403.  Only meaningful together with `listen`.
  std::string swap_token;
  /// Drive the sink's cycle-accounting profiler (telemetry::Profiler) from
  /// every datapath thread.  On by default — sampling is batch-amortized
  /// with an auto-tuned stride, so steady-state overhead stays under the
  /// profiler's 3% target.  Meaningless without a telemetry sink.
  bool profile = true;
  /// Fixed profiler sampling stride (time every Nth batch); 0 = auto-tune.
  std::size_t profile_stride = 0;
  /// Causal tracing cadence: head-sample 1-in-N packets at TX post and
  /// record their full lifecycle as spans (telemetry::SpanRing).  0 = off
  /// (the default); nonzero is rounded up to a power of two and clamped
  /// like the profiler stride.  Meaningless without a telemetry sink.
  std::size_t trace_sample = 0;

  // Fluent builder surface -- each setter returns *this so configurations
  // compose in one expression.
  EngineConfig& with_queues(std::size_t n) {
    queues = n;
    return *this;
  }
  EngineConfig& with_batch(std::size_t n) {
    batch = n;
    return *this;
  }
  EngineConfig& with_pinning(bool enabled = true) {
    pin = enabled;
    return *this;
  }
  EngineConfig& with_spsc_capacity(std::size_t entries) {
    spsc_capacity = entries;
    return *this;
  }
  EngineConfig& with_rss_table_size(std::size_t entries) {
    rss_table_size = entries;
    return *this;
  }
  EngineConfig& with_guard(bool enabled = true) {
    guard = enabled;
    return *this;
  }
  EngineConfig& with_fault_rate(double rate, std::uint64_t seed = 1) {
    fault_rate = rate;
    fault_seed = seed;
    return *this;
  }
  EngineConfig& with_sim(const sim::SimConfig& config) {
    sim = config;
    return *this;
  }
  EngineConfig& with_quarantine_capacity(std::size_t capacity) {
    quarantine_capacity = capacity;
    return *this;
  }
  EngineConfig& with_telemetry(telemetry::Sink* sink) {
    telemetry = sink;
    return *this;
  }
  EngineConfig& with_server(std::string address) {
    listen = std::move(address);
    return *this;
  }
  EngineConfig& with_health_rules(std::string rules_text) {
    health_rules = std::move(rules_text);
    return *this;
  }
  EngineConfig& with_monitor(bool enabled = true) {
    monitor = enabled;
    return *this;
  }
  EngineConfig& with_sample_interval(std::size_t milliseconds) {
    sample_interval_ms = milliseconds;
    return *this;
  }
  EngineConfig& with_timeseries_capacity(std::size_t ticks) {
    timeseries_capacity = ticks;
    return *this;
  }
  EngineConfig& with_swap_every(std::size_t offered_packets) {
    swap_every = offered_packets;
    return *this;
  }
  EngineConfig& with_flows(std::size_t target_flows) {
    flows = target_flows;
    return *this;
  }
  EngineConfig& with_flow_idle(std::uint64_t timeout_ns) {
    flow_idle_ns = timeout_ns;
    return *this;
  }
  EngineConfig& with_tenant(std::string name) {
    tenant = std::move(name);
    return *this;
  }
  EngineConfig& with_swap_token(std::string token) {
    swap_token = std::move(token);
    return *this;
  }
  EngineConfig& with_profiler(bool enabled = true) {
    profile = enabled;
    return *this;
  }
  EngineConfig& with_profile_stride(std::size_t stride) {
    profile_stride = stride;
    return *this;
  }
  EngineConfig& with_trace_sample(std::size_t one_in_n) {
    trace_sample = one_in_n;
    return *this;
  }
};

}  // namespace opendesc::rt
