#include "runtime/guard.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"

namespace opendesc::rt {

std::string_view to_string(RecordVerdict verdict) noexcept {
  switch (verdict) {
    case RecordVerdict::ok:
      return "ok";
    case RecordVerdict::truncated:
      return "truncated";
    case RecordVerdict::bad_fixed_field:
      return "bad_fixed_field";
    case RecordVerdict::bad_guard_tag:
      return "bad_guard_tag";
  }
  return "?";
}

RecordGuard::RecordGuard(const core::CompiledLayout& wire_layout,
                         GuardConfig config)
    : layout_(&wire_layout), config_(config) {
  for (std::size_t i = 0; i < wire_layout.slices().size(); ++i) {
    if (wire_layout.slices()[i].fixed_value) {
      fixed_slices_.push_back(i);
    }
  }
}

RecordVerdict RecordGuard::validate(std::span<const std::uint8_t> record,
                                    std::span<const std::uint8_t> frame) const {
  if (record.size() < layout_->total_bytes()) {
    return RecordVerdict::truncated;
  }
  if (config_.check_fixed_fields) {
    for (const std::size_t index : fixed_slices_) {
      if (layout_->read_slice(record, index) !=
          *layout_->slices()[index].fixed_value) {
        return RecordVerdict::bad_fixed_field;
      }
    }
  }
  if (config_.check_guard_tag && !layout_->verify_guard(record, frame)) {
    return RecordVerdict::bad_guard_tag;
  }
  return RecordVerdict::ok;
}

void DeadLetterBuffer::reserve_slots(std::size_t record_bytes,
                                     std::size_t frame_bytes) {
  free_.reserve(capacity_ + free_.size());
  for (std::size_t i = 0; i < capacity_; ++i) {
    QuarantinedRecord slot;
    slot.record.reserve(record_bytes);
    slot.frame_head.reserve(frame_bytes);
    free_.push_back(std::move(slot));
  }
}

QuarantinedRecord DeadLetterBuffer::take_slot() {
  if (free_.empty()) {
    return {};
  }
  QuarantinedRecord slot = std::move(free_.back());
  free_.pop_back();
  return slot;
}

void DeadLetterBuffer::evict_over_capacity() {
  while (entries_.size() > capacity_) {
    // Recycle the evicted entry's storage into the pool: its vectors keep
    // their capacity, so the next push copies without allocating.
    free_.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
}

void DeadLetterBuffer::push(QuarantinedRecord letter) {
  ++total_;
  ++by_reason_[static_cast<std::size_t>(letter.reason)];
  entries_.push_back(std::move(letter));
  evict_over_capacity();
}

void DeadLetterBuffer::push(std::span<const std::uint8_t> record,
                            std::span<const std::uint8_t> frame_head,
                            RecordVerdict reason, std::uint64_t sequence) {
  QuarantinedRecord letter = take_slot();
  letter.record.assign(record.begin(), record.end());
  letter.frame_head.assign(frame_head.begin(), frame_head.end());
  letter.reason = reason;
  letter.sequence = sequence;
  push(std::move(letter));
}

void DeadLetterBuffer::clear() {
  while (!entries_.empty()) {
    free_.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  total_ = 0;
  by_reason_.fill(0);
}

ProgramReport program_with_verify(sim::ProgrammableNic& nic,
                                  const p4::ConstEnv& assignment,
                                  const RetryPolicy& policy,
                                  std::string_view expect_path_id,
                                  telemetry::Sink* sink) {
  ProgramReport report;
  double backoff = policy.backoff_base_ns;
  std::vector<std::string> issues;
  std::uint64_t trace_seq = 0;
  const auto ctrl_trace = [&](telemetry::TraceEventType type,
                              std::uint8_t detail) {
    if (sink != nullptr) {
      sink->ctrl_ring().record({type, detail, 0, 0, trace_seq++});
    }
  };
  const auto publish_attempts = [&] {
    if (sink != nullptr) {
      sink->registry()
          .counter("opendesc_ctrl_program_attempts_total",
                   "Control-channel programming attempts (1 = stuck first try)")
          .add(report.attempts);
      sink->registry()
          .counter("opendesc_ctrl_program_retries_total",
                   "Control-channel reprogram retries after failed readback")
          .add(report.attempts - 1);
    }
  };

  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    report.attempts = attempt;
    issues.clear();

    // Re-quiesce: the device rejects reprogramming with completions pending,
    // and a retry may race freshly delayed completions.  Delayed doorbells
    // surface only on later polls, so keep polling until the queue is empty.
    std::vector<sim::RxEvent> events(32);
    while (nic.pending() > 0) {
      nic.advance(nic.poll(events));
    }

    nic.program(assignment);

    // Verify-after-write, step 1: read every register back.
    issues = nic.registers().mismatches(assignment);

    // Step 2: the registers must select exactly one path (and the expected
    // one, when the caller knows which).  active_layout() throws on
    // zero/ambiguous selection — a partially-applied assignment.
    if (issues.empty()) {
      try {
        const std::string& selected = nic.active_path_id();
        if (expect_path_id.empty() || selected == expect_path_id) {
          report.verified_path_id = selected;
          ctrl_trace(telemetry::TraceEventType::ctrl_programmed,
                     static_cast<std::uint8_t>(
                         attempt > 0xFF ? 0xFF : attempt));
          publish_attempts();
          return report;
        }
        issues.push_back("selected path '" + selected + "', expected '" +
                         std::string(expect_path_id) + "'");
      } catch (const Error& err) {
        issues.emplace_back(err.what());
      }
    }

    // Back off (simulated — accounted, not slept) and retry.
    ctrl_trace(telemetry::TraceEventType::ctrl_retry,
               static_cast<std::uint8_t>(attempt > 0xFF ? 0xFF : attempt));
    report.backoff_ns += backoff;
    backoff *= policy.backoff_multiplier;
  }
  publish_attempts();
  if (sink != nullptr) {
    telemetry::FlightIncident incident;
    incident.cause = telemetry::FlightCause::ctrl_retry_exhausted;
    incident.detail = static_cast<std::uint8_t>(
        policy.max_attempts > 0xFF ? 0xFF : policy.max_attempts);
    incident.layout_id = std::string(expect_path_id);
    incident.trace_id = sink->last_trace_id();  // nearest sampled packet
    incident.recent = sink->ctrl_ring().tail(sink->flight().context_events());
    sink->flight().record(std::move(incident));
  }

  std::string detail;
  for (const std::string& issue : issues) {
    detail += detail.empty() ? issue : "; " + issue;
  }
  throw Error(ErrorKind::device,
              "control-channel programming failed verification after " +
                  std::to_string(policy.max_attempts) + " attempts" +
                  (detail.empty() ? "" : ": " + detail));
}

namespace {

GuardConfig guard_config_from(const EngineConfig& config, std::size_t queue) {
  GuardConfig out;
  out.queue_id = static_cast<std::uint16_t>(queue);
  out.quarantine_capacity = config.quarantine_capacity;
  return out;
}

}  // namespace

ValidatingRxLoop::ValidatingRxLoop(const core::CompiledLayout& wire_layout,
                                   const softnic::ComputeEngine& engine,
                                   GuardConfig config)
    : guard_(wire_layout, config), engine_(&engine),
      dead_letters_(config.quarantine_capacity) {
  // Arena-style preallocation: each worker shard owns one loop, so every
  // dead-letter slot's storage is carved out up front and recycled — no
  // allocator traffic from the hot path under fault storms.
  dead_letters_.reserve_slots(wire_layout.total_bytes(),
                              config.frame_capture_bytes);
}

ValidatingRxLoop::ValidatingRxLoop(const core::CompiledLayout& wire_layout,
                                   const softnic::ComputeEngine& engine,
                                   const EngineConfig& config,
                                   std::size_t queue)
    : ValidatingRxLoop(wire_layout, engine, guard_config_from(config, queue)) {
  set_telemetry(config.telemetry, queue);
  if (!config.profile) {
    set_profile(nullptr);
  } else if (config.telemetry != nullptr && config.profile_stride > 0) {
    config.telemetry->profiler().set_stride(config.profile_stride);
  }
}

void ValidatingRxLoop::cut_over(const core::CompiledLayout& wire_layout,
                                std::uint32_t epoch) {
  // The caller (engine worker at a swap barrier) has already drained the
  // device against the old layout; nothing in-flight references the old
  // guard, so reseating it is a plain reassignment.
  guard_ = RecordGuard(wire_layout, guard_.config());
  dead_letters_.reserve_slots(wire_layout.total_bytes(),
                              guard_.config().frame_capture_bytes);
  trace(telemetry::TraceEventType::layout_cutover, 0, epoch);
  if (profile_shard_ != nullptr) {
    // Epoch attribution boundary: everything accounted so far flushes to
    // the outgoing epoch; subsequent spans charge the incoming one.
    profile_shard_->set_epoch(epoch);
  }
  if (span_ring_ != nullptr) {
    // Lifecycle spans recorded after this point executed under the new
    // layout; the ring stamps them accordingly.
    span_ring_->set_epoch(epoch);
  }
}

void ValidatingRxLoop::set_telemetry(telemetry::Sink* sink, std::size_t queue) {
  sink_ = sink;
  queue_ = static_cast<std::uint16_t>(queue);
  if (sink == nullptr) {
    trace_ring_ = nullptr;
    latency_shard_ = nullptr;
    stage_shards_.fill(nullptr);
    profile_shard_ = nullptr;
    span_ring_ = nullptr;
    latency_hist_ = nullptr;
    stage_hists_.fill(nullptr);
    return;
  }
  // Resolve the single-writer endpoints once; the hot loop then pays one
  // null check per use, never a registry lookup.
  trace_ring_ = &sink->ring(queue);
  latency_shard_ = &sink->batch_latency_shard(queue);
  // This loop's worker owns the ring/validate/consume stages of its queue;
  // steer and handoff belong to the dispatch thread.
  for (const telemetry::Stage stage :
       {telemetry::Stage::ring, telemetry::Stage::validate,
        telemetry::Stage::consume}) {
    stage_shards_[static_cast<std::size_t>(stage)] =
        &sink->stage_shard(stage, queue);
    stage_hists_[static_cast<std::size_t>(stage)] =
        &sink->stage_latency_hist(stage);
  }
  // Causal tracing endpoints: this worker's span ring plus the histograms
  // exemplars attach to.  Always resolved — recording still costs nothing
  // until a sampled packet (trace_id != 0) actually arrives.
  span_ring_ = queue < sink->queues() ? &sink->span_ring(queue) : nullptr;
  latency_hist_ = &sink->batch_latency_hist();
  // Profiler lane: on by default whenever telemetry is attached; callers
  // that want spans without cycle accounting detach via set_profile(nullptr).
  profile_shard_ = queue < sink->profiler().shards()
                       ? &sink->profile_shard(queue)
                       : nullptr;
}

void ValidatingRxLoop::flight_capture(telemetry::FlightCause cause,
                                      std::uint8_t detail,
                                      std::span<const std::uint8_t> record,
                                      std::span<const std::uint8_t> frame_head,
                                      std::uint64_t trace_id) {
  if (sink_ == nullptr) {
    return;
  }
  telemetry::FlightIncident incident;
  incident.cause = cause;
  incident.queue = queue_;
  incident.detail = detail;
  incident.sequence = sequence_;
  incident.trace_id = trace_id != 0 ? trace_id
                      : span_ring_ != nullptr ? span_ring_->last_trace_id()
                                              : 0;
  incident.layout_id =
      guard_.layout().nic_name() + "/" + guard_.layout().path_id();
  incident.record.assign(record.begin(), record.end());
  incident.frame_head.assign(frame_head.begin(), frame_head.end());
  if (trace_ring_ != nullptr) {
    incident.recent = trace_ring_->tail(sink_->flight().context_events());
  }
  sink_->flight().record(std::move(incident));
}

std::uint64_t ValidatingRxLoop::software_fold(
    const net::Packet& packet, std::span<const softnic::SemanticId> wanted,
    RxLoopStats& stats, MissReason nic_miss) {
  std::optional<net::PacketView> view;
  try {
    view.emplace(net::PacketView::parse(packet.bytes()));
  } catch (const std::exception&) {
    // Unparseable frame: nothing can be recovered for it.
    stats.unrecoverable_values += wanted.size();
    for (const softnic::SemanticId id : wanted) {
      recovery_paths_.count(id, Provenance::unavailable);
    }
    return 0;
  }

  // Mirror what a fault-free hardware run would have delivered so the value
  // checksum matches the golden run: semantics the layout provides are
  // recomputed with the *device* context (hardware timestamp, queue id) and
  // masked to the slice width, the rest with the *host* fallback context —
  // exactly what MetadataFacade would have produced.
  softnic::RxContext device_ctx;
  device_ctx.queue_id = guard_.config().queue_id;
  device_ctx.rx_timestamp_ns = packet.rx_timestamp_ns;
  const softnic::RxContext host_ctx;

  const core::CompiledLayout& layout = guard_.layout();
  const bool traced = span_ring_ != nullptr && packet.trace_id != 0;
  std::uint64_t fold = 0;
  for (const softnic::SemanticId id : wanted) {
    const core::FieldSlice* slice = layout.find(id);
    const softnic::RxContext& ctx = slice != nullptr ? device_ctx : host_ctx;
    if (!engine_->can_compute(id)) {
      // w(s) = ∞: no software equivalent exists (e.g. mark, lro_seg_count
      // when NIC state is gone with the record).
      ++stats.unrecoverable_values;
      recovery_paths_.count(id, Provenance::unavailable);
      continue;
    }
    const double t0 = traced ? telemetry::profile_now_ns() : 0.0;
    try {
      std::uint64_t value = engine_->compute(id, packet.bytes(), *view, ctx);
      if (slice != nullptr && slice->bit_width < 64) {
        value &= (std::uint64_t{1} << slice->bit_width) - 1;
      }
      fold ^= value;
      recovery_paths_.count(id, Provenance::softnic_shim);
      trace(telemetry::TraceEventType::softnic_fallback,
            static_cast<std::uint8_t>(nic_miss), softnic::raw(id));
      if (traced) {
        // One child span per semantic recovered in software (detail = the
        // raw semantic id), parented on the preceding pipeline span.
        span_ring_->record(telemetry::SpanStage::softnic, packet.trace_id, t0,
                           telemetry::profile_now_ns() - t0,
                           static_cast<std::uint8_t>(softnic::raw(id)));
      }
    } catch (const std::exception&) {
      ++stats.unrecoverable_values;
      recovery_paths_.count(id, Provenance::unavailable);
    }
  }
  return fold;
}

void ValidatingRxLoop::recover_lost(const net::Packet& packet,
                                    std::span<const softnic::SemanticId> wanted,
                                    RxLoopStats& stats, MissReason reason) {
  if (reason == MissReason::completion_lost) {
    trace(telemetry::TraceEventType::completion_lost);
    const std::size_t head =
        std::min<std::size_t>(guard_.config().frame_capture_bytes,
                              packet.data.size());
    flight_capture(telemetry::FlightCause::completion_lost, 0, {},
                   std::span<const std::uint8_t>(packet.data).first(head),
                   packet.trace_id);
  }
  stats.value_checksum ^= software_fold(packet, wanted, stats, reason);
  ++stats.lost_completions;
  ++stats.softnic_recovered;
  ++stats.packets;
}

void ValidatingRxLoop::validate_events(
    std::span<const sim::RxEvent> events, std::size_t n,
    std::vector<RecordVerdict>& verdicts) const {
  verdicts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool traced = span_ring_ != nullptr && events[i].trace_id != 0;
    const double t0 = traced ? telemetry::profile_now_ns() : 0.0;
    verdicts[i] = guard_.validate(events[i].record, events[i].frame);
    if (traced) {
      span_ring_->record(telemetry::SpanStage::validate, events[i].trace_id,
                         t0, telemetry::profile_now_ns() - t0,
                         static_cast<std::uint8_t>(verdicts[i]));
    }
  }
}

void ValidatingRxLoop::consume_events(std::span<const sim::RxEvent> events,
                                      std::size_t n,
                                      std::span<const RecordVerdict> verdicts,
                                      std::deque<net::Packet>& pending,
                                      RxStrategy& strategy,
                                      std::span<const softnic::SemanticId> wanted,
                                      RxLoopStats& stats) {
  std::uint32_t validated_in_batch = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const sim::RxEvent& ev = events[i];

    // Re-align against the in-flight FIFO.  Completions are delivered in
    // acceptance order, and frames DMA verbatim — so any accepted packet
    // whose frame precedes this event's frame lost its completion in the
    // device.  Recover it in software and move on.
    while (!pending.empty() &&
           !std::equal(pending.front().data.begin(), pending.front().data.end(),
                       ev.frame.begin(), ev.frame.end())) {
      recover_lost(pending.front(), wanted, stats);
      pending.pop_front();
    }
    const net::Packet* origin = pending.empty() ? nullptr : &pending.front();

    ++sequence_;
    const bool traced = span_ring_ != nullptr && ev.trace_id != 0;
    const double t0 = traced ? telemetry::profile_now_ns() : 0.0;
    if (traced) {
      span_batch_trace_ = ev.trace_id;
    }
    const RecordVerdict verdict = verdicts[i];
    if (verdict == RecordVerdict::ok) {
      // Happy-path validations aggregate into one event per batch (below):
      // a per-packet ring write would tax the hot path for an event whose
      // only payload is its count.  Anomalies still trace individually.
      ++validated_in_batch;
      const PacketContext pkt(ev);
      stats.value_checksum ^= strategy.consume(pkt, wanted);
      ++stats.hw_consumed;
      ++stats.packets;
    } else {
      // Quarantine the malformed record, then deliver the packet's
      // semantics anyway from the bytes we still trust: the DMA'd frame
      // (plus the origin packet's receive context when we have it).
      const std::size_t head =
          std::min(guard_.config().frame_capture_bytes, ev.frame.size());
      dead_letters_.push(ev.record, ev.frame.first(head), verdict, sequence_);
      ++stats.quarantined;
      trace(telemetry::TraceEventType::record_quarantined,
            static_cast<std::uint8_t>(verdict));
      flight_capture(telemetry::FlightCause::record_quarantined,
                     static_cast<std::uint8_t>(verdict), ev.record,
                     ev.frame.first(head), ev.trace_id);
      if (traced) {
        // Terminal span: the record was dead-lettered (detail = verdict).
        // The softnic recovery below still adds child spans — the trace
        // shows both the rejection and the software path that saved it.
        span_ring_->record(telemetry::SpanStage::quarantine, ev.trace_id, t0,
                           0.0, static_cast<std::uint8_t>(verdict));
      }

      if (origin != nullptr) {
        stats.value_checksum ^=
            software_fold(*origin, wanted, stats, MissReason::record_invalid);
      } else {
        net::Packet synthetic;
        synthetic.data.assign(ev.frame.begin(), ev.frame.end());
        synthetic.trace_id = ev.trace_id;
        stats.value_checksum ^=
            software_fold(synthetic, wanted, stats, MissReason::record_invalid);
      }
      ++stats.softnic_recovered;
      ++stats.packets;
    }
    if (traced) {
      span_ring_->record(telemetry::SpanStage::consume, ev.trace_id, t0,
                         telemetry::profile_now_ns() - t0);
    }

    if (origin != nullptr) {
      pending.pop_front();
    }
  }
  if (validated_in_batch != 0) {
    trace(telemetry::TraceEventType::record_validated, 0, validated_in_batch);
  }
}

}  // namespace opendesc::rt
