// Live layout evolution: epoch/RCU-style hot-swap of the compiled
// completion-record contract on a running engine.
//
// The paper's "evolvable" claim is that a changed NIC description or
// application intent recompiles (Eq. 1) and redeploys *without taking the
// datapath down*.  The LayoutEpochManager is that capability's control
// plane: it holds refcounted (epoch, CompiledLayout, accessor table)
// generations, verifies a candidate generation against a live
// ProgrammableNic control channel (readback + bounded backoff via
// program_with_verify, plus a sealed-record guard probe), and either
// installs it as the new current epoch or rolls back to the previous one —
// a failed swap leaves the engine exactly where it was, never wedged.
//
// The cutover itself is cooperative: the engine's dispatch thread pushes a
// barrier over each queue's SPSC handoff ring; every ValidatingRxLoop
// worker drains its in-flight completions against the *old* epoch's
// accessors, contributes the segment's accounting to the manager, swaps its
// simulator and guard onto the new layout, and releases the old epoch.  A
// generation's storage is reclaimed when the last queue drops its
// reference; the manager keeps only the per-epoch accounting and the swap
// history (served on /layout).
//
// Thread model: attempt_swap runs on the dispatch thread; contribute() and
// release() run on worker threads at segment boundaries (never per
// packet); current()/to_json() may run concurrently from HTTP workers.
// One mutex serializes them all — every call site is off the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiler.hpp"
#include "runtime/baselines.hpp"
#include "runtime/guard.hpp"
#include "runtime/rxloop.hpp"
#include "sim/faults.hpp"

namespace opendesc::rt {

/// One installed layout generation.  Workers hold a shared_ptr each — the
/// refcount *is* the epoch's liveness: when the last queue releases its
/// reference after cutting over, the generation (layout, per-queue accessor
/// tables, compile artifacts) is reclaimed.
struct EpochGeneration {
  std::uint64_t epoch = 0;
  /// Owning handle for swapped-in compilations; null for the bootstrap
  /// generation, whose CompileResult the engine's caller keeps alive.
  std::shared_ptr<const core::CompileResult> owned;
  const core::CompileResult* result = nullptr;
  core::CompiledLayout wire_layout;  ///< guarded when the engine guards
  /// Per-queue accessor tables (facade + path counters); queue q's worker
  /// is the only thread touching strategies[q].
  std::vector<std::unique_ptr<OpenDescStrategy>> strategies;
  std::vector<softnic::SemanticId> wanted;
};

enum class SwapOutcome : std::uint8_t { committed, rolled_back };

[[nodiscard]] std::string_view to_string(SwapOutcome outcome) noexcept;

/// A hot-swap order: the compilation to cut over to, the control-channel
/// retry budget, an optional fault configuration for the control-plane NIC
/// (tests inject deterministic swap failures through it), and the offered-
/// packet threshold of the current run after which the dispatch thread
/// applies the request.
struct SwapRequest {
  std::shared_ptr<const core::CompileResult> result;
  RetryPolicy retry{};
  /// Faults injected on the per-swap control-plane NIC (dropped / partial
  /// register writes, record faults against the guard probe).  nullopt = a
  /// healthy control channel.
  std::optional<sim::FaultConfig> ctrl_faults;
  std::uint64_t at_offered = 0;  ///< apply once this many packets steered
};

/// One swap attempt, as kept in the manager's history (and on /layout).
struct SwapRecord {
  std::uint64_t from_epoch = 0;
  std::uint64_t to_epoch = 0;  ///< the epoch the attempt targeted
  SwapOutcome outcome = SwapOutcome::rolled_back;
  std::size_t attempts = 0;   ///< control-channel programming attempts
  double backoff_ns = 0.0;    ///< simulated backoff across retries
  std::string path_id;        ///< target layout ("nic/path")
  std::string detail;         ///< failure reason on rollback, else empty
};

/// Exact per-epoch datapath accounting: what each generation processed
/// while it was current.  Workers contribute at segment boundaries, so
/// summing stats.packets over every epoch equals the packets the engine
/// processed — the provenance deltas /layout serves.
struct EpochAccounting {
  std::uint64_t epoch = 0;
  std::string path_id;
  std::size_t record_bytes = 0;
  RxLoopStats stats;                    ///< operator+= over queue segments
  SemanticPathCounters semantic_paths;  ///< facade deltas + recovery counts
  std::size_t released_queues = 0;      ///< queues that cut away from it
  bool retired = false;  ///< every queue released it (storage reclaimed)
};

/// Registers the opendesc_layout_* metric families at their zero state
/// (epoch gauge = 1, swap counters = 0) so scrapes expose them even before
/// the first swap — single-queue runs without an epoch manager call this
/// directly.
void register_layout_metrics(telemetry::Sink& sink);

class LayoutEpochManager {
 public:
  /// `compute` must outlive the manager; `guard` mirrors the engine's
  /// record-guard setting (swapped-in layouts are sealed the same way);
  /// `sink` (nullable) receives swap metrics, control-plane traces and
  /// rollback flight incidents.
  LayoutEpochManager(const softnic::ComputeEngine& compute, std::size_t queues,
                     bool guard, telemetry::Sink* sink);

  LayoutEpochManager(const LayoutEpochManager&) = delete;
  LayoutEpochManager& operator=(const LayoutEpochManager&) = delete;

  /// Installs epoch 1 from the engine's construction-time compilation
  /// (`result` is borrowed — the engine's caller keeps it alive).
  std::shared_ptr<EpochGeneration> bootstrap(const core::CompileResult& result);

  /// The generation new runs (and cutovers) adopt.
  [[nodiscard]] std::shared_ptr<EpochGeneration> current() const;
  [[nodiscard]] std::uint64_t current_epoch() const;

  struct SwapAttempt {
    /// Non-null on commit: the installed generation the barriers carry.
    std::shared_ptr<EpochGeneration> generation;
    SwapRecord record;
  };

  /// Verifies `request` against a fresh control-plane ProgrammableNic:
  /// quiesce → program_with_verify (readback + bounded backoff) → sealed
  /// guard-probe packet.  On success the candidate generation becomes
  /// current and is returned; on retry exhaustion, guard-tag mismatch or a
  /// lost probe the previous epoch stays current (generation == nullptr),
  /// the rollback lands in the swap history, the flight recorder and
  /// opendesc_layout_swaps_total{outcome="rolled_back"}.  Never throws.
  SwapAttempt attempt_swap(const SwapRequest& request,
                           const sim::SimConfig& sim_config);

  /// Worker queue `queue` folds one drained segment it processed under
  /// `epoch` into that epoch's accounting.  Called at cutover barriers and
  /// at end of stream, never per packet.
  void contribute(std::uint64_t epoch, std::size_t queue,
                  const RxLoopStats& segment,
                  const SemanticPathCounters& paths);

  /// Worker queue `queue` has cut over away from `epoch`.  When the last
  /// queue releases it the epoch is marked retired — dropping the workers'
  /// shared_ptrs then reclaims the generation's storage.
  void release(std::uint64_t epoch, std::size_t queue);

  /// Replaces the current generation's wanted set (pre-run configuration).
  void override_wanted(std::vector<softnic::SemanticId> wanted);

  [[nodiscard]] std::vector<SwapRecord> history() const;
  [[nodiscard]] std::vector<EpochAccounting> accounting() const;
  /// Accounting row for one epoch (nullopt when it never processed a
  /// segment and was never installed).
  [[nodiscard]] std::optional<EpochAccounting> accounting_for(
      std::uint64_t epoch) const;
  [[nodiscard]] std::uint64_t swaps(SwapOutcome outcome) const;
  /// Generations still referenced by at least one queue (or current).
  [[nodiscard]] std::size_t live_generations() const;

  /// The /layout payload: current epoch, swap history, per-epoch
  /// provenance deltas.  `tsv` renders the `opendesc top` pane form.
  [[nodiscard]] std::string status(bool tsv) const;

 private:
  [[nodiscard]] std::shared_ptr<EpochGeneration> build_generation_locked(
      std::shared_ptr<const core::CompileResult> owned,
      const core::CompileResult& result, std::uint64_t epoch) const;
  EpochAccounting& slot_locked(const EpochGeneration& generation);
  void publish_swap_metrics_locked();

  const softnic::ComputeEngine* compute_;
  std::size_t queues_;
  bool guard_;
  telemetry::Sink* sink_;

  mutable std::mutex mutex_;
  std::shared_ptr<EpochGeneration> current_;
  std::uint64_t next_epoch_ = 1;
  std::vector<SwapRecord> history_;
  std::vector<EpochAccounting> accounting_;  ///< indexed by install order
  std::vector<std::weak_ptr<EpochGeneration>> generations_;  ///< liveness
  std::uint64_t committed_ = 0;
  std::uint64_t rolled_back_ = 0;
};

}  // namespace opendesc::rt
