#include "runtime/epoch.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/error.hpp"
#include "net/workload.hpp"

namespace opendesc::rt {

namespace {

constexpr const char* kSwapsHelp =
    "Live layout swap attempts by outcome (committed / rolled_back)";
constexpr const char* kEpochHelp =
    "Layout epoch the engine currently serves traffic under";

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kDigits[] = "0123456789abcdef";
          out += "\\u00";
          out += kDigits[(c >> 4) & 0xF];
          out += kDigits[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string semantic_label(const softnic::SemanticRegistry& registry,
                           std::uint32_t raw) {
  try {
    return registry.name(static_cast<softnic::SemanticId>(raw));
  } catch (const Error&) {
    return "id_" + std::to_string(raw);
  }
}

}  // namespace

std::string_view to_string(SwapOutcome outcome) noexcept {
  switch (outcome) {
    case SwapOutcome::committed:
      return "committed";
    case SwapOutcome::rolled_back:
      return "rolled_back";
  }
  return "?";
}

void register_layout_metrics(telemetry::Sink& sink) {
  telemetry::Registry& reg = sink.registry();
  reg.counter("opendesc_layout_swaps_total", kSwapsHelp,
              {{"outcome", "committed"}})
      .add(0);
  reg.counter("opendesc_layout_swaps_total", kSwapsHelp,
              {{"outcome", "rolled_back"}})
      .add(0);
  reg.gauge("opendesc_layout_epoch", kEpochHelp).set(1);
}

LayoutEpochManager::LayoutEpochManager(const softnic::ComputeEngine& compute,
                                       std::size_t queues, bool guard,
                                       telemetry::Sink* sink)
    : compute_(&compute),
      queues_(queues == 0 ? 1 : queues),
      guard_(guard),
      sink_(sink) {}

std::shared_ptr<EpochGeneration> LayoutEpochManager::bootstrap(
    const core::CompileResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<EpochGeneration> generation =
      build_generation_locked(nullptr, result, next_epoch_);
  ++next_epoch_;
  current_ = generation;
  generations_.push_back(generation);
  slot_locked(*generation);
  if (sink_ != nullptr) {
    register_layout_metrics(*sink_);
    publish_swap_metrics_locked();
  }
  return generation;
}

std::shared_ptr<EpochGeneration> LayoutEpochManager::current() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t LayoutEpochManager::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_ != nullptr ? current_->epoch : 0;
}

LayoutEpochManager::SwapAttempt LayoutEpochManager::attempt_swap(
    const SwapRequest& request, const sim::SimConfig& sim_config) {
  SwapAttempt attempt;
  SwapRecord& record = attempt.record;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    record.from_epoch = current_ != nullptr ? current_->epoch : 0;
    record.to_epoch = next_epoch_;
  }
  if (request.result == nullptr) {
    record.outcome = SwapOutcome::rolled_back;
    record.detail = "swap request carries no compilation";
    const std::lock_guard<std::mutex> lock(mutex_);
    ++rolled_back_;
    history_.push_back(record);
    return attempt;
  }
  const core::CompileResult& result = *request.result;
  record.path_id = result.nic_name + "/" + result.layout.path_id();

  // Control-plane verification runs against a dedicated ProgrammableNic:
  // the same deparser paths and register file a generated driver would
  // program, with the request's fault configuration attached so swap
  // failures (dropped / partial register writes, corrupted probe records)
  // exercise the exact rollback machinery.
  std::string failure;
  std::optional<sim::FaultInjector> injector;
  try {
    sim::ProgrammableNic ctrl(result.nic_name, result.paths,
                              result.layout.endian(), *compute_, sim_config);
    if (request.ctrl_faults.has_value()) {
      injector.emplace(*request.ctrl_faults);
      ctrl.set_fault_injector(&*injector);
    }
    if (guard_) {
      ctrl.enable_guard();
    }
    const ProgramReport programmed =
        program_with_verify(ctrl, result.context_assignment, request.retry,
                            result.layout.path_id(), sink_);
    record.attempts = programmed.attempts;
    record.backoff_ns = programmed.backoff_ns;

    // Guard probe: push one canonical packet through the freshly programmed
    // channel and validate the completion record it deparses.  A layout that
    // programs cleanly but deparses garbage (guard-tag mismatch, truncated
    // record) rolls back here instead of poisoning the datapath.
    net::WorkloadConfig probe_cfg;
    probe_cfg.seed = 0x51AB5;  // fixed: the probe must be deterministic
    probe_cfg.min_frame = 128;
    probe_cfg.max_frame = 128;
    net::WorkloadGenerator probe_gen(probe_cfg);
    const net::Packet probe = probe_gen.next();
    if (!ctrl.rx(probe)) {
      failure = "guard probe refused at rx";
    } else {
      std::array<sim::RxEvent, 4> events;
      std::size_t n = 0;
      // Delayed doorbells keep the completion invisible for a few polls;
      // bound the spin so a wedged device cannot hang the swap.
      for (int spin = 0; spin < 64 && n == 0; ++spin) {
        n = ctrl.poll(events);
      }
      if (n == 0) {
        failure = ctrl.pending() > 0
                      ? "guard probe completion never became visible"
                      : "guard probe completion lost";
      } else {
        const RecordGuard probe_guard(ctrl.active_layout());
        const RecordVerdict verdict =
            probe_guard.validate(events[0].record, events[0].frame);
        if (verdict != RecordVerdict::ok) {
          failure = "guard probe verdict: ";
          failure += to_string(verdict);
        }
        ctrl.advance(n);
      }
    }
  } catch (const Error& err) {
    if (record.attempts == 0) {
      record.attempts = request.retry.max_attempts;
    }
    failure = err.what();
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (failure.empty()) {
      std::shared_ptr<EpochGeneration> generation =
          build_generation_locked(request.result, result, next_epoch_);
      record.to_epoch = generation->epoch;
      record.outcome = SwapOutcome::committed;
      ++next_epoch_;
      current_ = generation;
      generations_.push_back(generation);
      slot_locked(*generation);
      ++committed_;
      attempt.generation = generation;
      if (sink_ != nullptr) {
        sink_->registry()
            .counter("opendesc_layout_swaps_total", kSwapsHelp,
                     {{"outcome", "committed"}})
            .add(1);
      }
    } else {
      record.outcome = SwapOutcome::rolled_back;
      record.detail = failure;
      ++rolled_back_;
      if (sink_ != nullptr) {
        sink_->registry()
            .counter("opendesc_layout_swaps_total", kSwapsHelp,
                     {{"outcome", "rolled_back"}})
            .add(1);
      }
    }
    history_.push_back(record);
    publish_swap_metrics_locked();
  }

  if (!failure.empty() && sink_ != nullptr) {
    telemetry::FlightIncident incident;
    incident.cause = telemetry::FlightCause::layout_swap_rolled_back;
    incident.detail = static_cast<std::uint8_t>(
        std::min<std::size_t>(record.attempts, 0xFF));
    incident.layout_id = record.path_id;
    incident.recent = sink_->ctrl_ring().tail(sink_->flight().context_events());
    sink_->flight().record(std::move(incident));
  }
  return attempt;
}

void LayoutEpochManager::contribute(std::uint64_t epoch, std::size_t queue,
                                    const RxLoopStats& segment,
                                    const SemanticPathCounters& paths) {
  (void)queue;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (EpochAccounting& slot : accounting_) {
    if (slot.epoch == epoch) {
      slot.stats += segment;
      slot.semantic_paths += paths;
      return;
    }
  }
  // An epoch the manager never installed (defensive): keep the accounting
  // anyway — dropping a segment would break the partition invariant.
  EpochAccounting slot;
  slot.epoch = epoch;
  slot.stats += segment;
  slot.semantic_paths += paths;
  accounting_.push_back(std::move(slot));
}

void LayoutEpochManager::release(std::uint64_t epoch, std::size_t queue) {
  (void)queue;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (EpochAccounting& slot : accounting_) {
    if (slot.epoch != epoch) {
      continue;
    }
    ++slot.released_queues;
    if (slot.released_queues >= queues_) {
      slot.retired = true;
    }
    return;
  }
}

void LayoutEpochManager::override_wanted(
    std::vector<softnic::SemanticId> wanted) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (current_ != nullptr) {
    current_->wanted = std::move(wanted);
  }
}

std::vector<SwapRecord> LayoutEpochManager::history() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

std::vector<EpochAccounting> LayoutEpochManager::accounting() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

std::optional<EpochAccounting> LayoutEpochManager::accounting_for(
    std::uint64_t epoch) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const EpochAccounting& slot : accounting_) {
    if (slot.epoch == epoch) {
      return slot;
    }
  }
  return std::nullopt;
}

std::uint64_t LayoutEpochManager::swaps(SwapOutcome outcome) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return outcome == SwapOutcome::committed ? committed_ : rolled_back_;
}

std::size_t LayoutEpochManager::live_generations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const std::weak_ptr<EpochGeneration>& weak : generations_) {
    if (!weak.expired()) {
      ++live;
    }
  }
  return live;
}

std::string LayoutEpochManager::status(bool tsv) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  const std::uint64_t epoch = current_ != nullptr ? current_->epoch : 0;
  std::size_t live = 0;
  for (const std::weak_ptr<EpochGeneration>& weak : generations_) {
    if (!weak.expired()) {
      ++live;
    }
  }
  if (tsv) {
    out << "epoch\t" << epoch << "\n";
    out << "swaps\t" << committed_ << "\t" << rolled_back_ << "\n";
    for (const EpochAccounting& slot : accounting_) {
      out << "gen\t" << slot.epoch << "\t" << slot.path_id << "\t"
          << slot.stats.packets << "\t" << slot.stats.softnic_recovered << "\t"
          << slot.stats.quarantined << "\t" << (slot.retired ? 1 : 0) << "\n";
    }
    for (const SwapRecord& record : history_) {
      out << "swap\t" << record.from_epoch << "\t" << record.to_epoch << "\t"
          << to_string(record.outcome) << "\t" << record.attempts << "\t"
          << record.detail << "\n";
    }
    return out.str();
  }
  out << "{\"enabled\":true,\"epoch\":" << epoch
      << ",\"generations_live\":" << live << ",\"swaps\":{\"committed\":"
      << committed_ << ",\"rolled_back\":" << rolled_back_ << "},\"history\":[";
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const SwapRecord& record = history_[i];
    if (i != 0) {
      out << ",";
    }
    out << "{\"from_epoch\":" << record.from_epoch
        << ",\"to_epoch\":" << record.to_epoch << ",\"outcome\":\""
        << to_string(record.outcome) << "\",\"attempts\":" << record.attempts
        << ",\"backoff_ns\":" << record.backoff_ns << ",\"path\":\""
        << json_escape(record.path_id) << "\",\"detail\":\""
        << json_escape(record.detail) << "\"}";
  }
  out << "],\"epochs\":[";
  for (std::size_t i = 0; i < accounting_.size(); ++i) {
    const EpochAccounting& slot = accounting_[i];
    if (i != 0) {
      out << ",";
    }
    out << "{\"epoch\":" << slot.epoch << ",\"path\":\""
        << json_escape(slot.path_id)
        << "\",\"record_bytes\":" << slot.record_bytes
        << ",\"packets\":" << slot.stats.packets
        << ",\"hw_consumed\":" << slot.stats.hw_consumed
        << ",\"softnic_recovered\":" << slot.stats.softnic_recovered
        << ",\"quarantined\":" << slot.stats.quarantined
        << ",\"lost_completions\":" << slot.stats.lost_completions
        << ",\"released_queues\":" << slot.released_queues << ",\"retired\":"
        << (slot.retired ? "true" : "false") << ",\"semantic_paths\":[";
    const auto snapshot = slot.semantic_paths.snapshot();
    for (std::size_t s = 0; s < snapshot.size(); ++s) {
      const auto& [raw, counts] = snapshot[s];
      if (s != 0) {
        out << ",";
      }
      out << "{\"semantic\":\""
          << json_escape(semantic_label(compute_->registry(), raw))
          << "\",\"nic_path\":" << counts.nic_path
          << ",\"softnic_shim\":" << counts.softnic_shim
          << ",\"unavailable\":" << counts.unavailable << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::shared_ptr<EpochGeneration> LayoutEpochManager::build_generation_locked(
    std::shared_ptr<const core::CompileResult> owned,
    const core::CompileResult& result, std::uint64_t epoch) const {
  auto generation = std::make_shared<EpochGeneration>();
  generation->epoch = epoch;
  generation->owned = std::move(owned);
  generation->result = &result;
  generation->wire_layout =
      guard_ ? result.layout.with_guard() : result.layout;
  generation->strategies.reserve(queues_);
  for (std::size_t q = 0; q < queues_; ++q) {
    generation->strategies.push_back(
        std::make_unique<OpenDescStrategy>(result, *compute_));
  }
  const auto requested = result.intent.requested();
  generation->wanted.assign(requested.begin(), requested.end());
  return generation;
}

EpochAccounting& LayoutEpochManager::slot_locked(
    const EpochGeneration& generation) {
  for (EpochAccounting& slot : accounting_) {
    if (slot.epoch == generation.epoch) {
      return slot;
    }
  }
  EpochAccounting slot;
  slot.epoch = generation.epoch;
  slot.path_id =
      generation.result->nic_name + "/" + generation.wire_layout.path_id();
  slot.record_bytes = generation.wire_layout.total_bytes();
  accounting_.push_back(std::move(slot));
  return accounting_.back();
}

void LayoutEpochManager::publish_swap_metrics_locked() {
  if (sink_ == nullptr) {
    return;
  }
  sink_->registry()
      .gauge("opendesc_layout_epoch", kEpochHelp)
      .set(static_cast<double>(current_ != nullptr ? current_->epoch : 0));
}

}  // namespace opendesc::rt
