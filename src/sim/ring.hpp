// Descriptor and completion rings.
//
// Models the classic NIC/host shared-memory rings: fixed-size power-of-two
// entry arrays with free-running head/tail indices (a la e1000/ixgbe/mlx5).
// The host posts receive buffers on the descriptor ring; the NIC consumes
// them, fills buffers and pushes fixed-size completion records on the
// completion ring.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace opendesc::sim {

/// Fixed-entry-size ring buffer with single-producer/single-consumer
/// free-running indices.  Entry payloads live in one contiguous allocation,
/// as in real descriptor memory.
class ByteRing {
 public:
  /// `entries` must be a power of two; `entry_size` > 0.
  ByteRing(std::size_t entries, std::size_t entry_size);

  [[nodiscard]] std::size_t capacity() const noexcept { return entries_; }
  [[nodiscard]] std::size_t entry_size() const noexcept { return entry_size_; }
  [[nodiscard]] std::size_t size() const noexcept { return head_ - tail_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == tail_; }
  [[nodiscard]] bool full() const noexcept { return size() == entries_; }

  /// Producer: returns the next free entry slot, or an empty span when the
  /// ring is full.  The producer fills the slot, then calls push().
  [[nodiscard]] std::span<std::uint8_t> produce_slot() noexcept;
  void push() noexcept;

  /// Consumer: the oldest entry, or an empty span when the ring is empty.
  /// The consumer reads it, then calls pop().
  [[nodiscard]] std::span<const std::uint8_t> front() const noexcept;
  void pop() noexcept;

  /// Peeks the entry at free-running index `index` (must be in
  /// [tail, head)); empty span otherwise.  Lets a consumer batch-process
  /// several pending entries before advancing the tail.
  [[nodiscard]] std::span<const std::uint8_t> peek(std::uint64_t index) const noexcept {
    if (index < tail_ || index >= head_) {
      return {};
    }
    return std::span<const std::uint8_t>(storage_).subspan(slot_offset(index),
                                                           entry_size_);
  }

  /// Mutable view of the entry at free-running index `index` (must be in
  /// [tail, head)); empty span otherwise.  Exists for fault injection: a
  /// misbehaving device scribbling over an already-produced slot (stale or
  /// duplicated completion) is modelled by rewriting the slot in place.
  [[nodiscard]] std::span<std::uint8_t> mutable_peek(std::uint64_t index) noexcept {
    if (index < tail_ || index >= head_) {
      return {};
    }
    return std::span<std::uint8_t>(storage_).subspan(slot_offset(index),
                                                     entry_size_);
  }

  /// Free-running indices (test/diagnostic access).
  [[nodiscard]] std::uint64_t head() const noexcept { return head_; }
  [[nodiscard]] std::uint64_t tail() const noexcept { return tail_; }

 private:
  [[nodiscard]] std::size_t slot_offset(std::uint64_t index) const noexcept {
    return (static_cast<std::size_t>(index) & mask_) * entry_size_;
  }

  std::size_t entries_;
  std::size_t entry_size_;
  std::size_t mask_;
  std::uint64_t head_ = 0;  ///< producer position
  std::uint64_t tail_ = 0;  ///< consumer position
  std::vector<std::uint8_t> storage_;
};

/// Pool of fixed-size receive buffers the host posts to the NIC.  Mirrors a
/// driver's rx buffer management: buffers cycle host → NIC → host.
class BufferPool {
 public:
  BufferPool(std::size_t buffer_count, std::size_t buffer_size);

  [[nodiscard]] std::size_t buffer_size() const noexcept { return buffer_size_; }
  [[nodiscard]] std::size_t free_count() const noexcept { return free_.size(); }

  /// Takes a free buffer id; returns false when exhausted.
  [[nodiscard]] bool allocate(std::uint32_t& id) noexcept;
  void release(std::uint32_t id);

  [[nodiscard]] std::span<std::uint8_t> buffer(std::uint32_t id);
  [[nodiscard]] std::span<const std::uint8_t> buffer(std::uint32_t id) const;

 private:
  std::size_t buffer_size_;
  std::vector<std::uint8_t> storage_;
  std::vector<std::uint32_t> free_;
  std::vector<bool> in_use_;
};

}  // namespace opendesc::sim
