#include "sim/faults.hpp"

#include <algorithm>

namespace opendesc::sim {

std::string_view to_string(FaultClass fault) noexcept {
  switch (fault) {
    case FaultClass::record_bitflip: return "record_bitflip";
    case FaultClass::record_truncate: return "record_truncate";
    case FaultClass::record_stale: return "record_stale";
    case FaultClass::completion_drop: return "completion_drop";
    case FaultClass::doorbell_delay: return "doorbell_delay";
    case FaultClass::tx_misparse: return "tx_misparse";
    case FaultClass::ctrl_write_drop: return "ctrl_write_drop";
    case FaultClass::ctrl_partial_program: return "ctrl_partial_program";
  }
  return "unknown";
}

FaultConfig FaultConfig::composite(double rate, std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.probability.fill(rate);
  return config;
}

RecordFaultPlan FaultInjector::plan_record(std::size_t record_bytes) {
  RecordFaultPlan plan;
  // Draw every class unconditionally so the PRNG stream stays aligned
  // across runs that differ only in which faults happen to fire.
  const bool drop = roll(FaultClass::completion_drop);
  const bool stale = roll(FaultClass::record_stale);
  const bool flip = roll(FaultClass::record_bitflip);
  const bool truncate = roll(FaultClass::record_truncate);
  const bool delay = roll(FaultClass::doorbell_delay);
  if (drop) {
    plan.drop_completion = true;
    return plan;
  }
  plan.stale = stale;
  plan.bitflip = flip;
  if (truncate && record_bytes > 1) {
    // Cut somewhere inside the record: [1, record_bytes - 1] bytes survive.
    plan.truncate_to = 1 + static_cast<std::size_t>(
                               rng_.bounded(record_bytes - 1));
  }
  if (delay) {
    plan.delay_polls = config_.doorbell_delay_polls;
  }
  return plan;
}

void FaultInjector::corrupt_record(std::span<std::uint8_t> record) {
  if (record.empty()) {
    return;
  }
  const std::uint32_t flips =
      1 + static_cast<std::uint32_t>(rng_.bounded(config_.max_bitflips));
  for (std::uint32_t i = 0; i < flips; ++i) {
    const std::size_t bit = static_cast<std::size_t>(rng_.bounded(record.size() * 8));
    record[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

std::size_t FaultInjector::corrupt_descriptor(std::span<std::uint8_t> desc) {
  if (desc.empty()) {
    return 0;
  }
  if (rng_.chance(0.5)) {
    // Truncation: the DMA read stopped early.
    return static_cast<std::size_t>(rng_.bounded(desc.size()));
  }
  const std::uint32_t flips =
      1 + static_cast<std::uint32_t>(rng_.bounded(config_.max_bitflips));
  for (std::uint32_t i = 0; i < flips; ++i) {
    const std::size_t bit = static_cast<std::size_t>(rng_.bounded(desc.size() * 8));
    desc[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  return desc.size();
}

}  // namespace opendesc::sim
