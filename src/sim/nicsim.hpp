// The software NIC: executes a compiled completion layout against live
// packets, exactly as the hardware deparser would.
//
// The simulator replaces the paper's physical testbed (repro substitution
// documented in DESIGN.md §2).  The NIC side computes every semantic the
// chosen completion path provides (using the same reference implementations
// the SoftNIC fallback uses), serializes the record in the path's layout,
// and "DMAs" record + frame to host-visible memory; the host side polls the
// completion ring and reads metadata back through generated accessors.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/layout.hpp"
#include "net/packet.hpp"
#include "sim/dma.hpp"
#include "sim/faults.hpp"
#include "sim/ring.hpp"
#include "softnic/compute.hpp"
#include "telemetry/spans.hpp"

namespace opendesc::sim {

struct SimConfig {
  std::size_t cmpt_ring_entries = 1024;  ///< power of two
  std::size_t rx_buffer_count = 2048;
  std::size_t rx_buffer_size = 2048;
  std::uint16_t queue_id = 0;
  std::size_t rx_descriptor_bytes = 16;  ///< posted-descriptor size (accounting)
};

/// One received packet as seen by the host after polling.
struct RxEvent {
  std::span<const std::uint8_t> record;  ///< completion record (ring slot)
  std::span<const std::uint8_t> frame;   ///< packet bytes (pool buffer)
  std::uint64_t trace_id = 0;  ///< causal-tracing id (0 = unsampled); carried
                               ///< out-of-band like a descriptor cookie, so
                               ///< record corruption cannot destroy it
};

/// Single-queue receive-side NIC simulator.
class NicSimulator {
 public:
  NicSimulator(core::CompiledLayout layout, const softnic::ComputeEngine& engine,
               softnic::RxContext base_context, SimConfig config = {});

  /// NIC side: a packet arrives from the wire.  Returns false (and counts a
  /// drop) when the completion ring or the buffer pool is exhausted, or the
  /// frame exceeds the posted buffer size.
  bool rx(const net::Packet& packet);

  /// Host side: peeks up to out.size() pending completions without
  /// consuming them.  Events stay valid until advance().
  [[nodiscard]] std::size_t poll(std::span<RxEvent> out) const;

  /// Consumes `n` polled completions: advances the ring tail and recycles
  /// the frame buffers (the driver's "update tail pointer" step).
  void advance(std::size_t n);

  [[nodiscard]] std::size_t pending() const noexcept { return cmpt_ring_.size(); }
  [[nodiscard]] const DmaAccounting& dma() const noexcept { return dma_; }
  [[nodiscard]] const core::CompiledLayout& layout() const noexcept { return layout_; }

  /// Live layout cutover: replaces the completion layout the deparser emits.
  /// Requires pending() == 0 — the caller drains the queue first, exactly as
  /// a driver quiesces before reprogramming; throws Error(simulation)
  /// otherwise.  The completion ring is rebuilt for the new record size and
  /// the stale-record fault memory is cleared, so a stale replay can never
  /// resurrect a record shaped by a previous epoch's layout.
  void swap_layout(core::CompiledLayout layout);
  [[nodiscard]] const softnic::RxContext& context() const noexcept { return ctx_; }

  /// Free receive buffers (leak diagnostics: after a full drain this must
  /// equal the configured pool size).
  [[nodiscard]] std::size_t free_buffers() const noexcept {
    return buffers_.free_count();
  }

  /// Attaches a fault injector (nullptr detaches).  The injector must
  /// outlive the simulator; it is shared so the control channel and the
  /// datapath draw from one deterministic stream.
  void set_fault_injector(FaultInjector* injector) noexcept { faults_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return faults_; }

  /// Attaches the owning worker's span ring (nullptr detaches): rx() runs
  /// on that worker's thread, so the ring's single-writer invariant holds.
  /// The clock is injected alongside (telemetry::profile_now_ns in
  /// production) so the simulator records `nic_parse` and
  /// `completion_write` spans for sampled packets without a link-time
  /// telemetry dependency.
  void set_span_recorder(telemetry::SpanRing* ring,
                         double (*clock)() noexcept) noexcept {
    span_ring_ = ring;
    span_clock_ = ring != nullptr ? clock : nullptr;
  }

  // --- TX path (host → NIC → wire) -----------------------------------------

  /// Programs the TX descriptor format the NIC's DescParser will use
  /// (normally the format the compiler selected for the TX intent).
  void configure_tx(core::CompiledLayout tx_layout);

  /// Host posts a descriptor + the frame it points at.  The NIC parses the
  /// descriptor through the configured format and *executes* the requested
  /// offloads with the reference implementations: VLAN insertion, TCP
  /// segmentation (tx_tso_en/tx_tso_mss), L4 checksum insertion
  /// (tx_csum_en).  Resulting wire frames land in transmitted().
  /// Throws Error(simulation) when no TX format is configured or the
  /// descriptor is shorter than the format.
  void tx_post(std::span<const std::uint8_t> desc,
               std::span<const std::uint8_t> frame);

  /// Frames sent to the wire, in order.
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& transmitted()
      const noexcept {
    return transmitted_;
  }

  /// Drops accumulated wire frames (long-running benches).
  void clear_transmitted() noexcept { transmitted_.clear(); }

 private:
  core::CompiledLayout layout_;
  const softnic::ComputeEngine& engine_;
  softnic::RxContext ctx_;
  SimConfig config_;
  ByteRing cmpt_ring_;
  BufferPool buffers_;
  // Per in-flight completion, in ring order: which pool buffer holds the
  // frame, how long frame and record are, and (fault model) from which poll
  // sequence number the completion becomes host-visible.
  struct InflightFrame {
    std::uint32_t buffer_id = 0;
    std::uint32_t frame_len = 0;
    std::uint32_t record_len = 0;
    std::uint64_t visible_at_poll = 0;
    std::uint64_t trace_id = 0;  ///< sampled-packet cookie (0 = unsampled)
  };
  std::vector<InflightFrame> inflight_;  ///< FIFO aligned with the ring
  DmaAccounting dma_;
  std::vector<std::uint64_t> scratch_values_;  ///< per-slice serialize buffer
  std::optional<core::CompiledLayout> tx_layout_;
  std::vector<std::vector<std::uint8_t>> transmitted_;
  FaultInjector* faults_ = nullptr;
  telemetry::SpanRing* span_ring_ = nullptr;   ///< owning worker's span ring
  double (*span_clock_)() noexcept = nullptr;  ///< injected span timestamp clock
  std::vector<std::uint8_t> last_record_;  ///< previous record (stale faults)
  mutable std::uint64_t poll_seq_ = 0;     ///< doorbell-delay clock
};

}  // namespace opendesc::sim
