#include "sim/ctrlchan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::sim {

namespace {

std::size_t max_record_bytes(const std::vector<core::CompiledLayout>& layouts) {
  std::size_t max_bytes = 1;
  for (const core::CompiledLayout& layout : layouts) {
    max_bytes = std::max(max_bytes, layout.total_bytes());
  }
  return max_bytes;
}

std::vector<core::CompiledLayout> pack_all(
    const std::string& nic_name, const std::vector<core::CompletionPath>& paths,
    Endian endian) {
  std::vector<core::CompiledLayout> layouts;
  layouts.reserve(paths.size());
  for (const core::CompletionPath& path : paths) {
    std::vector<core::FieldSlice> slices;
    slices.reserve(path.pieces.size());
    for (const core::EmitPiece& piece : path.pieces) {
      core::FieldSlice slice;
      slice.name = piece.field_name;
      slice.semantic = piece.semantic;
      slice.bit_width = piece.bit_width;
      slice.fixed_value = piece.fixed_value;
      slices.push_back(std::move(slice));
    }
    layouts.push_back(
        core::pack_layout(nic_name, path.id, endian, std::move(slices)));
  }
  return layouts;
}

}  // namespace

std::vector<std::string> RegisterFile::mismatches(
    const p4::ConstEnv& assignment) const {
  std::vector<std::string> bad;
  for (const auto& [path, expected] : assignment) {
    const std::uint64_t actual = read(path);
    if (actual != expected) {
      bad.push_back(path + " (expected " + std::to_string(expected) +
                    ", read " + std::to_string(actual) + ")");
    }
  }
  return bad;
}

ProgrammableNic::ProgrammableNic(std::string nic_name,
                                 std::vector<core::CompletionPath> paths,
                                 Endian endian,
                                 const softnic::ComputeEngine& engine,
                                 SimConfig config)
    : nic_name_(std::move(nic_name)), paths_(std::move(paths)),
      layouts_(pack_all(nic_name_, paths_, endian)), engine_(engine),
      config_(config),
      ring_(config.cmpt_ring_entries, max_record_bytes(layouts_)),
      buffers_(config.rx_buffer_count, config.rx_buffer_size) {
  if (paths_.empty()) {
    throw Error(ErrorKind::simulation,
                "ProgrammableNic needs at least one completion path");
  }
  ctx_.queue_id = config.queue_id;
  reselect();  // all-zero registers may or may not select a path; lazily ok
}

void ProgrammableNic::reselect() {
  matched_.clear();
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].constraints.satisfied_by(registers_.values())) {
      active_ = i;
      matched_.push_back(i);
    }
  }
  active_valid_ = matched_.size() == 1;
}

void ProgrammableNic::program(const p4::ConstEnv& assignment) {
  if (pending() != 0) {
    throw Error(ErrorKind::simulation,
                "quiesce the queue before reprogramming (completions pending)");
  }
  if (faults_ != nullptr && faults_->roll(FaultClass::ctrl_partial_program)) {
    // Firmware applied only a prefix of the assignment before wedging —
    // visible to the host only through readback verification.
    const std::size_t keep =
        static_cast<std::size_t>(faults_->rng().bounded(assignment.size()));
    p4::ConstEnv prefix;
    for (const auto& [path, value] : assignment) {
      if (prefix.size() == keep) {
        break;
      }
      prefix.emplace(path, value);
    }
    registers_.program(prefix);
  } else if (faults_ != nullptr &&
             faults_->config().rate(FaultClass::ctrl_write_drop) > 0.0) {
    // Individual MMIO writes within the burst are silently dropped — the
    // register keeps its previous value, visible to the host only through
    // readback verification.  (Gated on the configured rate so a zero-rate
    // injector draws no extra randomness and existing fault sequences stay
    // byte-identical.)
    for (const auto& [path, value] : assignment) {
      if (faults_->roll(FaultClass::ctrl_write_drop)) {
        continue;
      }
      registers_.write(path, value);
    }
  } else {
    registers_.program(assignment);
  }
  reselect();
}

void ProgrammableNic::write_register(const std::string& path,
                                     std::uint64_t value) {
  if (pending() != 0) {
    throw Error(ErrorKind::simulation,
                "quiesce the queue before reprogramming (completions pending)");
  }
  if (faults_ != nullptr && faults_->roll(FaultClass::ctrl_write_drop)) {
    // MMIO write lost on the bus; the register keeps its old value.
    reselect();
    return;
  }
  registers_.write(path, value);
  reselect();
}

const core::CompiledLayout& ProgrammableNic::active_layout() const {
  if (!active_valid_) {
    if (matched_.size() > 1) {
      std::string ids;
      for (const std::size_t index : matched_) {
        ids += ids.empty() ? paths_[index].id : ", " + paths_[index].id;
      }
      throw Error(ErrorKind::simulation,
                  "context registers are ambiguous: completion paths {" + ids +
                      "} all satisfied — partially-programmed context?");
    }
    throw Error(ErrorKind::simulation,
                "context registers select no completion path (0 of " +
                    std::to_string(paths_.size()) + " satisfied)");
  }
  return layouts_[active_];
}

void ProgrammableNic::enable_guard() {
  if (pending() != 0) {
    throw Error(ErrorKind::simulation,
                "quiesce the queue before enabling the record guard");
  }
  std::size_t max_bytes = 1;
  for (core::CompiledLayout& layout : layouts_) {
    layout = layout.with_guard();
    max_bytes = std::max(max_bytes, layout.total_bytes());
  }
  // Re-size the completion ring for the grown records.
  ring_ = ByteRing(config_.cmpt_ring_entries, max_bytes);
}

const std::string& ProgrammableNic::active_path_id() const {
  return active_layout().path_id();
}

bool ProgrammableNic::rx(const net::Packet& packet) {
  const core::CompiledLayout& layout = active_layout();
  if (packet.size() > buffers_.buffer_size()) {
    ++dma_.drops;
    ++dma_.drops_oversize;
    return false;
  }
  const RecordFaultPlan plan =
      faults_ ? faults_->plan_record(layout.total_bytes()) : RecordFaultPlan{};
  if (plan.drop_completion) {
    dma_.rx_frame_bytes += packet.size();
    ++dma_.frames;
    return true;
  }
  std::span<std::uint8_t> slot = ring_.produce_slot();
  if (slot.empty()) {
    ++dma_.drops;
    ++dma_.drops_ring_full;
    return false;
  }
  std::uint32_t buffer_id = 0;
  if (!buffers_.allocate(buffer_id)) {
    ++dma_.drops;
    ++dma_.drops_pool_exhausted;
    return false;
  }

  const net::PacketView view = net::PacketView::parse(packet.bytes());
  ctx_.rx_timestamp_ns = packet.rx_timestamp_ns;
  ++ctx_.seq_no;

  std::vector<std::uint64_t> values(layout.slices().size(), 0);
  for (std::size_t i = 0; i < layout.slices().size(); ++i) {
    const core::FieldSlice& slice = layout.slices()[i];
    if (slice.semantic) {
      values[i] =
          engine_.hardware_value(*slice.semantic, packet.bytes(), view, ctx_);
    }
  }
  layout.serialize(slot, values);
  layout.seal(slot, packet.bytes());

  std::uint32_t record_len = static_cast<std::uint32_t>(layout.total_bytes());
  std::uint64_t visible_at = 0;
  if (faults_) {
    if (plan.stale && !last_record_.empty()) {
      const std::size_t n =
          std::min<std::size_t>(last_record_.size(), slot.size());
      std::copy(last_record_.begin(),
                last_record_.begin() + static_cast<std::ptrdiff_t>(n),
                slot.begin());
    } else {
      last_record_.assign(slot.begin(),
                          slot.begin() + static_cast<std::ptrdiff_t>(record_len));
    }
    if (plan.bitflip) {
      faults_->corrupt_record(slot.first(record_len));
    }
    if (plan.truncate_to != 0) {
      record_len = static_cast<std::uint32_t>(
          std::min<std::size_t>(plan.truncate_to, record_len));
    }
    if (plan.delay_polls != 0) {
      visible_at = poll_seq_ + plan.delay_polls;
    }
  }

  std::span<std::uint8_t> buffer = buffers_.buffer(buffer_id);
  std::copy(packet.data.begin(), packet.data.end(), buffer.begin());
  inflight_.push_back({buffer_id, static_cast<std::uint32_t>(packet.size()),
                       record_len, visible_at});
  ring_.push();

  dma_.completion_bytes += layout.total_bytes();
  dma_.rx_frame_bytes += packet.size();
  dma_.descriptor_bytes += config_.rx_descriptor_bytes;
  ++dma_.completions;
  ++dma_.frames;
  return true;
}

std::size_t ProgrammableNic::poll(std::span<RxEvent> out) const {
  ++poll_seq_;
  const std::size_t limit = std::min(out.size(), ring_.size());
  std::size_t n = 0;
  for (; n < limit; ++n) {
    const Inflight& frame = inflight_[n];
    if (frame.visible_at_poll > poll_seq_) {
      break;
    }
    out[n].record = ring_.peek(ring_.tail() + n).first(frame.record_len);
    out[n].frame = buffers_.buffer(frame.buffer_id).first(frame.frame_len);
  }
  return n;
}

void ProgrammableNic::advance(std::size_t n) {
  if (n > ring_.size() || n > inflight_.size()) {
    throw Error(ErrorKind::simulation, "advance exceeds pending completions");
  }
  for (std::size_t i = 0; i < n; ++i) {
    ring_.pop();
    buffers_.release(inflight_[i].buffer_id);
  }
  inflight_.erase(inflight_.begin(), inflight_.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace opendesc::sim
