#include "sim/ctrlchan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::sim {

namespace {

std::size_t max_record_bytes(const std::vector<core::CompiledLayout>& layouts) {
  std::size_t max_bytes = 1;
  for (const core::CompiledLayout& layout : layouts) {
    max_bytes = std::max(max_bytes, layout.total_bytes());
  }
  return max_bytes;
}

std::vector<core::CompiledLayout> pack_all(
    const std::string& nic_name, const std::vector<core::CompletionPath>& paths,
    Endian endian) {
  std::vector<core::CompiledLayout> layouts;
  layouts.reserve(paths.size());
  for (const core::CompletionPath& path : paths) {
    std::vector<core::FieldSlice> slices;
    slices.reserve(path.pieces.size());
    for (const core::EmitPiece& piece : path.pieces) {
      core::FieldSlice slice;
      slice.name = piece.field_name;
      slice.semantic = piece.semantic;
      slice.bit_width = piece.bit_width;
      slice.fixed_value = piece.fixed_value;
      slices.push_back(std::move(slice));
    }
    layouts.push_back(
        core::pack_layout(nic_name, path.id, endian, std::move(slices)));
  }
  return layouts;
}

}  // namespace

ProgrammableNic::ProgrammableNic(std::string nic_name,
                                 std::vector<core::CompletionPath> paths,
                                 Endian endian,
                                 const softnic::ComputeEngine& engine,
                                 SimConfig config)
    : nic_name_(std::move(nic_name)), paths_(std::move(paths)),
      layouts_(pack_all(nic_name_, paths_, endian)), engine_(engine),
      config_(config),
      ring_(config.cmpt_ring_entries, max_record_bytes(layouts_)),
      buffers_(config.rx_buffer_count, config.rx_buffer_size) {
  if (paths_.empty()) {
    throw Error(ErrorKind::simulation,
                "ProgrammableNic needs at least one completion path");
  }
  ctx_.queue_id = config.queue_id;
  reselect();  // all-zero registers may or may not select a path; lazily ok
}

void ProgrammableNic::reselect() {
  active_valid_ = false;
  std::size_t matches = 0;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].constraints.satisfied_by(registers_.values())) {
      active_ = i;
      ++matches;
    }
  }
  active_valid_ = matches == 1;
}

void ProgrammableNic::program(const p4::ConstEnv& assignment) {
  if (pending() != 0) {
    throw Error(ErrorKind::simulation,
                "quiesce the queue before reprogramming (completions pending)");
  }
  registers_.program(assignment);
  reselect();
}

void ProgrammableNic::write_register(const std::string& path,
                                     std::uint64_t value) {
  if (pending() != 0) {
    throw Error(ErrorKind::simulation,
                "quiesce the queue before reprogramming (completions pending)");
  }
  registers_.write(path, value);
  reselect();
}

const core::CompiledLayout& ProgrammableNic::active_layout() const {
  if (!active_valid_) {
    throw Error(ErrorKind::simulation,
                "context registers select no unique completion path");
  }
  return layouts_[active_];
}

const std::string& ProgrammableNic::active_path_id() const {
  return active_layout().path_id();
}

bool ProgrammableNic::rx(const net::Packet& packet) {
  const core::CompiledLayout& layout = active_layout();
  if (packet.size() > buffers_.buffer_size()) {
    ++dma_.drops;
    return false;
  }
  std::span<std::uint8_t> slot = ring_.produce_slot();
  if (slot.empty()) {
    ++dma_.drops;
    return false;
  }
  std::uint32_t buffer_id = 0;
  if (!buffers_.allocate(buffer_id)) {
    ++dma_.drops;
    return false;
  }

  const net::PacketView view = net::PacketView::parse(packet.bytes());
  ctx_.rx_timestamp_ns = packet.rx_timestamp_ns;
  ++ctx_.seq_no;

  std::vector<std::uint64_t> values(layout.slices().size(), 0);
  for (std::size_t i = 0; i < layout.slices().size(); ++i) {
    const core::FieldSlice& slice = layout.slices()[i];
    if (slice.semantic) {
      values[i] =
          engine_.hardware_value(*slice.semantic, packet.bytes(), view, ctx_);
    }
  }
  layout.serialize(slot, values);

  std::span<std::uint8_t> buffer = buffers_.buffer(buffer_id);
  std::copy(packet.data.begin(), packet.data.end(), buffer.begin());
  inflight_.push_back({buffer_id, static_cast<std::uint32_t>(packet.size()),
                       static_cast<std::uint32_t>(layout.total_bytes())});
  ring_.push();

  dma_.completion_bytes += layout.total_bytes();
  dma_.rx_frame_bytes += packet.size();
  dma_.descriptor_bytes += config_.rx_descriptor_bytes;
  ++dma_.completions;
  ++dma_.frames;
  return true;
}

std::size_t ProgrammableNic::poll(std::span<RxEvent> out) const {
  const std::size_t n = std::min(out.size(), ring_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Inflight& frame = inflight_[i];
    out[i].record = ring_.peek(ring_.tail() + i).first(frame.record_len);
    out[i].frame = buffers_.buffer(frame.buffer_id).first(frame.frame_len);
  }
  return n;
}

void ProgrammableNic::advance(std::size_t n) {
  if (n > ring_.size() || n > inflight_.size()) {
    throw Error(ErrorKind::simulation, "advance exceeds pending completions");
  }
  for (std::size_t i = 0; i < n; ++i) {
    ring_.pop();
    buffers_.release(inflight_[i].buffer_id);
  }
  inflight_.erase(inflight_.begin(), inflight_.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace opendesc::sim
