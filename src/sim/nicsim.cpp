#include "sim/nicsim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/offload.hpp"

namespace opendesc::sim {

NicSimulator::NicSimulator(core::CompiledLayout layout,
                           const softnic::ComputeEngine& engine,
                           softnic::RxContext base_context, SimConfig config)
    : layout_(std::move(layout)), engine_(engine), ctx_(base_context),
      config_(config),
      cmpt_ring_(config.cmpt_ring_entries, std::max<std::size_t>(layout_.total_bytes(), 1)),
      buffers_(config.rx_buffer_count, config.rx_buffer_size) {
  ctx_.queue_id = config.queue_id;
  scratch_values_.resize(layout_.slices().size());
}

bool NicSimulator::rx(const net::Packet& packet) {
  if (packet.size() > buffers_.buffer_size()) {
    ++dma_.drops;
    ++dma_.drops_oversize;
    return false;
  }
  const RecordFaultPlan plan =
      faults_ ? faults_->plan_record(layout_.total_bytes()) : RecordFaultPlan{};
  if (plan.drop_completion) {
    // Device accepted the frame (it crossed the link) but firmware lost the
    // completion: the host never sees an event for this packet.  The buffer
    // is recycled device-side so the pool does not leak.
    dma_.rx_frame_bytes += packet.size();
    ++dma_.frames;
    return true;
  }
  std::span<std::uint8_t> slot = cmpt_ring_.produce_slot();
  if (slot.empty()) {
    ++dma_.drops;
    ++dma_.drops_ring_full;
    return false;
  }
  std::uint32_t buffer_id = 0;
  if (!buffers_.allocate(buffer_id)) {
    ++dma_.drops;
    ++dma_.drops_pool_exhausted;
    return false;
  }

  // Causal tracing: a sampled packet carries a non-zero trace id; span
  // timestamps come from the injected clock so the sim stays link-free of
  // the telemetry library.
  const bool traced = span_ring_ != nullptr && packet.trace_id != 0;
  double span_start = traced ? span_clock_() : 0.0;

  // --- NIC pipeline: parse, compute provided semantics, deparse. ---
  const net::PacketView view = net::PacketView::parse(packet.bytes());
  ctx_.rx_timestamp_ns = packet.rx_timestamp_ns;
  ++ctx_.seq_no;

  const auto& slices = layout_.slices();
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const core::FieldSlice& slice = slices[i];
    if (slice.semantic) {
      scratch_values_[i] =
          engine_.hardware_value(*slice.semantic, packet.bytes(), view, ctx_);
    } else {
      scratch_values_[i] = 0;  // padding; @fixed handled by serialize()
    }
  }
  layout_.serialize(slot, scratch_values_);
  layout_.seal(slot, packet.bytes());
  if (traced) {
    const double now = span_clock_();
    span_ring_->record(telemetry::SpanStage::nic_parse, packet.trace_id,
                       span_start, now - span_start);
    span_start = now;
  }

  // --- Fault model: corrupt the sealed record before the host sees it. ---
  std::uint32_t record_len = static_cast<std::uint32_t>(layout_.total_bytes());
  std::uint64_t visible_at = 0;
  if (faults_) {
    if (plan.stale && !last_record_.empty()) {
      // The deparser re-emitted the previous completion into this slot.
      std::copy(last_record_.begin(), last_record_.end(), slot.begin());
    } else {
      last_record_.assign(slot.begin(),
                          slot.begin() + static_cast<std::ptrdiff_t>(record_len));
    }
    if (plan.bitflip) {
      faults_->corrupt_record(slot.first(record_len));
    }
    if (plan.truncate_to != 0) {
      record_len = static_cast<std::uint32_t>(
          std::min<std::size_t>(plan.truncate_to, record_len));
    }
    if (plan.delay_polls != 0) {
      visible_at = poll_seq_ + plan.delay_polls;
    }
  }

  // --- DMA: frame into the posted buffer, completion onto the ring. ---
  std::span<std::uint8_t> buffer = buffers_.buffer(buffer_id);
  std::copy(packet.data.begin(), packet.data.end(), buffer.begin());
  inflight_.push_back({buffer_id, static_cast<std::uint32_t>(packet.size()),
                       record_len, visible_at, packet.trace_id});
  cmpt_ring_.push();
  if (traced) {
    span_ring_->record(telemetry::SpanStage::completion_write, packet.trace_id,
                       span_start, span_clock_() - span_start);
  }

  dma_.completion_bytes += layout_.total_bytes();
  dma_.rx_frame_bytes += packet.size();
  dma_.descriptor_bytes += config_.rx_descriptor_bytes;
  ++dma_.completions;
  ++dma_.frames;
  return true;
}

std::size_t NicSimulator::poll(std::span<RxEvent> out) const {
  // Each poll advances the doorbell clock; a delayed completion blocks
  // itself and everything behind it (the tail pointer is FIFO) until its
  // visibility poll is reached.
  ++poll_seq_;
  const std::size_t limit = std::min(out.size(), cmpt_ring_.size());
  std::size_t n = 0;
  for (; n < limit; ++n) {
    const InflightFrame& frame = inflight_[n];
    if (frame.visible_at_poll > poll_seq_) {
      break;
    }
    // The n-th pending record is n entries past the tail.
    out[n].record = cmpt_ring_.peek(cmpt_ring_.tail() + n).first(frame.record_len);
    out[n].frame = buffers_.buffer(frame.buffer_id).first(frame.frame_len);
    out[n].trace_id = frame.trace_id;
  }
  return n;
}

void NicSimulator::advance(std::size_t n) {
  if (n > cmpt_ring_.size() || n > inflight_.size()) {
    throw Error(ErrorKind::simulation,
                "advance(" + std::to_string(n) + ") exceeds pending completions");
  }
  for (std::size_t i = 0; i < n; ++i) {
    cmpt_ring_.pop();
    buffers_.release(inflight_[i].buffer_id);
  }
  inflight_.erase(inflight_.begin(),
                  inflight_.begin() + static_cast<std::ptrdiff_t>(n));
}

void NicSimulator::swap_layout(core::CompiledLayout layout) {
  if (pending() != 0) {
    throw Error(ErrorKind::simulation,
                "swap_layout with completions pending (drain first)");
  }
  layout_ = std::move(layout);
  cmpt_ring_ = ByteRing(config_.cmpt_ring_entries,
                        std::max<std::size_t>(layout_.total_bytes(), 1));
  scratch_values_.assign(layout_.slices().size(), 0);
  inflight_.clear();
  last_record_.clear();
}

void NicSimulator::configure_tx(core::CompiledLayout tx_layout) {
  tx_layout_ = std::move(tx_layout);
}

void NicSimulator::tx_post(std::span<const std::uint8_t> desc,
                           std::span<const std::uint8_t> frame) {
  if (!tx_layout_) {
    throw Error(ErrorKind::simulation, "tx_post before configure_tx");
  }
  // Fault model: the DMA read of the descriptor returns corrupted or short
  // bytes, so the DescParser walks garbage (mis-parse).  A truncated read
  // surfaces as the typed too-short error below.
  std::vector<std::uint8_t> misparsed;
  if (faults_ && faults_->roll(FaultClass::tx_misparse)) {
    misparsed.assign(desc.begin(), desc.end());
    const std::size_t len = faults_->corrupt_descriptor(misparsed);
    misparsed.resize(len);
    desc = misparsed;
  }
  const core::CompiledLayout& fmt = *tx_layout_;
  if (desc.size() < fmt.total_bytes()) {
    throw Error(ErrorKind::simulation,
                "posted descriptor smaller than the configured TX format");
  }
  using softnic::SemanticId;
  const auto field = [&](SemanticId id) -> std::uint64_t {
    return fmt.find(id) != nullptr ? fmt.read(desc, id) : 0;
  };

  // The descriptor's length field governs how much of the buffer is sent.
  std::size_t len = static_cast<std::size_t>(field(SemanticId::tx_buf_len));
  if (len == 0 || len > frame.size()) {
    len = frame.size();
  }
  std::vector<std::uint8_t> wire(frame.begin(),
                                 frame.begin() + static_cast<std::ptrdiff_t>(len));

  // Offload execution order mirrors real pipelines: tag insertion first,
  // then segmentation, then checksum insertion per resulting frame.  The
  // helpers reject impossible requests (double VLAN tag, unparsable frame)
  // with standard exceptions; a mis-parsed descriptor can trigger any of
  // them, so translate into the typed simulation error — the datapath
  // contract is that only Error escapes tx_post.
  std::vector<std::vector<std::uint8_t>> frames;
  try {
    const std::uint64_t vlan = field(SemanticId::tx_vlan_insert);
    if (vlan != 0) {
      wire = net::insert_vlan(wire, static_cast<std::uint16_t>(vlan));
    }
    if (field(SemanticId::tx_tso_en) != 0) {
      const std::size_t mss =
          static_cast<std::size_t>(field(SemanticId::tx_tso_mss));
      frames = net::tso_segment(wire, mss == 0 ? 1460 : mss);
    } else {
      frames.push_back(std::move(wire));
    }
    if (field(SemanticId::tx_csum_en) != 0) {
      for (auto& out : frames) {
        net::patch_l4_checksum(out);
      }
    }
  } catch (const Error&) {
    throw;
  } catch (const std::exception& err) {
    throw Error(ErrorKind::simulation,
                std::string("tx offload rejected descriptor/frame: ") +
                    err.what());
  }

  for (auto& out : frames) {
    dma_.descriptor_bytes += fmt.total_bytes();
    transmitted_.push_back(std::move(out));
  }
}

}  // namespace opendesc::sim
