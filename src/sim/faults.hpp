// Deterministic fault injection for the simulated NICs.
//
// Real devices fail in ways the descriptor contract cannot prevent: firmware
// writes a torn or stale completion, a DMA engine truncates a record, a
// doorbell update is delayed, an MMIO register write is silently lost.  The
// FaultInjector reproduces each of these classes on demand — seeded, so a
// (config, schedule) pair always yields the identical fault sequence — and
// the hardened host datapath (runtime/guard.hpp) is tested against it.
//
// Injection sites:
//  * NicSimulator::rx / ProgrammableNic::rx — record bit flips, truncation,
//    stale/duplicated ring entries, dropped completions, delayed doorbells;
//  * NicSimulator::tx_post — descriptor mis-parses (corrupted/truncated
//    descriptor bytes before the DescParser sees them);
//  * ProgrammableNic::write_register / program — dropped register writes and
//    partially applied context assignments.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/rng.hpp"

namespace opendesc::sim {

/// Every injectable fault class.
enum class FaultClass : std::size_t {
  record_bitflip,        ///< completion-record bit flips after sealing
  record_truncate,       ///< completion record cut short
  record_stale,          ///< slot overwritten with the previous record
  completion_drop,       ///< frame accepted, completion never written
  doorbell_delay,        ///< completion visible only N polls late
  tx_misparse,           ///< TX descriptor corrupted before parsing
  ctrl_write_drop,       ///< register write silently lost
  ctrl_partial_program,  ///< program() applies only a prefix
};

inline constexpr std::size_t kFaultClassCount = 8;

[[nodiscard]] std::string_view to_string(FaultClass fault) noexcept;

/// Per-class injection probabilities plus shaping knobs.  All probabilities
/// are per-opportunity (per received packet, per posted descriptor, per
/// register write).
struct FaultConfig {
  std::uint64_t seed = 1;
  std::array<double, kFaultClassCount> probability{};  ///< indexed by FaultClass

  std::uint32_t max_bitflips = 4;        ///< bits flipped per corrupted record
  std::uint32_t doorbell_delay_polls = 3;///< extra polls before visibility

  [[nodiscard]] double& rate(FaultClass fault) noexcept {
    return probability[static_cast<std::size_t>(fault)];
  }
  [[nodiscard]] double rate(FaultClass fault) const noexcept {
    return probability[static_cast<std::size_t>(fault)];
  }

  /// Uniform composite rate: every class injected with probability `rate`.
  [[nodiscard]] static FaultConfig composite(double rate, std::uint64_t seed);
};

/// Injection counters, by class.
struct FaultStats {
  std::array<std::uint64_t, kFaultClassCount> injected{};

  [[nodiscard]] std::uint64_t count(FaultClass fault) const noexcept {
    return injected[static_cast<std::size_t>(fault)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : injected) {
      sum += n;
    }
    return sum;
  }
  void reset() noexcept { injected = {}; }
};

/// What the injector decided to do to one completion record.  Produced
/// before the record is DMA'd so the simulators can apply the faults at the
/// right pipeline stage.
struct RecordFaultPlan {
  bool drop_completion = false;   ///< do not write the record at all
  bool stale = false;             ///< replace with the previous record bytes
  bool bitflip = false;           ///< flip 1..max_bitflips bits
  std::size_t truncate_to = 0;    ///< 0 = full length, else shortened length
  std::uint32_t delay_polls = 0;  ///< 0 = visible immediately
};

/// Seeded fault source shared by the simulators.  One injector instance per
/// device; every decision consumes PRNG state in call order, so a fixed
/// (seed, schedule) pair reproduces the exact same fault pattern.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config), rng_(config.seed) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// One Bernoulli draw for `fault`; counts the injection when it fires.
  [[nodiscard]] bool roll(FaultClass fault) {
    const bool fire = rng_.chance(config_.rate(fault));
    if (fire) {
      ++stats_.injected[static_cast<std::size_t>(fault)];
    }
    return fire;
  }

  /// Draws the fault plan for one completion record of `record_bytes`.
  /// A dropped completion short-circuits the other record faults.
  [[nodiscard]] RecordFaultPlan plan_record(std::size_t record_bytes);

  /// Applies bit flips to a sealed record (1..max_bitflips random bits).
  void corrupt_record(std::span<std::uint8_t> record);

  /// Corrupts a TX descriptor in place: either bit flips or truncation
  /// (returns the new length; <= desc.size()).
  [[nodiscard]] std::size_t corrupt_descriptor(std::span<std::uint8_t> desc);

  /// Raw generator access for schedule-level randomness (tests).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  FaultConfig config_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace opendesc::sim
