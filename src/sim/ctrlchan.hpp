// The implicit control channel (Fig. 2): "configuration and control
// messages, typically handled out-of-band via mechanisms like MMIO writes
// to hardware registers."
//
// ProgrammableNic models a device that owns its *entire* completion
// deparser: every enumerated completion path is loaded, and per-queue
// context registers — programmed by the host through the RegisterFile —
// select which path the hardware walks for each received packet.  This is
// the step beyond NicSimulator (which is pre-configured with one layout):
// the host takes a CompileResult's context_assignment and programs it over
// the control channel, exactly as a generated driver would.
#pragma once

#include "core/paths.hpp"
#include "sim/nicsim.hpp"

namespace opendesc::sim {

/// Host-visible context registers, keyed by the P4 context field path
/// ("ctx.use_rss").  Unwritten registers read as zero, like real MMIO.
class RegisterFile {
 public:
  void write(const std::string& path, std::uint64_t value) {
    values_[path] = value;
  }
  [[nodiscard]] std::uint64_t read(const std::string& path) const {
    const auto it = values_.find(path);
    return it == values_.end() ? 0 : it->second;
  }
  void program(const p4::ConstEnv& assignment) {
    for (const auto& [path, value] : assignment) {
      values_[path] = value;
    }
  }
  [[nodiscard]] const p4::ConstEnv& values() const noexcept { return values_; }

  /// Readback verification: every register whose current value differs from
  /// `assignment`, as "path (expected E, read R)" strings.  Empty when the
  /// assignment took effect — the building block of verify-after-write
  /// control programming.
  [[nodiscard]] std::vector<std::string> mismatches(
      const p4::ConstEnv& assignment) const;

  /// True when readback matches `assignment` exactly.
  [[nodiscard]] bool verify(const p4::ConstEnv& assignment) const {
    return mismatches(assignment).empty();
  }

 private:
  p4::ConstEnv values_;
};

/// A NIC loaded with every completion path of its deparser; the control
/// channel picks the active one.
class ProgrammableNic {
 public:
  /// `paths` come from core::enumerate_paths on the device's deparser;
  /// `endian` from core::deparser_endian.  Completion-ring entries are
  /// sized for the largest path.  Throws Error(simulation) on empty paths.
  ProgrammableNic(std::string nic_name, std::vector<core::CompletionPath> paths,
                  Endian endian, const softnic::ComputeEngine& engine,
                  SimConfig config = {});

  /// The control channel.  Register writes take effect on the next rx();
  /// reconfiguring with completions pending is rejected (drain first), as
  /// real drivers quiesce a queue before reprogramming it.
  ///
  /// Under fault injection writes may be silently dropped
  /// (FaultClass::ctrl_write_drop) and program() may apply only a prefix of
  /// the assignment (FaultClass::ctrl_partial_program) — exactly the
  /// failure modes rt::program_with_verify detects via readback.
  void program(const p4::ConstEnv& assignment);
  void write_register(const std::string& path, std::uint64_t value);
  [[nodiscard]] const RegisterFile& registers() const noexcept { return registers_; }

  /// The layout the current register values select.  Throws
  /// Error(simulation) when no path matches, or — naming the conflicting
  /// path ids — when several match (a misprogrammed device).
  [[nodiscard]] const core::CompiledLayout& active_layout() const;
  [[nodiscard]] const std::string& active_path_id() const;

  /// Guards every completion record: each layout grows a 16-bit integrity
  /// tag the host can validate.  Call before any traffic (throws with
  /// completions pending).
  void enable_guard();

  /// Datapath (same contract as NicSimulator).
  bool rx(const net::Packet& packet);
  [[nodiscard]] std::size_t poll(std::span<RxEvent> out) const;
  void advance(std::size_t n);
  [[nodiscard]] std::size_t pending() const noexcept { return ring_.size(); }
  [[nodiscard]] const DmaAccounting& dma() const noexcept { return dma_; }
  [[nodiscard]] std::size_t free_buffers() const noexcept {
    return buffers_.free_count();
  }

  /// Attaches a fault injector (nullptr detaches); must outlive the NIC.
  void set_fault_injector(FaultInjector* injector) noexcept { faults_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return faults_; }

 private:
  void reselect();

  std::string nic_name_;
  std::vector<core::CompletionPath> paths_;
  std::vector<core::CompiledLayout> layouts_;  ///< one per path
  const softnic::ComputeEngine& engine_;
  SimConfig config_;
  RegisterFile registers_;
  std::size_t active_ = 0;
  std::vector<std::size_t> matched_;  ///< all paths the registers satisfy
  bool active_valid_ = false;
  softnic::RxContext ctx_;
  ByteRing ring_;
  BufferPool buffers_;
  struct Inflight {
    std::uint32_t buffer_id;
    std::uint32_t frame_len;
    std::uint32_t record_len;
    std::uint64_t visible_at_poll;
  };
  std::vector<Inflight> inflight_;
  DmaAccounting dma_;
  FaultInjector* faults_ = nullptr;
  std::vector<std::uint8_t> last_record_;
  mutable std::uint64_t poll_seq_ = 0;
};

}  // namespace opendesc::sim
