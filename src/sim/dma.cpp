#include "sim/dma.hpp"

// Header-only definitions; this TU anchors the library target.
namespace opendesc::sim {}
