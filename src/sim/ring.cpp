#include "sim/ring.hpp"

#include "common/error.hpp"

namespace opendesc::sim {

namespace {

bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace

ByteRing::ByteRing(std::size_t entries, std::size_t entry_size)
    : entries_(entries), entry_size_(entry_size), mask_(entries - 1),
      storage_(entries * entry_size) {
  if (!is_power_of_two(entries)) {
    throw Error(ErrorKind::simulation, "ring entries must be a power of two");
  }
  if (entry_size == 0) {
    throw Error(ErrorKind::simulation, "ring entry size must be positive");
  }
}

std::span<std::uint8_t> ByteRing::produce_slot() noexcept {
  if (full()) {
    return {};
  }
  return std::span<std::uint8_t>(storage_).subspan(slot_offset(head_), entry_size_);
}

void ByteRing::push() noexcept {
  if (!full()) {
    ++head_;
  }
}

std::span<const std::uint8_t> ByteRing::front() const noexcept {
  if (empty()) {
    return {};
  }
  return std::span<const std::uint8_t>(storage_).subspan(slot_offset(tail_),
                                                         entry_size_);
}

void ByteRing::pop() noexcept {
  if (!empty()) {
    ++tail_;
  }
}

BufferPool::BufferPool(std::size_t buffer_count, std::size_t buffer_size)
    : buffer_size_(buffer_size), storage_(buffer_count * buffer_size),
      in_use_(buffer_count, false) {
  if (buffer_count == 0 || buffer_size == 0) {
    throw Error(ErrorKind::simulation, "buffer pool dimensions must be positive");
  }
  free_.reserve(buffer_count);
  for (std::size_t i = buffer_count; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

bool BufferPool::allocate(std::uint32_t& id) noexcept {
  if (free_.empty()) {
    return false;
  }
  id = free_.back();
  free_.pop_back();
  in_use_[id] = true;
  return true;
}

void BufferPool::release(std::uint32_t id) {
  if (id >= in_use_.size() || !in_use_[id]) {
    throw Error(ErrorKind::simulation,
                "BufferPool::release of invalid or free buffer " +
                    std::to_string(id));
  }
  in_use_[id] = false;
  free_.push_back(id);
}

std::span<std::uint8_t> BufferPool::buffer(std::uint32_t id) {
  if (id >= in_use_.size()) {
    throw Error(ErrorKind::simulation, "invalid buffer id");
  }
  return std::span<std::uint8_t>(storage_).subspan(id * buffer_size_, buffer_size_);
}

std::span<const std::uint8_t> BufferPool::buffer(std::uint32_t id) const {
  if (id >= in_use_.size()) {
    throw Error(ErrorKind::simulation, "invalid buffer id");
  }
  return std::span<const std::uint8_t>(storage_).subspan(id * buffer_size_,
                                                         buffer_size_);
}

}  // namespace opendesc::sim
