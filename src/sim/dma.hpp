// DMA accounting and a simple bandwidth model.
//
// Real descriptor/completion traffic shares PCIe bandwidth with packet
// payloads; the paper's Eq. 1 therefore penalizes large completions.  The
// simulator counts every byte moved in each direction so benches can report
// the completion-footprint share and convert byte counts into time under a
// configurable link model.
#pragma once

#include <cstdint>

namespace opendesc::sim {

/// Byte counters for one simulated device.
struct DmaAccounting {
  std::uint64_t completion_bytes = 0;   ///< NIC → host completion records
  std::uint64_t rx_frame_bytes = 0;     ///< NIC → host packet payloads
  std::uint64_t descriptor_bytes = 0;   ///< host → NIC posted descriptors
  std::uint64_t completions = 0;
  std::uint64_t frames = 0;
  std::uint64_t drops = 0;              ///< total drops (sum of the causes)

  // Per-cause breakdown of `drops` — operators need to know *why* a device
  // sheds load (undersized ring vs exhausted pool vs oversize frames).
  std::uint64_t drops_ring_full = 0;
  std::uint64_t drops_pool_exhausted = 0;
  std::uint64_t drops_oversize = 0;

  [[nodiscard]] std::uint64_t total_to_host() const noexcept {
    return completion_bytes + rx_frame_bytes;
  }
  void reset() noexcept { *this = DmaAccounting{}; }
};

/// Linear PCIe-style link model: fixed per-transaction overhead plus a
/// per-byte cost.  Defaults approximate a x8 Gen3 link (~7.9 GB/s usable →
/// ~0.127 ns/byte) with a 24-byte TLP header overhead per transaction.
struct DmaLinkModel {
  double ns_per_byte = 0.127;
  double ns_per_transaction = 3.0;
  std::size_t max_payload = 256;  ///< bytes per TLP

  /// Time to move `bytes` as a sequence of TLPs.
  [[nodiscard]] double transfer_ns(std::uint64_t bytes) const noexcept {
    if (bytes == 0) {
      return 0.0;
    }
    const std::uint64_t tlps = (bytes + max_payload - 1) / max_payload;
    return static_cast<double>(bytes) * ns_per_byte +
           static_cast<double>(tlps) * ns_per_transaction;
  }

  /// Packets/second achievable when each packet moves `frame_bytes` +
  /// `completion_bytes` over the link (link-bound rate).
  [[nodiscard]] double packets_per_second(std::uint64_t frame_bytes,
                                          std::uint64_t completion_bytes) const {
    const double per_packet_ns =
        transfer_ns(frame_bytes) + transfer_ns(completion_bytes);
    return per_packet_ns <= 0.0 ? 0.0 : 1e9 / per_packet_ns;
  }
};

}  // namespace opendesc::sim
