#include "engine/steering.hpp"

#include "common/bytes.hpp"
#include "net/headers.hpp"

namespace opendesc::engine {

RssSteering::RssSteering(SteeringConfig config) : config_(config) {
  if (config_.queues == 0) {
    config_.queues = 1;
  }
  std::size_t entries = 2;
  while (entries < config_.table_size) {
    entries <<= 1;
  }
  // Round-robin fill, as drivers program it by default: queue i serves
  // every table_size/queues-th bucket, spreading hash space evenly.
  table_.resize(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    table_[i] = static_cast<std::uint16_t>(i % config_.queues);
  }
}

namespace {

/// Independent 40-byte key for the secondary flow-key hash: the default
/// RSS key reversed and whitened, so the two Toeplitz passes decorrelate
/// while staying equally NIC-programmable (it is just another RSS key).
constexpr std::array<std::uint8_t, 40> make_secondary_key() {
  std::array<std::uint8_t, 40> key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(
        softnic::kDefaultRssKey[key.size() - 1 - i] ^ 0xA5);
  }
  return key;
}
constexpr std::array<std::uint8_t, 40> kSecondaryRssKey = make_secondary_key();

/// Minimal L2/L3 walk extracting the Toeplitz tuple bytes into `input`.
/// Returns the tuple length, 0 when the frame has no steerable tuple.
/// Offsets mirror net::PacketView::parse, but nothing is decoded beyond
/// what the tuple needs.
std::size_t extract_tuple(std::span<const std::uint8_t> frame,
                          std::uint8_t (&input)[36]) noexcept {
  std::size_t l3 = net::EthernetHeader::kWireSize;
  if (frame.size() < l3) {
    return 0;
  }
  std::uint16_t ethertype = load_be16(frame.data() + 12);
  if (ethertype == net::kEthertypeVlan) {
    l3 += net::VlanTag::kWireSize;
    if (frame.size() < l3) {
      return 0;
    }
    ethertype = load_be16(frame.data() + l3 - 2);
  }

  // The Toeplitz input is the tuple's wire bytes: addresses (and ports) are
  // already big-endian on the wire, exactly as softnic::rss_* re-serialize
  // them — hash the frame in place, no decode round-trip.
  std::size_t input_len = 0;
  std::size_t l4 = 0;
  std::uint8_t proto = 0;

  if (ethertype == net::kEthertypeIpv4) {
    if (frame.size() < l3 + net::Ipv4Header::kWireSize) {
      return 0;
    }
    const std::size_t ihl = (frame[l3] & 0x0F) * std::size_t{4};
    if (ihl < net::Ipv4Header::kWireSize || frame.size() < l3 + ihl) {
      return 0;
    }
    proto = frame[l3 + 9];
    std::copy(frame.begin() + static_cast<std::ptrdiff_t>(l3 + 12),
              frame.begin() + static_cast<std::ptrdiff_t>(l3 + 20), input);
    input_len = 8;
    l4 = l3 + ihl;
  } else if (ethertype == net::kEthertypeIpv6) {
    if (frame.size() < l3 + net::Ipv6Header::kWireSize) {
      return 0;
    }
    proto = frame[l3 + 6];
    std::copy(frame.begin() + static_cast<std::ptrdiff_t>(l3 + 8),
              frame.begin() + static_cast<std::ptrdiff_t>(l3 + 40), input);
    input_len = 32;
    l4 = l3 + net::Ipv6Header::kWireSize;
  } else {
    return 0;
  }

  if ((proto == net::kIpProtoTcp || proto == net::kIpProtoUdp) &&
      frame.size() >= l4 + 4) {
    input[input_len] = frame[l4];
    input[input_len + 1] = frame[l4 + 1];
    input[input_len + 2] = frame[l4 + 2];
    input[input_len + 3] = frame[l4 + 3];
    input_len += 4;
  }
  return input_len;
}

}  // namespace

std::uint32_t RssSteering::hash(std::span<const std::uint8_t> frame) const noexcept {
  std::uint8_t input[36];
  const std::size_t input_len = extract_tuple(frame, input);
  if (input_len == 0) {
    return 0;
  }
  return softnic::toeplitz_hash(config_.key, {input, input_len});
}

RssSteering::FlowHash RssSteering::flow_hash(
    std::span<const std::uint8_t> frame) const noexcept {
  std::uint8_t input[36];
  const std::size_t input_len = extract_tuple(frame, input);
  if (input_len == 0) {
    return {};
  }
  const std::uint32_t h1 =
      softnic::toeplitz_hash(config_.key, {input, input_len});
  const std::uint32_t h2 =
      softnic::toeplitz_hash(kSecondaryRssKey, {input, input_len});
  return {h1, (static_cast<std::uint64_t>(h2) << 32) | h1};
}

}  // namespace opendesc::engine
