// Multi-queue parallel datapath engine.
//
// The paper's completion deparser already carries an RSS hash semantic; this
// subsystem supplies the host half of that story: N hardware queues, each a
// full sim::NicSimulator (own completion ring, buffer pool, doorbell clock
// and DmaAccounting), fed by a steering thread that plays the device's RSS
// classifier (engine::RssSteering, same Toeplitz the deparser writes), and
// drained by one ValidatingRxLoop worker per queue — the hardened PR-1
// datapath runs unchanged per shard, consuming packets over a lock-free
// SPSC handoff with batched completion consumption and an arena-backed
// quarantine buffer of its own.
//
// Shard counters are published to an engine::StatsRegistry after every
// batch (epoch/snapshot protocol, no hot-path locks) and aggregated with
// RxLoopStats::operator+= once the workers quiesce, so totals are exact.
//
// Throughput accounting follows the repo convention that *host-side* cost
// is what we measure (the NIC-side rx() simulation stands in for silicon
// and is untimed): each worker's host_ns runs on its per-thread CPU clock,
// and the engine's packets/sec is total packets over the slowest shard's
// host_ns — the rate an N-core host sustains, independent of how many cores
// the machine running the simulation happens to have.  Wall time is
// reported alongside, unmodelled.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/compiler.hpp"
#include "engine/stats.hpp"
#include "engine/steering.hpp"
#include "flow/flowtable.hpp"
#include "net/workload.hpp"
#include "runtime/engine_config.hpp"
#include "runtime/epoch.hpp"
#include "runtime/guard.hpp"
#include "runtime/provided.hpp"
#include "sim/faults.hpp"
#include "sim/nicsim.hpp"
#include "telemetry/health.hpp"
#include "telemetry/server.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc::engine {

class LivePublisher;  // publish.hpp; engine.cpp owns the definition

// The engine is configured with the unified rt::EngineConfig (see
// runtime/engine_config.hpp); the old engine::EngineConfig spelling keeps
// working through this alias.
using EngineConfig = rt::EngineConfig;

/// Outcome of one engine run.
struct EngineReport {
  rt::RxLoopStats total;                    ///< operator+= over all shards
  std::vector<rt::RxLoopStats> per_queue;
  std::vector<std::uint64_t> offered;       ///< packets steered per queue
  std::uint64_t offered_total = 0;
  std::vector<std::uint64_t> quarantine_total;  ///< dead-letter count/shard
  double wall_ns = 0.0;      ///< real elapsed time of the whole run
  double steering_ns = 0.0;  ///< dispatch-thread classify+handoff CPU time
                             ///< (device-side role, kept out of host cost)

  /// Per-semantic reads split by serving path across every queue, for this
  /// run only: facade deltas (hw-consumed packets) plus the loops' recovery
  /// counters — per semantic, nic_path + softnic_shim + unavailable equals
  /// the packets processed.
  rt::SemanticPathCounters semantic_paths;

  /// Per-stage batch-latency histograms for this run only (delta over the
  /// sink's cumulative stage histograms, indexed by telemetry::Stage).
  /// Empty when no telemetry sink was attached.
  std::vector<telemetry::HistogramData> stage_latency;

  /// Cycle-accounting profile for this run only (delta over the sink
  /// profiler's cumulative shards): per-lane and per-epoch stage ns, work
  /// vs wait split, sampling strides.  Empty shards when no sink was
  /// attached or config.profile is off.
  telemetry::ProfileCapture profile;

  /// Slowest shard's host-side processing time: with one core per queue,
  /// the run completes when the busiest worker does.
  [[nodiscard]] double critical_path_ns() const noexcept;
  /// Host-datapath capacity: total packets over the critical path.
  [[nodiscard]] double packets_per_second() const noexcept;
  /// Throughput against real elapsed time (bounded by the machine's cores).
  [[nodiscard]] double wall_packets_per_second() const noexcept;
};

/// N-queue receive engine over one compiled (NIC, intent) contract.
///
/// The engine owns per-queue strategies and steering; each run() builds
/// fresh per-queue devices, injectors and hardened loops, so every run's
/// DmaAccounting and fault schedule is self-contained and a fixed
/// (workload seed, fault seed, queue count) triple is fully deterministic.
class MultiQueueEngine {
 public:
  /// `result` and `compute` must outlive the engine.
  MultiQueueEngine(const core::CompileResult& result,
                   const softnic::ComputeEngine& compute,
                   EngineConfig config = {});
  ~MultiQueueEngine();

  /// Steers and consumes an already-materialized trace (packets copied in;
  /// the caller's buffer is untouched).
  [[nodiscard]] EngineReport run(std::span<const net::Packet> packets);

  /// Steers and consumes `count` packets drawn from `workload`.
  [[nodiscard]] EngineReport run(net::WorkloadGenerator& workload,
                                 std::size_t count);

  /// Overrides the semantics the workers request per packet (defaults to
  /// the compiled intent's requested set).  Applies to the current layout
  /// epoch; a committed swap reverts to the new compilation's intent.
  void set_wanted(std::vector<softnic::SemanticId> wanted) {
    wanted_ = wanted;
    epochs_->override_wanted(std::move(wanted));
  }

  // --- Live layout evolution -----------------------------------------------

  /// Queues a hot-swap order.  The dispatch thread of the in-flight (or
  /// next) run applies it once `request.at_offered` packets have been
  /// steered: the target compilation is verified against a live control
  /// channel and, on success, cut over queue by queue behind drain barriers;
  /// on failure the engine stays on its current epoch.  Thread-safe.
  void request_swap(rt::SwapRequest request);

  /// Installs a round-robin swap schedule: with config.swap_every > 0 the
  /// dispatch thread swaps to the next compilation in `cycle` every
  /// swap_every offered packets.  The shared_ptrs keep the compilations
  /// alive for as long as any epoch references them.
  void set_swap_cycle(
      std::vector<std::shared_ptr<const core::CompileResult>> cycle);

  /// The epoch control plane: current generation, swap history, per-epoch
  /// accounting (the /layout payload).
  [[nodiscard]] const rt::LayoutEpochManager& epochs() const noexcept {
    return *epochs_;
  }

  [[nodiscard]] const RssSteering& steering() const noexcept { return steering_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const core::CompiledLayout& wire_layout() const noexcept {
    return wire_layout_;
  }
  [[nodiscard]] std::span<const softnic::SemanticId> wanted() const noexcept {
    return wanted_;
  }
  /// Live shard counters (valid during a run; exact after it returns).
  [[nodiscard]] const StatsRegistry& stats() const noexcept { return stats_; }

  /// The embedded observability server (null unless config.listen is set).
  /// Serving starts with construction and outlives individual runs; /readyz
  /// turns 200 once every queue of the active run has published a batch.
  [[nodiscard]] telemetry::ObservabilityServer* server() noexcept {
    return server_.get();
  }
  /// The sink the engine actually records into: the configured one, or the
  /// engine-owned sink created to back an embedded server.
  [[nodiscard]] telemetry::Sink* sink() noexcept { return config_.telemetry; }

  /// The health monitor's windowed time-series store (null unless the
  /// monitor is active: a server, health rules, or with_monitor(true)).
  [[nodiscard]] const telemetry::TimeSeriesStore* timeseries() const noexcept {
    return store_.get();
  }
  /// The SLO rule engine (null unless health rules were configured).
  [[nodiscard]] const telemetry::HealthEngine* health() const noexcept {
    return health_.get();
  }
  /// Sampler ticks completed so far (0 when the monitor is off).
  [[nodiscard]] std::uint64_t monitor_ticks() const noexcept {
    return sampler_ != nullptr ? sampler_->ticks() : 0;
  }

  /// The engine-owned flow table (null unless config.flows > 0).  One
  /// shard per queue; shard q is written exclusively by queue q's worker.
  [[nodiscard]] const flow::FlowTable* flow_table() const noexcept {
    return flow_table_.get();
  }
  /// The /flows payload for this engine: JSON, or the flat TSV pane form
  /// when `tsv` is set.  Thread-safe (reads the table's atomic counters).
  [[nodiscard]] std::string flows_status(bool tsv) const;

  /// Authenticated POST /layout body handler (the server checks the token
  /// first): parses {"target":"next"|index, "at_offered":N}, queues the
  /// swap from the installed swap cycle and answers 202 with what was
  /// queued.  409 when no cycle is installed, 400 on a bad target.
  [[nodiscard]] http::Response swap_from_request(const http::Request& request);

  /// GET /flows with optional ?records=N|all: the summary JSON extended
  /// with a "records" array streamed page by page out of the flow table.
  /// Record scans read non-atomic slots, so they are only served while no
  /// run is in flight (503 mid-run); the summary form stays always-safe.
  [[nodiscard]] http::Response flows_json_response(const http::Request& request);

 private:
  template <typename NextFn>
  EngineReport run_impl(NextFn&& next);

  /// Lock-free /readyz probe (runs on server worker threads).
  [[nodiscard]] bool ready() const noexcept;

  const core::CompileResult* result_;
  const softnic::ComputeEngine* compute_;
  EngineConfig config_;
  core::CompiledLayout wire_layout_;  ///< construction-time (epoch 1) layout
  RssSteering steering_;
  StatsRegistry stats_;
  std::vector<softnic::SemanticId> wanted_;

  // Layout-epoch control plane.  Constructed after the telemetry sink is
  // final (it publishes swap metrics there); per-queue accessor tables live
  // inside its generations, not on the engine.
  std::unique_ptr<rt::LayoutEpochManager> epochs_;
  /// Per-queue-sharded flow state (config.flows > 0).  Declared before the
  /// monitor plane: the server's /flows route and the sampler both read it,
  /// so it must outlive them in teardown.
  std::unique_ptr<flow::FlowTable> flow_table_;
  std::mutex swap_mutex_;
  std::deque<rt::SwapRequest> swap_queue_;
  std::vector<std::shared_ptr<const core::CompileResult>> swap_cycle_;
  /// Round-robin cursor for POST /layout {"target":"next"} orders.
  std::atomic<std::size_t> post_cycle_index_{0};

  // Health-monitor plane.  Declaration order is load-bearing for teardown:
  // the sampler (last member) stops first, then the server (whose routes
  // read the store and rule engine), then the monitor state, then the
  // owned sink everything records into.
  std::unique_ptr<telemetry::Sink> owned_sink_;  ///< backs an embedded server
  std::unique_ptr<telemetry::TimeSeriesStore> store_;
  std::unique_ptr<LivePublisher> live_;      ///< in-run counter publication
  std::unique_ptr<telemetry::HealthEngine> health_;
  std::unique_ptr<telemetry::ObservabilityServer> server_;
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::atomic<bool> running_{false};        ///< a run is in flight
  std::atomic<std::uint64_t> runs_done_{0};
  /// stats_ epochs at the current run's start.  Atomic elements: a probe
  /// that read running_ just before a run boundary may read these while the
  /// next run writes them — it sees a transient value, never a race.
  std::unique_ptr<std::atomic<std::uint64_t>[]> run_start_epochs_;
};

}  // namespace opendesc::engine

namespace opendesc::rt {
// Facade-level re-exports: runtime users configure the parallel datapath
// with rt::EngineConfig{...} next to the rest of the host-side API.
using engine::EngineReport;
using engine::MultiQueueEngine;
}  // namespace opendesc::rt
