#include "engine/stats.hpp"

#include <bit>

namespace opendesc::engine {

std::array<std::uint64_t, kStatsWords> encode_stats(
    const rt::RxLoopStats& stats) noexcept {
  return {
      stats.packets,
      stats.drops,
      stats.value_checksum,
      std::bit_cast<std::uint64_t>(stats.host_ns),
      stats.completion_bytes,
      stats.frame_bytes,
      stats.drops_ring_full,
      stats.drops_pool_exhausted,
      stats.drops_oversize,
      stats.hw_consumed,
      stats.quarantined,
      stats.softnic_recovered,
      stats.lost_completions,
      stats.rx_rejected,
      stats.unrecoverable_values,
  };
}

rt::RxLoopStats decode_stats(
    const std::array<std::uint64_t, kStatsWords>& words) noexcept {
  rt::RxLoopStats stats;
  stats.packets = words[0];
  stats.drops = words[1];
  stats.value_checksum = words[2];
  stats.host_ns = std::bit_cast<double>(words[3]);
  stats.completion_bytes = words[4];
  stats.frame_bytes = words[5];
  stats.drops_ring_full = words[6];
  stats.drops_pool_exhausted = words[7];
  stats.drops_oversize = words[8];
  stats.hw_consumed = words[9];
  stats.quarantined = words[10];
  stats.softnic_recovered = words[11];
  stats.lost_completions = words[12];
  stats.rx_rejected = words[13];
  stats.unrecoverable_values = words[14];
  return stats;
}

StatsRegistry::StatsRegistry(std::size_t shards)
    : slots_(shards == 0 ? 1 : shards) {}

void StatsRegistry::publish(std::size_t shard,
                            const rt::RxLoopStats& stats) noexcept {
  Slot& slot = slots_[shard];
  const std::array<std::uint64_t, kStatsWords> words = encode_stats(stats);
  // seq_cst keeps the odd-epoch store, the payload stores and the even-epoch
  // store in a single total order the reader's seq_cst loads observe; no
  // fences to reason about, and publish runs once per batch so the cost is
  // irrelevant.
  const std::uint64_t epoch = slot.epoch.load(std::memory_order_relaxed);
  slot.epoch.store(epoch + 1);  // odd: write in progress
  for (std::size_t i = 0; i < kStatsWords; ++i) {
    slot.words[i].store(words[i]);
  }
  slot.epoch.store(epoch + 2);  // even: stable
}

rt::RxLoopStats StatsRegistry::snapshot(std::size_t shard) const noexcept {
  const Slot& slot = slots_[shard];
  std::array<std::uint64_t, kStatsWords> words{};
  for (;;) {
    const std::uint64_t before = slot.epoch.load();
    if ((before & 1) != 0) {
      continue;  // writer mid-publish
    }
    for (std::size_t i = 0; i < kStatsWords; ++i) {
      words[i] = slot.words[i].load();
    }
    if (slot.epoch.load() == before) {
      return decode_stats(words);
    }
  }
}

rt::RxLoopStats StatsRegistry::aggregate() const noexcept {
  rt::RxLoopStats total;
  for (std::size_t shard = 0; shard < slots_.size(); ++shard) {
    total += snapshot(shard);
  }
  return total;
}

std::uint64_t StatsRegistry::epoch(std::size_t shard) const noexcept {
  return slots_[shard].epoch.load();
}

}  // namespace opendesc::engine
