#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "engine/publish.hpp"
#include "engine/spsc.hpp"
#include "flow/metrics.hpp"
#include "runtime/baselines.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace opendesc::engine {

namespace {

void pin_to_cpu(std::thread& worker, std::size_t index) {
#if defined(__linux__)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cores), &set);
  // Best effort: a failed pin (restricted affinity mask, exotic runtime)
  // only costs locality, never correctness.
  (void)pthread_setaffinity_np(worker.native_handle(), sizeof(set), &set);
#else
  (void)worker;
  (void)index;
#endif
}

double wall_now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// What crosses the SPSC handoff: a packet, or — when `cutover` is set — a
/// drain barrier carrying the generation the worker must adopt.  The worker
/// finishes its in-flight completions against the old epoch's accessors
/// before touching the new one, so a barrier is an end-of-segment marker,
/// not a packet.
struct HandoffItem {
  net::Packet packet;
  /// 64-bit flow key the dispatch thread derived alongside the steering
  /// hash (RssSteering::flow_hash); 0 when flow tracking is off or the
  /// frame has no steerable tuple.  Carried across the handoff so the
  /// worker's shard-local flow-table update never re-walks the headers.
  std::uint64_t flow_key = 0;
  std::shared_ptr<rt::EpochGeneration> cutover;
};

// run_stream assigns completion/frame byte totals and device-side drop
// breakdowns from the NIC's cumulative DmaAccounting.  Within one run the
// device persists across swap segments, so a segment's stats carry totals
// since run start; these two helpers turn them back into per-segment
// deltas (and remember the new cumulative baseline).
void subtract_dma_fields(rt::RxLoopStats& stats, const rt::RxLoopStats& base) {
  const auto sub = [](std::uint64_t& field, std::uint64_t prev) {
    field = field >= prev ? field - prev : 0;
  };
  sub(stats.completion_bytes, base.completion_bytes);
  sub(stats.frame_bytes, base.frame_bytes);
  sub(stats.drops_ring_full, base.drops_ring_full);
  sub(stats.drops_pool_exhausted, base.drops_pool_exhausted);
  sub(stats.drops_oversize, base.drops_oversize);
}

void copy_dma_fields(rt::RxLoopStats& dst, const rt::RxLoopStats& src) {
  dst.completion_bytes = src.completion_bytes;
  dst.frame_bytes = src.frame_bytes;
  dst.drops_ring_full = src.drops_ring_full;
  dst.drops_pool_exhausted = src.drops_pool_exhausted;
  dst.drops_oversize = src.drops_oversize;
}

}  // namespace

double EngineReport::critical_path_ns() const noexcept {
  double worst = 0.0;
  for (const rt::RxLoopStats& shard : per_queue) {
    worst = std::max(worst, shard.host_ns);
  }
  return worst;
}

double EngineReport::packets_per_second() const noexcept {
  const double critical = critical_path_ns();
  return critical <= 0.0
             ? 0.0
             : static_cast<double>(total.packets) * 1e9 / critical;
}

double EngineReport::wall_packets_per_second() const noexcept {
  return wall_ns <= 0.0 ? 0.0
                        : static_cast<double>(total.packets) * 1e9 / wall_ns;
}

MultiQueueEngine::MultiQueueEngine(const core::CompileResult& result,
                                   const softnic::ComputeEngine& compute,
                                   EngineConfig config)
    : result_(&result), compute_(&compute), config_(config),
      wire_layout_(config.guard ? result.layout.with_guard() : result.layout),
      steering_(SteeringConfig{std::max<std::size_t>(1, config.queues),
                               config.rss_table_size,
                               softnic::kDefaultRssKey}),
      stats_(std::max<std::size_t>(1, config.queues)) {
  config_.queues = std::max<std::size_t>(1, config_.queues);
  config_.batch = std::max<std::size_t>(1, config_.batch);
  const std::set<softnic::SemanticId> requested = result.intent.requested();
  wanted_.assign(requested.begin(), requested.end());

  run_start_epochs_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(config_.queues);

  const bool monitor =
      config_.sample_interval_ms > 0 &&
      (config_.monitor || !config_.listen.empty() ||
       !config_.health_rules.empty());
  if (!config_.listen.empty() || monitor) {
    // The embedded server and the health monitor both need a sink; create
    // an engine-owned one when the caller did not attach their own.
    if (config_.telemetry == nullptr) {
      telemetry::SinkConfig sink_config;
      sink_config.queues = config_.queues;
      owned_sink_ = std::make_unique<telemetry::Sink>(sink_config);
      config_.telemetry = owned_sink_.get();
    }
  }
  // The epoch control plane is built once the telemetry sink is final (it
  // publishes opendesc_layout_* there); epoch 1 is the construction-time
  // compilation, and every run adopts whatever generation is current.
  epochs_ = std::make_unique<rt::LayoutEpochManager>(
      compute, config_.queues, config_.guard, config_.telemetry);
  (void)epochs_->bootstrap(result);
  if (config_.flows > 0) {
    // One shard per queue: the RSS indirection table already pins a flow's
    // packets to one worker, so shard q has exactly one writer — queue q.
    flow::FlowTableConfig flow_config;
    flow_config.shards = config_.queues;
    flow_config.slots_per_shard =
        (config_.flows + config_.queues - 1) / config_.queues;
    flow_config.idle_timeout_ns = config_.flow_idle_ns;
    flow_table_ = std::make_unique<flow::FlowTable>(flow_config);
  }
  if (config_.telemetry != nullptr) {
    // Profiler plumbing: tenant attribution and the optional fixed stride
    // are plane-wide settings on the sink's profiler.
    config_.telemetry->profiler().set_tenant(config_.tenant);
    if (config_.profile_stride > 0) {
      config_.telemetry->profiler().set_stride(config_.profile_stride);
    }
    // Register the tenant-labelled flow families up front (zero state when
    // tracking is off) so every scrape carries the golden schema.
    const flow::FlowStats flow_stats =
        flow_table_ != nullptr ? flow_table_->stats() : flow::FlowStats{};
    flow::publish_flow_metrics(config_.telemetry->registry(),
                               flow_table_ != nullptr ? &flow_stats : nullptr,
                               config_.tenant);
    publish_tenant_report(*config_.telemetry, EngineReport{}, config_.tenant);
  }
  if (monitor) {
    telemetry::TimeSeriesConfig ts_config;
    ts_config.tick_seconds =
        static_cast<double>(config_.sample_interval_ms) / 1000.0;
    ts_config.capacity = std::max<std::size_t>(2, config_.timeseries_capacity);
    store_ = std::make_unique<telemetry::TimeSeriesStore>(ts_config);
    live_ = std::make_unique<LivePublisher>(*config_.telemetry, stats_);
    if (!config_.health_rules.empty()) {
      health_ = std::make_unique<telemetry::HealthEngine>(
          telemetry::parse_health_rules(config_.health_rules), *store_,
          config_.telemetry);
    }
  }
  if (!config_.listen.empty()) {
    server_ = std::make_unique<telemetry::ObservabilityServer>(
        *config_.telemetry, http::parse_listen_address(config_.listen));
    server_->set_ready_probe([this] { return ready(); });
    server_->set_tenant(config_.tenant);
    server_->set_timeseries(store_.get());
    server_->set_health(health_.get());
    server_->set_layout([this](bool tsv) { return epochs_->status(tsv); });
    server_->set_flows([this](bool tsv) { return flows_status(tsv); });
    server_->set_flows_json([this](const http::Request& request) {
      return flows_json_response(request);
    });
    if (!config_.swap_token.empty()) {
      server_->set_swap(
          [this](const http::Request& request) {
            return swap_from_request(request);
          },
          config_.swap_token);
    }
    server_->start();
  }
  if (monitor) {
    sampler_ = std::make_unique<telemetry::Sampler>(
        [this] {
          live_->tick();
          if (flow_table_ != nullptr) {
            const flow::FlowStats flow_stats = flow_table_->stats();
            flow::publish_flow_metrics(config_.telemetry->registry(),
                                       &flow_stats, config_.tenant);
          }
          store_->sample(config_.telemetry->registry());
          if (health_ != nullptr) {
            health_->evaluate();
          }
        },
        std::chrono::milliseconds(config_.sample_interval_ms));
    sampler_->start();
  }
}

MultiQueueEngine::~MultiQueueEngine() = default;

std::string MultiQueueEngine::flows_status(bool tsv) const {
  const flow::FlowStatusEntry entry{config_.tenant, flow_table_.get()};
  return flow::render_flows_status({&entry, 1}, tsv);
}

namespace {

/// Minimal top-level field extraction from a small JSON request body:
/// returns the raw token after `"key":` (string values unquoted).  The
/// POST /layout body is two optional scalar fields, not worth a parser.
std::optional<std::string> json_field(const std::string& body,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = body.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  pos = body.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  ++pos;
  while (pos < body.size() &&
         (body[pos] == ' ' || body[pos] == '\t' || body[pos] == '\n' ||
          body[pos] == '\r')) {
    ++pos;
  }
  if (pos >= body.size()) {
    return std::nullopt;
  }
  if (body[pos] == '"') {
    const std::size_t end = body.find('"', pos + 1);
    if (end == std::string::npos) {
      return std::nullopt;
    }
    return body.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < body.size() && body[end] != ',' && body[end] != '}' &&
         body[end] != ' ' && body[end] != '\n' && body[end] != '\r' &&
         body[end] != '\t') {
    ++end;
  }
  return body.substr(pos, end - pos);
}

std::optional<std::uint64_t> parse_u64(const std::string& raw) {
  if (raw.empty()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : raw) {
    if (c < '0' || c > '9' || value > (UINT64_MAX - 9) / 10) {
      return std::nullopt;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

http::Response MultiQueueEngine::swap_from_request(
    const http::Request& request) {
  std::shared_ptr<const core::CompileResult> target;
  std::size_t chosen = 0;
  std::size_t cycle_size = 0;
  {
    const std::lock_guard<std::mutex> lock(swap_mutex_);
    cycle_size = swap_cycle_.size();
    if (cycle_size == 0) {
      throw http::HttpError(
          409, "no swap cycle installed; the engine has nothing to swap to");
    }
    const std::optional<std::string> target_field =
        json_field(request.body, "target");
    if (!target_field || *target_field == "next") {
      chosen = post_cycle_index_.fetch_add(1, std::memory_order_relaxed) %
               cycle_size;
    } else {
      const std::optional<std::uint64_t> index = parse_u64(*target_field);
      if (!index) {
        throw http::HttpError(400, "bad swap target '" + *target_field +
                                       "' (want \"next\" or a cycle index)");
      }
      if (*index >= cycle_size) {
        throw http::HttpError(
            400, "swap target index " + std::to_string(*index) +
                     " out of range (cycle has " + std::to_string(cycle_size) +
                     " layouts)");
      }
      chosen = static_cast<std::size_t>(*index);
    }
    target = swap_cycle_[chosen];
  }

  std::uint64_t at_offered = 0;
  if (const std::optional<std::string> at_field =
          json_field(request.body, "at_offered")) {
    const std::optional<std::uint64_t> value = parse_u64(*at_field);
    if (!value) {
      throw http::HttpError(
          400, "bad at_offered '" + *at_field + "' (want a packet count)");
    }
    at_offered = *value;
  }

  rt::SwapRequest order;
  order.result = std::move(target);
  order.at_offered = at_offered;
  request_swap(std::move(order));

  http::Response response;
  response.status = 202;
  response.content_type = "application/json";
  response.body = "{\"queued\":true,\"cycle_index\":" + std::to_string(chosen) +
                  ",\"cycle_size\":" + std::to_string(cycle_size) +
                  ",\"at_offered\":" + std::to_string(at_offered) + "}";
  return response;
}

http::Response MultiQueueEngine::flows_json_response(
    const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";
  const std::string* records = request.query_get("records");
  if (records == nullptr) {
    response.body = flows_status(false);
    return response;
  }
  if (flow_table_ == nullptr) {
    response.body = "{\"enabled\":false,\"tenants\":[]}";
    return response;
  }
  // Record scans walk the non-atomic slot arrays, which are only coherent
  // from the owning worker or with the datapath quiesced.
  if (running_.load(std::memory_order_acquire)) {
    throw http::HttpError(
        503, "flow records are only scanned while the engine is quiesced");
  }
  std::uint64_t max_records = UINT64_MAX;
  if (*records != "all") {
    max_records = request.query_u64("records").value();  // 400 on malformed
  }

  std::string summary = flows_status(false);
  if (!summary.empty() && summary.back() == '}') {
    summary.pop_back();  // re-open the object to splice the records in
  }

  struct ScanState {
    std::size_t shard = 0;
    std::size_t slot = 0;
    std::uint64_t emitted = 0;
    bool opened = false;
    bool done = false;
  };
  auto state = std::make_shared<ScanState>();
  auto head = std::make_shared<std::string>(std::move(summary));
  const flow::FlowTable* table = flow_table_.get();
  // One bounded page of records per producer call: memory stays at page
  // granularity no matter how many flows are resident.
  response.stream = [table, state, head,
                     max_records](http::ResponseWriter& writer) {
    if (state->done) {
      writer.end();
      return;
    }
    std::string out;
    if (!state->opened) {
      state->opened = true;
      out += *head;
      out += ",\"records\":[";
    }
    constexpr std::size_t kPage = 2048;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPage, max_records - state->emitted));
    std::vector<flow::FlowRecord> page;
    page.reserve(want);
    while (page.size() < want && state->shard < table->shards()) {
      state->slot = table->scan(state->shard, state->slot, want, page);
      if (state->slot >= table->slots_per_shard()) {
        ++state->shard;
        state->slot = 0;
      }
    }
    for (const flow::FlowRecord& record : page) {
      if (state->emitted++ > 0) {
        out += ',';
      }
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"key\":\"%016llx\",\"packets\":%llu,\"bytes\":%llu,"
                    "\"last_seen_ns\":%llu}",
                    static_cast<unsigned long long>(record.key),
                    static_cast<unsigned long long>(record.packets),
                    static_cast<unsigned long long>(record.bytes),
                    static_cast<unsigned long long>(record.last_seen_ns));
      out += buf;
    }
    if (state->shard >= table->shards() || state->emitted >= max_records) {
      out += "]}";
      state->done = true;
    }
    writer.write(out);
    if (state->done) {
      writer.end();
    }
  };
  return response;
}

bool MultiQueueEngine::ready() const noexcept {
  if (!running_.load(std::memory_order_acquire)) {
    // Between runs: ready once the engine has completed one, i.e. it has
    // demonstrated the whole datapath works.
    return runs_done_.load(std::memory_order_acquire) > 0;
  }
  // Mid-run: every queue must have published at least one batch since the
  // run began — a stuck worker (or a queue the steering never feeds) keeps
  // /readyz at 503 while /healthz stays 200.
  for (std::size_t q = 0; q < config_.queues; ++q) {
    if (stats_.epoch(q) <=
        run_start_epochs_[q].load(std::memory_order_relaxed)) {
      return false;
    }
  }
  return true;
}

template <typename NextFn>
EngineReport MultiQueueEngine::run_impl(NextFn&& next) {
  const std::size_t queues = config_.queues;

  EngineReport report;
  report.per_queue.resize(queues);
  report.offered.assign(queues, 0);
  report.quarantine_total.assign(queues, 0);

  // Telemetry is only attachable when the sink was sized for this engine:
  // each worker needs its own single-writer ring and histogram shard.
  telemetry::Sink* sink =
      (config_.telemetry != nullptr && config_.telemetry->queues() >= queues)
          ? config_.telemetry
          : nullptr;

  // The run adopts whatever layout generation is current; workers pick up
  // later generations only through drain barriers on their handoff rings.
  const std::shared_ptr<rt::EpochGeneration> start_gen = epochs_->current();

  // The sink's stage histograms are cumulative too; baseline them so the
  // report carries this run's stage latency only.
  std::vector<telemetry::HistogramData> stage_before;
  if (sink != nullptr) {
    stage_before.reserve(telemetry::kStageCount);
    for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
      stage_before.push_back(
          sink->stage_latency(static_cast<telemetry::Stage>(s)).snapshot());
    }
  }
  // Same for the profiler: its shards and epoch table accumulate across
  // runs; the report carries this run's delta.
  const bool profiling = sink != nullptr && config_.profile;
  telemetry::ProfileCapture profile_before;
  if (profiling) {
    profile_before = sink->profiler().capture();
  }

  if (live_ != nullptr) {
    // New run, fresh loops: zero the shard snapshots first (the engine
    // thread is the owner until the workers spawn), then rebase the live
    // publisher, so a sampler tick landing in this window publishes zero
    // deltas instead of re-adding the previous run's stale totals.
    for (std::size_t q = 0; q < queues; ++q) {
      stats_.publish(q, rt::RxLoopStats{});
    }
    live_->begin_run();
  }
  for (std::size_t q = 0; q < queues; ++q) {
    run_start_epochs_[q].store(stats_.epoch(q), std::memory_order_relaxed);
  }
  running_.store(true, std::memory_order_release);

  // Fresh per-run device state: each queue is a complete NIC instance with
  // its own completion ring, buffer pool, doorbell clock and accounting,
  // built for the current epoch's wire layout.
  std::vector<std::unique_ptr<sim::NicSimulator>> nics;
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
  std::vector<std::unique_ptr<rt::ValidatingRxLoop>> loops;
  std::vector<std::unique_ptr<SpscQueue<HandoffItem>>> handoff;
  for (std::size_t q = 0; q < queues; ++q) {
    sim::SimConfig sim_config = config_.sim;
    sim_config.queue_id = static_cast<std::uint16_t>(q);
    nics.push_back(std::make_unique<sim::NicSimulator>(
        start_gen->wire_layout, *compute_, softnic::RxContext{}, sim_config));
    if (config_.fault_rate > 0.0) {
      // Decorrelated per-queue streams: same composite rate, distinct seeds,
      // still fully reproducible from (fault_seed, queue index).
      injectors.push_back(std::make_unique<sim::FaultInjector>(
          sim::FaultConfig::composite(config_.fault_rate,
                                      config_.fault_seed + 0x9E3779B9ULL * q)));
      nics.back()->set_fault_injector(injectors.back().get());
    }
    if (sink != nullptr && config_.trace_sample > 0) {
      // The device records nic_parse / completion_write spans into its
      // worker's ring — rx() runs on that worker's thread, so the
      // single-writer invariant holds; the clock is injected to keep the
      // sim library link-free of telemetry.
      nics.back()->set_span_recorder(&sink->span_ring(q),
                                     &telemetry::profile_now_ns);
      sink->span_ring(q).set_epoch(
          static_cast<std::uint32_t>(start_gen->epoch));
    }
    rt::GuardConfig guard_config;
    guard_config.queue_id = static_cast<std::uint16_t>(q);
    guard_config.quarantine_capacity = config_.quarantine_capacity;
    loops.push_back(std::make_unique<rt::ValidatingRxLoop>(
        start_gen->wire_layout, *compute_, guard_config));
    loops.back()->set_telemetry(sink, q);
    if (!profiling) {
      loops.back()->set_profile(nullptr);
    } else if (auto* shard = loops.back()->profile_shard()) {
      // Workers start accounting against the run's starting epoch (the
      // engine thread still owns the shard here — no worker has spawned).
      shard->set_epoch(start_gen->epoch);
    }
    handoff.push_back(
        std::make_unique<SpscQueue<HandoffItem>>(config_.spsc_capacity));
  }

  rt::RxLoopConfig loop_config;
  loop_config.batch = config_.batch;

  std::vector<std::exception_ptr> worker_errors(queues);
  std::vector<rt::SemanticPathCounters> worker_paths(queues);
  std::vector<std::thread> workers;
  workers.reserve(queues);

  const double wall_start = wall_now_ns();
  for (std::size_t q = 0; q < queues; ++q) {
    workers.emplace_back([&, q] {
      try {
        SpscQueue<HandoffItem>& ring = *handoff[q];
        // Segment loop: run_stream consumes packets until the stream ends
        // or a drain barrier arrives.  A barrier ends the segment exactly
        // like end-of-stream — run_stream drains the device and recovers
        // in-flight completions against the *old* epoch's accessors — then
        // the worker swaps the device and guard onto the new layout,
        // releases the old generation and starts the next segment.
        std::shared_ptr<rt::EpochGeneration> gen = start_gen;
        rt::RxLoopStats shard_total;
        rt::RxLoopStats dma_prev;  ///< device-cumulative fields seen so far
        rt::SemanticPathCounters& paths_total = worker_paths[q];
        bool stream_open = true;
        while (stream_open) {
          std::shared_ptr<rt::EpochGeneration> barrier;
          // Facade and recovery counters are cumulative (strategies persist
          // across runs, loops across segments); snapshot so the segment
          // contributes deltas only.
          const rt::SemanticPathCounters facade_before =
              gen->strategies[q]->facade().path_counters();
          const rt::SemanticPathCounters recovery_before =
              loops[q]->recovery_path_counters();
          rt::RxLoopStats seg = loops[q]->run_stream(
              *nics[q],
              [&]() -> std::optional<net::Packet> {
                std::optional<HandoffItem> item = ring.pop_wait();
                if (!item) {
                  stream_open = false;
                  return std::nullopt;
                }
                if (item->cutover != nullptr) {
                  barrier = std::move(item->cutover);
                  return std::nullopt;
                }
                if (flow_table_ != nullptr) {
                  // Shard q belongs to this worker alone (the indirection
                  // table routed every packet of this flow here), so the
                  // update is plain stores — no locks on the hot path.
                  // Charged to the source side, like packet generation:
                  // host_ns stays the validate/consume cost the paper
                  // models.
                  flow_table_->record(q, item->flow_key,
                                      item->packet.bytes().size(),
                                      item->packet.rx_timestamp_ns);
                }
                return std::move(item->packet);
              },
              *gen->strategies[q], gen->wanted, loop_config,
              [&](const rt::RxLoopStats& stats) {
                rt::RxLoopStats live = stats;
                subtract_dma_fields(live, dma_prev);
                rt::RxLoopStats publish = shard_total;
                publish += live;
                stats_.publish(q, publish);
              });
          rt::RxLoopStats dma_now;
          copy_dma_fields(dma_now, seg);
          subtract_dma_fields(seg, dma_prev);
          dma_prev = dma_now;

          rt::SemanticPathCounters seg_paths =
              gen->strategies[q]->facade().path_counters().since(facade_before);
          seg_paths +=
              loops[q]->recovery_path_counters().since(recovery_before);
          epochs_->contribute(gen->epoch, q, seg, seg_paths);
          paths_total += seg_paths;
          shard_total += seg;

          if (barrier != nullptr) {
            // Cutover order is load-bearing: the guard references the old
            // generation's layout until cut_over reseats it, so the old
            // generation must stay alive (and the device drained) first.
            telemetry::ProfileShard* const prof = loops[q]->profile_shard();
            const double swap_start =
                prof != nullptr ? telemetry::profile_now_ns() : 0.0;
            nics[q]->swap_layout(barrier->wire_layout);
            loops[q]->cut_over(barrier->wire_layout,
                               static_cast<std::uint32_t>(barrier->epoch));
            if (prof != nullptr) {
              // cut_over already moved the shard onto the new epoch, so the
              // swap cost is charged to the epoch it bought.
              prof->record(telemetry::ProfileStage::swap_barrier,
                           telemetry::profile_now_ns() - swap_start);
            }
            const std::uint64_t old_epoch = gen->epoch;
            gen = std::move(barrier);
            epochs_->release(old_epoch, q);
          }
        }
        report.per_queue[q] = shard_total;
      } catch (...) {
        worker_errors[q] = std::current_exception();
      }
    });
    if (config_.pin) {
      pin_to_cpu(workers.back(), q);
    }
  }

  // Dispatch: the steering thread is the device's RSS classifier — its CPU
  // time is accounted separately (steering_ns) and deliberately not folded
  // into host_ns, which measures the host datapath the paper cares about.
  // A throwing packet source must still close the rings and join the
  // workers before the exception escapes, or ~thread() terminates.
  std::exception_ptr dispatch_error;
  telemetry::TraceRing* dispatch_ring =
      sink != nullptr ? &sink->dispatch_ring() : nullptr;
  telemetry::Histogram::Shard* steer_shard = nullptr;
  telemetry::Histogram::Shard* handoff_shard = nullptr;
  if (sink != nullptr) {
    steer_shard = &sink->stage_shard(telemetry::Stage::steer,
                                     sink->dispatch_shard());
    handoff_shard = &sink->stage_shard(telemetry::Stage::handoff,
                                       sink->dispatch_shard());
  }
  // The dispatch thread drives the profiler's last lane; chunk refill
  // (packet generation) is accounted as wait, classify splits into
  // flow_classify + steer, and a committed hot-swap as swap_barrier.
  telemetry::ProfileShard* const dprof =
      profiling ? &sink->profile_shard(sink->queues()) : nullptr;
  if (dprof != nullptr) {
    dprof->set_epoch(start_gen->epoch);
  }
  // Causal tracing: head-based 1-in-N sampling, decided here at TX post.
  // The mask test rides the producer sequence so a fixed workload seed
  // samples the same packets (and mints the same ids) run after run.
  const std::uint64_t trace_mask =
      sink != nullptr ? telemetry::clamp_trace_sample(config_.trace_sample)
                      : 0;
  telemetry::SpanRing* const dispatch_spans =
      trace_mask != 0 ? &sink->dispatch_span_ring() : nullptr;
  if (dispatch_spans != nullptr) {
    dispatch_spans->set_epoch(static_cast<std::uint32_t>(start_gen->epoch));
  }
  std::uint64_t produced = 0;  ///< dispatch producer sequence (mint input)
  // Swap application point: between chunks the dispatch thread checks for a
  // due hot-swap order (explicit request_swap or the auto-cycle), verifies
  // it through the epoch manager and — only when the swap committed —
  // pushes a drain barrier down every queue's handoff ring.  A rolled-back
  // swap pushes nothing: the workers never notice, traffic continues on the
  // old epoch.
  std::uint64_t next_auto_swap = config_.swap_every;
  std::size_t cycle_index = 0;
  const auto maybe_swap = [&] {
    std::optional<rt::SwapRequest> due;
    {
      const std::lock_guard<std::mutex> lock(swap_mutex_);
      if (!swap_queue_.empty() &&
          swap_queue_.front().at_offered <= report.offered_total) {
        due = std::move(swap_queue_.front());
        swap_queue_.pop_front();
      } else if (config_.swap_every > 0 && !swap_cycle_.empty() &&
                 report.offered_total >= next_auto_swap) {
        rt::SwapRequest request;
        request.result = swap_cycle_[cycle_index++ % swap_cycle_.size()];
        next_auto_swap += config_.swap_every;
        due = std::move(request);
      }
    }
    if (!due) {
      return;
    }
    // Verification + barrier fan-out is the dispatch side of a hot-swap:
    // rare, so it is always accounted (not subject to the sampling stride).
    const double swap_start =
        dprof != nullptr ? telemetry::profile_now_ns() : 0.0;
    const rt::LayoutEpochManager::SwapAttempt attempt =
        epochs_->attempt_swap(*due, config_.sim);
    if (attempt.generation != nullptr) {
      for (std::size_t q = 0; q < queues; ++q) {
        handoff[q]->push(HandoffItem{net::Packet{}, 0, attempt.generation});
      }
    }
    if (dprof != nullptr) {
      if (attempt.generation != nullptr) {
        // Committed: flush the old epoch's delta, adopt the new one, and
        // charge the swap work to the epoch it bought (like the workers).
        dprof->set_epoch(attempt.generation->epoch);
      }
      dprof->record(telemetry::ProfileStage::swap_barrier,
                    telemetry::profile_now_ns() - swap_start);
    }
    if (dispatch_spans != nullptr && attempt.generation != nullptr) {
      dispatch_spans->set_epoch(
          static_cast<std::uint32_t>(attempt.generation->epoch));
    }
  };

  try {
    // Batch-size chunks so the steer and handoff stages each get one span
    // per chunk: classify the whole chunk, then push the whole chunk.
    // Packet *generation* (next()) happens between spans — steering_ns is
    // the classify+handoff CPU time only.
    std::uint64_t handoff_seq = 0;
    std::vector<net::Packet> chunk;
    std::vector<std::uint16_t> dest;
    std::vector<std::uint64_t> flow_keys;
    chunk.reserve(config_.batch);
    dest.reserve(config_.batch);
    flow_keys.reserve(config_.batch);
    bool open = true;
    maybe_swap();  // an at_offered=0 order applies before the first packet
    while (open) {
      const bool dprof_sampled = dprof != nullptr && dprof->batch_begin();
      const double wait_start =
          dprof_sampled ? telemetry::profile_now_ns() : 0.0;
      chunk.clear();
      dest.clear();
      flow_keys.clear();
      while (chunk.size() < config_.batch) {
        std::optional<net::Packet> pkt = next();
        if (!pkt) {
          open = false;
          break;
        }
        chunk.push_back(std::move(*pkt));
      }
      if (dprof_sampled) {
        // Chunk refill is the packet *source* (generation or replay), not
        // classifier work — the dispatch lane's wait, like a worker blocked
        // on its handoff ring.
        dprof->record(telemetry::ProfileStage::wait,
                      telemetry::profile_now_ns() - wait_start);
      }
      if (chunk.empty()) {
        if (dprof_sampled) {
          dprof->batch_end(0);
        } else if (dprof != nullptr) {
          dprof->batch_skip(0);
        }
        break;
      }

      // On sampled chunks the flow-key derivation inside the classify loop
      // is timed per call and reported as its own stage (flow_classify);
      // the remainder of the classify loop stays steer.
      double classify_ns = 0.0;
      double t0 = rt::thread_cpu_now_ns();
      for (net::Packet& pkt : chunk) {
        // Head-based sampling decision: one mask test per packet; only a
        // sampled packet pays the two clock reads and the id mint.
        const bool pkt_traced =
            trace_mask != 0 && (produced & (trace_mask - 1)) == 0;
        const double trace_t0 =
            pkt_traced ? telemetry::profile_now_ns() : 0.0;
        std::uint16_t q;
        if (flow_table_ != nullptr) {
          // One tuple walk yields the steering hash *and* the 64-bit flow
          // key — the classifier computes what the NIC would report.
          RssSteering::FlowHash fh;
          if (dprof_sampled) {
            const double c0 = telemetry::profile_now_ns();
            fh = steering_.flow_hash(pkt.bytes());
            classify_ns += telemetry::profile_now_ns() - c0;
          } else {
            fh = steering_.flow_hash(pkt.bytes());
          }
          q = steering_.queue_for_hash(fh.hash);
          flow_keys.push_back(fh.flow_key);
        } else {
          q = steering_.queue_for(pkt.bytes());
          flow_keys.push_back(0);
        }
        if (pkt_traced) {
          // Mint the trace id and open the trace: tx_post is the instant
          // the descriptor entered the pipeline, steer covers the classify.
          pkt.trace_id =
              telemetry::mint_trace_id(config_.fault_seed, q, produced);
          const double trace_t1 = telemetry::profile_now_ns();
          dispatch_spans->record(telemetry::SpanStage::tx_post, pkt.trace_id,
                                 trace_t0, 0.0);
          dispatch_spans->record(telemetry::SpanStage::steer, pkt.trace_id,
                                 trace_t0, trace_t1 - trace_t0);
        }
        ++produced;
        dest.push_back(q);
        ++report.offered[q];
        ++report.offered_total;
      }
      const double steer_ns = rt::thread_cpu_now_ns() - t0;

      t0 = rt::thread_cpu_now_ns();
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        const std::uint16_t q = dest[i];
        if (dispatch_ring != nullptr) {
          dispatch_ring->record(
              {telemetry::TraceEventType::queue_handoff, 0, q,
               static_cast<std::uint32_t>(chunk[i].bytes().size()),
               handoff_seq++});
        }
        const std::uint64_t trace_id = chunk[i].trace_id;
        const double trace_t0 = trace_id != 0 && dispatch_spans != nullptr
                                    ? telemetry::profile_now_ns()
                                    : 0.0;
        handoff[q]->push(HandoffItem{std::move(chunk[i]), flow_keys[i], nullptr});
        if (trace_id != 0 && dispatch_spans != nullptr) {
          dispatch_spans->record(telemetry::SpanStage::handoff, trace_id,
                                 trace_t0,
                                 telemetry::profile_now_ns() - trace_t0);
        }
      }
      const double handoff_ns = rt::thread_cpu_now_ns() - t0;

      report.steering_ns += steer_ns + handoff_ns;
      if (steer_shard != nullptr && steer_ns > 0.0) {
        steer_shard->observe(static_cast<std::uint64_t>(steer_ns));
      }
      if (handoff_shard != nullptr && handoff_ns > 0.0) {
        handoff_shard->observe(static_cast<std::uint64_t>(handoff_ns));
      }
      if (dprof_sampled) {
        classify_ns = std::min(classify_ns, steer_ns);
        dprof->record(telemetry::ProfileStage::flow_classify, classify_ns);
        dprof->record(telemetry::ProfileStage::steer, steer_ns - classify_ns);
        dprof->record(telemetry::ProfileStage::handoff, handoff_ns);
        dprof->batch_end(chunk.size());
      } else if (dprof != nullptr) {
        dprof->batch_skip(chunk.size());
      }
      maybe_swap();
    }
    if (dprof != nullptr) {
      dprof->flush();
    }
  } catch (...) {
    dispatch_error = std::current_exception();
  }
  for (std::size_t q = 0; q < queues; ++q) {
    handoff[q]->close();
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  report.wall_ns = wall_now_ns() - wall_start;
  running_.store(false, std::memory_order_release);

  if (dispatch_error) {
    std::rethrow_exception(dispatch_error);
  }
  for (std::size_t q = 0; q < queues; ++q) {
    if (worker_errors[q]) {
      std::rethrow_exception(worker_errors[q]);
    }
  }
  for (std::size_t q = 0; q < queues; ++q) {
    report.quarantine_total[q] = loops[q]->dead_letters().total();
    report.total += report.per_queue[q];
    // Per-run semantic provenance, accumulated segment by segment in each
    // worker: facade deltas cover hw-consumed packets, the loops' recovery
    // deltas cover quarantined/lost/rejected ones — together exactly one
    // entry per wanted semantic per packet, partitioned by epoch in the
    // epoch manager's accounting.
    report.semantic_paths += worker_paths[q];
  }
  if (sink != nullptr) {
    // Workers have quiesced: the stage histograms are stable, so the delta
    // against the run-start baseline is exactly this run's spans.
    report.stage_latency.resize(telemetry::kStageCount);
    for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
      telemetry::HistogramData delta =
          sink->stage_latency(static_cast<telemetry::Stage>(s)).snapshot();
      delta -= stage_before[s];
      report.stage_latency[s] = delta;
    }
    if (profiling) {
      report.profile = sink->profiler().capture().since(profile_before);
    }
    if (live_ != nullptr) {
      // Square the live counters up to the exact report totals; the
      // publish below then skips the rx families to avoid double counting.
      live_->finish_run(report);
    }
    publish_report(*sink, report, compute_->registry(),
                   /*rx_published_live=*/live_ != nullptr);
    publish_tenant_report(*sink, report, config_.tenant);
    const flow::FlowStats flow_stats =
        flow_table_ != nullptr ? flow_table_->stats() : flow::FlowStats{};
    flow::publish_flow_metrics(sink->registry(),
                               flow_table_ != nullptr ? &flow_stats : nullptr,
                               config_.tenant);
  }
  runs_done_.fetch_add(1, std::memory_order_release);
  return report;
}

void MultiQueueEngine::request_swap(rt::SwapRequest request) {
  const std::lock_guard<std::mutex> lock(swap_mutex_);
  swap_queue_.push_back(std::move(request));
}

void MultiQueueEngine::set_swap_cycle(
    std::vector<std::shared_ptr<const core::CompileResult>> cycle) {
  const std::lock_guard<std::mutex> lock(swap_mutex_);
  swap_cycle_ = std::move(cycle);
}

EngineReport MultiQueueEngine::run(std::span<const net::Packet> packets) {
  std::size_t index = 0;
  return run_impl([&]() -> std::optional<net::Packet> {
    if (index == packets.size()) {
      return std::nullopt;
    }
    return packets[index++];
  });
}

EngineReport MultiQueueEngine::run(net::WorkloadGenerator& workload,
                                   std::size_t count) {
  std::size_t remaining = count;
  return run_impl([&]() -> std::optional<net::Packet> {
    if (remaining == 0) {
      return std::nullopt;
    }
    --remaining;
    return workload.next();
  });
}

}  // namespace opendesc::engine
