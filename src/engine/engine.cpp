#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "engine/publish.hpp"
#include "engine/spsc.hpp"
#include "runtime/baselines.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace opendesc::engine {

namespace {

void pin_to_cpu(std::thread& worker, std::size_t index) {
#if defined(__linux__)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cores), &set);
  // Best effort: a failed pin (restricted affinity mask, exotic runtime)
  // only costs locality, never correctness.
  (void)pthread_setaffinity_np(worker.native_handle(), sizeof(set), &set);
#else
  (void)worker;
  (void)index;
#endif
}

double wall_now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

double EngineReport::critical_path_ns() const noexcept {
  double worst = 0.0;
  for (const rt::RxLoopStats& shard : per_queue) {
    worst = std::max(worst, shard.host_ns);
  }
  return worst;
}

double EngineReport::packets_per_second() const noexcept {
  const double critical = critical_path_ns();
  return critical <= 0.0
             ? 0.0
             : static_cast<double>(total.packets) * 1e9 / critical;
}

double EngineReport::wall_packets_per_second() const noexcept {
  return wall_ns <= 0.0 ? 0.0
                        : static_cast<double>(total.packets) * 1e9 / wall_ns;
}

MultiQueueEngine::MultiQueueEngine(const core::CompileResult& result,
                                   const softnic::ComputeEngine& compute,
                                   EngineConfig config)
    : result_(&result), compute_(&compute), config_(config),
      wire_layout_(config.guard ? result.layout.with_guard() : result.layout),
      steering_(SteeringConfig{std::max<std::size_t>(1, config.queues),
                               config.rss_table_size,
                               softnic::kDefaultRssKey}),
      stats_(std::max<std::size_t>(1, config.queues)) {
  config_.queues = std::max<std::size_t>(1, config_.queues);
  config_.batch = std::max<std::size_t>(1, config_.batch);
  for (std::size_t q = 0; q < config_.queues; ++q) {
    strategies_.push_back(
        std::make_unique<rt::OpenDescStrategy>(result, compute));
  }
  const std::set<softnic::SemanticId> requested = result.intent.requested();
  wanted_.assign(requested.begin(), requested.end());
}

template <typename NextFn>
EngineReport MultiQueueEngine::run_impl(NextFn&& next) {
  const std::size_t queues = config_.queues;

  EngineReport report;
  report.per_queue.resize(queues);
  report.offered.assign(queues, 0);
  report.quarantine_total.assign(queues, 0);

  // Telemetry is only attachable when the sink was sized for this engine:
  // each worker needs its own single-writer ring and histogram shard.
  telemetry::Sink* sink =
      (config_.telemetry != nullptr && config_.telemetry->queues() >= queues)
          ? config_.telemetry
          : nullptr;

  // Per-queue facade counters are cumulative across runs (strategies
  // persist); snapshot them so this run reports deltas only.
  std::vector<rt::SemanticPathCounters> facade_before;
  facade_before.reserve(queues);
  for (std::size_t q = 0; q < queues; ++q) {
    facade_before.push_back(strategies_[q]->facade().path_counters());
  }

  // Fresh per-run device state: each queue is a complete NIC instance with
  // its own completion ring, buffer pool, doorbell clock and accounting.
  std::vector<std::unique_ptr<sim::NicSimulator>> nics;
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
  std::vector<std::unique_ptr<rt::ValidatingRxLoop>> loops;
  std::vector<std::unique_ptr<SpscQueue<net::Packet>>> handoff;
  for (std::size_t q = 0; q < queues; ++q) {
    sim::SimConfig sim_config = config_.sim;
    sim_config.queue_id = static_cast<std::uint16_t>(q);
    nics.push_back(std::make_unique<sim::NicSimulator>(
        wire_layout_, *compute_, softnic::RxContext{}, sim_config));
    if (config_.fault_rate > 0.0) {
      // Decorrelated per-queue streams: same composite rate, distinct seeds,
      // still fully reproducible from (fault_seed, queue index).
      injectors.push_back(std::make_unique<sim::FaultInjector>(
          sim::FaultConfig::composite(config_.fault_rate,
                                      config_.fault_seed + 0x9E3779B9ULL * q)));
      nics.back()->set_fault_injector(injectors.back().get());
    }
    rt::GuardConfig guard_config;
    guard_config.queue_id = static_cast<std::uint16_t>(q);
    guard_config.quarantine_capacity = config_.quarantine_capacity;
    loops.push_back(std::make_unique<rt::ValidatingRxLoop>(
        wire_layout_, *compute_, guard_config));
    loops.back()->set_telemetry(sink, q);
    handoff.push_back(
        std::make_unique<SpscQueue<net::Packet>>(config_.spsc_capacity));
  }

  rt::RxLoopConfig loop_config;
  loop_config.batch = config_.batch;

  std::vector<std::exception_ptr> worker_errors(queues);
  std::vector<std::thread> workers;
  workers.reserve(queues);

  const double wall_start = wall_now_ns();
  for (std::size_t q = 0; q < queues; ++q) {
    workers.emplace_back([&, q] {
      try {
        SpscQueue<net::Packet>& ring = *handoff[q];
        report.per_queue[q] = loops[q]->run_stream(
            *nics[q], [&ring] { return ring.pop_wait(); }, *strategies_[q],
            wanted_, loop_config,
            [this, q](const rt::RxLoopStats& stats) { stats_.publish(q, stats); });
      } catch (...) {
        worker_errors[q] = std::current_exception();
      }
    });
    if (config_.pin) {
      pin_to_cpu(workers.back(), q);
    }
  }

  // Dispatch: the steering thread is the device's RSS classifier — its CPU
  // time is accounted separately (steering_ns) and deliberately not folded
  // into host_ns, which measures the host datapath the paper cares about.
  // A throwing packet source must still close the rings and join the
  // workers before the exception escapes, or ~thread() terminates.
  std::exception_ptr dispatch_error;
  telemetry::TraceRing* dispatch_ring =
      sink != nullptr ? &sink->dispatch_ring() : nullptr;
  try {
    const double steer_start = rt::thread_cpu_now_ns();
    std::uint64_t handoff_seq = 0;
    while (std::optional<net::Packet> pkt = next()) {
      const std::uint16_t q = steering_.queue_for(pkt->bytes());
      ++report.offered[q];
      ++report.offered_total;
      if (dispatch_ring != nullptr) {
        dispatch_ring->record({telemetry::TraceEventType::queue_handoff, 0, q,
                               static_cast<std::uint32_t>(pkt->bytes().size()),
                               handoff_seq++});
      }
      handoff[q]->push(std::move(*pkt));
    }
    report.steering_ns = rt::thread_cpu_now_ns() - steer_start;
  } catch (...) {
    dispatch_error = std::current_exception();
  }
  for (std::size_t q = 0; q < queues; ++q) {
    handoff[q]->close();
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  report.wall_ns = wall_now_ns() - wall_start;

  if (dispatch_error) {
    std::rethrow_exception(dispatch_error);
  }
  for (std::size_t q = 0; q < queues; ++q) {
    if (worker_errors[q]) {
      std::rethrow_exception(worker_errors[q]);
    }
  }
  for (std::size_t q = 0; q < queues; ++q) {
    report.quarantine_total[q] = loops[q]->dead_letters().total();
    report.total += report.per_queue[q];
    // Per-run semantic provenance: the facade's delta covers hw-consumed
    // packets, the loop's recovery counters cover quarantined/lost/rejected
    // ones — together exactly one entry per wanted semantic per packet.
    report.semantic_paths +=
        strategies_[q]->facade().path_counters().since(facade_before[q]);
    report.semantic_paths += loops[q]->recovery_path_counters();
  }
  if (sink != nullptr) {
    publish_report(*sink, report, compute_->registry());
  }
  return report;
}

EngineReport MultiQueueEngine::run(std::span<const net::Packet> packets) {
  std::size_t index = 0;
  return run_impl([&]() -> std::optional<net::Packet> {
    if (index == packets.size()) {
      return std::nullopt;
    }
    return packets[index++];
  });
}

EngineReport MultiQueueEngine::run(net::WorkloadGenerator& workload,
                                   std::size_t count) {
  std::size_t remaining = count;
  return run_impl([&]() -> std::optional<net::Packet> {
    if (remaining == 0) {
      return std::nullopt;
    }
    --remaining;
    return workload.next();
  });
}

}  // namespace opendesc::engine
