// RSS steering: the device half of receive-side scaling.
//
// Real NICs classify each arriving frame with a Toeplitz hash over the
// flow tuple and index a small indirection table with the low hash bits to
// pick the destination queue.  The engine's dispatch thread plays that
// role: it must agree with the rss_hash semantic the completion deparser
// writes (softnic::ComputeEngine), so the hash here is the same Toeplitz
// over the same tuple bytes — extracted with a minimal header walk instead
// of a full PacketView parse, because steering runs once per packet on the
// dispatch path while the parse-heavy work runs sharded on the workers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "softnic/toeplitz.hpp"

namespace opendesc::engine {

struct SteeringConfig {
  std::size_t queues = 1;
  /// Indirection-table entries (rounded up to a power of two; real devices
  /// ship 128 or 512).  Entry i serves hash values with low bits == i.
  std::size_t table_size = 128;
  std::array<std::uint8_t, 40> key = softnic::kDefaultRssKey;
};

class RssSteering {
 public:
  explicit RssSteering(SteeringConfig config = {});

  /// Toeplitz hash of the frame's flow tuple: 4-tuple for TCP/UDP over
  /// IPv4/IPv6 (with or without one 802.1Q tag), 2-tuple for other IP
  /// traffic, 0 for anything unparsable — matching the NIC-side rss_hash
  /// computation bit for bit.
  [[nodiscard]] std::uint32_t hash(std::span<const std::uint8_t> frame) const noexcept;

  /// hash() plus a 64-bit flow key from one tuple walk.  The key's low 32
  /// bits are the primary hash itself (the value the indirection table
  /// steers on, so key low bits == queue placement bits); the high 32 bits
  /// are a second Toeplitz over the same tuple with an independent key,
  /// disambiguating primary-hash collisions in flow-table lookups.  Both
  /// are zero for unparsable frames (flow::FlowTable's "no flow" sentinel).
  struct FlowHash {
    std::uint32_t hash = 0;
    std::uint64_t flow_key = 0;
  };
  [[nodiscard]] FlowHash flow_hash(std::span<const std::uint8_t> frame) const noexcept;

  /// Destination queue for a frame.
  [[nodiscard]] std::uint16_t queue_for(std::span<const std::uint8_t> frame) const noexcept {
    return queue_for_hash(hash(frame));
  }

  /// Destination queue for a precomputed RSS hash value.
  [[nodiscard]] std::uint16_t queue_for_hash(std::uint32_t hash_value) const noexcept {
    return table_[hash_value & (table_.size() - 1)];
  }

  [[nodiscard]] std::size_t queues() const noexcept { return config_.queues; }
  [[nodiscard]] const std::vector<std::uint16_t>& table() const noexcept {
    return table_;
  }

 private:
  SteeringConfig config_;
  std::vector<std::uint16_t> table_;  ///< hash low bits -> queue id
};

}  // namespace opendesc::engine
