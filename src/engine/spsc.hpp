// Lock-free single-producer/single-consumer handoff ring.
//
// The multi-queue engine hands raw packets from the steering (dispatch)
// thread to exactly one worker per queue, so the classic two-index SPSC ring
// suffices: the producer owns tail_, the consumer owns head_, and each side
// publishes its index with a release store the other side acquires.  No
// locks, no CAS loops — a bounded ring with backpressure (the producer spins
// with yield when the consumer falls behind, modelling a NIC whose internal
// queue fill stalls the pipeline).
//
// close() is the end-of-stream signal: after the producer closes, pop_wait()
// drains whatever is buffered and then returns nullopt exactly once per
// remaining call — the worker's signal to drain its NIC queue and exit.
#pragma once

#include <atomic>
#include <cassert>
#include <optional>
#include <thread>
#include <vector>

namespace opendesc::engine {

/// Cache-line size used to keep the producer and consumer indices from
/// false-sharing one line (std::hardware_destructive_interference_size is
/// not reliably available across our toolchains).
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side.  Returns false when the ring is full.
  [[nodiscard]] bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: blocks (spin + yield) until the item is accepted.
  void push(T&& item) {
    while (!try_push(std::move(item))) {
      std::this_thread::yield();
    }
  }

  /// Consumer side.  nullopt when the ring is momentarily empty.
  [[nodiscard]] std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    std::optional<T> item(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return item;
  }

  /// Consumer side: blocks until an item arrives or the queue is closed and
  /// fully drained (then returns nullopt — end of stream).
  [[nodiscard]] std::optional<T> pop_wait() {
    for (;;) {
      if (std::optional<T> item = try_pop()) {
        return item;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check after observing the close: the producer may have pushed
        // between our failed pop and its close().
        if (std::optional<T> item = try_pop()) {
          return item;
        }
        return std::nullopt;
      }
      std::this_thread::yield();
    }
  }

  /// Producer side: no further push() calls will follow.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (exact only from the consumer thread).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  ///< consumer
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  ///< producer
  alignas(kCacheLineBytes) std::atomic<bool> closed_{false};
};

}  // namespace opendesc::engine
