// Registry publication: turns one engine run's report into telemetry
// counters and gauges.
//
// Counters take per-run deltas through add(), so repeated runs against the
// same sink accumulate the way Prometheus counters should; gauges reflect
// the most recent run.  The key family is opendesc_semantic_reads_total
// {semantic, path}: per semantic, the nic_path + softnic_shim + unavailable
// series sum to exactly the packets processed — the runtime image of the
// paper's Eq. 1 trade-off.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::engine {

/// Per-queue and aggregate RxLoopStats counters (packets, quarantine,
/// recovery, drops) plus per-queue host time.
void publish_rx_stats(telemetry::Sink& sink, const EngineReport& report);

/// opendesc_semantic_reads_total{semantic=..., path=...} from per-run path
/// counters.  `registry` resolves semantic names; unknown ids fall back to
/// "id_<raw>".
void publish_semantic_paths(telemetry::Sink& sink,
                            const rt::SemanticPathCounters& paths,
                            const softnic::SemanticRegistry& registry);

/// Everything a run exposes: rx stats, semantic paths, throughput gauges,
/// and the sink's trace totals.  When `rx_published_live` is set, the
/// per-queue rx counter families are assumed already accumulated by a
/// LivePublisher (tick-by-tick) and only the gauges/semantic paths/trace
/// totals are published here — publishing them again would double count.
void publish_report(telemetry::Sink& sink, const EngineReport& report,
                    const softnic::SemanticRegistry& registry,
                    bool rx_published_live = false);

/// Tenant-labelled aggregate families: opendesc_tenant_goodput_packets_total,
/// _offered_packets_total and _drops_total, all labelled {tenant=...}.  In a
/// multi-tenant plane every engine publishes under its own tenant name into
/// one shared registry; single-tenant engines publish tenant="default", so
/// the families are present (and golden-checkable) in every scrape.
/// Counters take per-run deltas through add(); a zero report registers the
/// families at zero state.
void publish_tenant_report(telemetry::Sink& sink, const EngineReport& report,
                           const std::string& tenant);

/// Tick-by-tick publication of the per-queue rx counter families, so the
/// time-series sampler sees counters move *during* a run instead of one
/// step per run.  The publisher reads the engine's lock-free StatsRegistry
/// shard snapshots and add()s the delta since its previous tick into the
/// same opendesc_rx_* / opendesc_offered_* counters publish_rx_stats
/// would write — cumulative-across-runs semantics are preserved, the
/// datapath is never touched.
///
/// Run protocol (driven by MultiQueueEngine):
///   begin_run()   engine thread, after it zeroed the stats shards
///   tick()        sampler thread, once per sampling tick
///   finish_run()  engine thread, workers quiesced — squares the counters
///                 up to the exact per-run totals in the report
/// tick() and the run-boundary calls may interleave; a mutex serializes
/// them (both are off the per-packet hot path).
class LivePublisher {
 public:
  LivePublisher(telemetry::Sink& sink, const StatsRegistry& stats);

  LivePublisher(const LivePublisher&) = delete;
  LivePublisher& operator=(const LivePublisher&) = delete;

  void begin_run();
  void tick();
  void finish_run(const EngineReport& report);

 private:
  /// add()s current-minus-last for queue q and remembers current.
  void add_delta(std::size_t q, const rt::RxLoopStats& current);

  struct QueueCounters {
    telemetry::Counter* packets;
    telemetry::Counter* hw_consumed;
    telemetry::Counter* quarantined;
    telemetry::Counter* softnic_recovered;
    telemetry::Counter* lost_completions;
    telemetry::Counter* rx_rejected;
    telemetry::Counter* unrecoverable_values;
    telemetry::Counter* drops;
    telemetry::Counter* offered;
    telemetry::Gauge* host_ns;
  };

  const StatsRegistry* stats_;
  std::mutex mutex_;
  bool in_run_ = false;
  std::vector<QueueCounters> counters_;  ///< resolved once, per queue
  std::vector<rt::RxLoopStats> last_;    ///< last published per queue
};

}  // namespace opendesc::engine
