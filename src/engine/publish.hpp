// Registry publication: turns one engine run's report into telemetry
// counters and gauges.
//
// Counters take per-run deltas through add(), so repeated runs against the
// same sink accumulate the way Prometheus counters should; gauges reflect
// the most recent run.  The key family is opendesc_semantic_reads_total
// {semantic, path}: per semantic, the nic_path + softnic_shim + unavailable
// series sum to exactly the packets processed — the runtime image of the
// paper's Eq. 1 trade-off.
#pragma once

#include "engine/engine.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::engine {

/// Per-queue and aggregate RxLoopStats counters (packets, quarantine,
/// recovery, drops) plus per-queue host time.
void publish_rx_stats(telemetry::Sink& sink, const EngineReport& report);

/// opendesc_semantic_reads_total{semantic=..., path=...} from per-run path
/// counters.  `registry` resolves semantic names; unknown ids fall back to
/// "id_<raw>".
void publish_semantic_paths(telemetry::Sink& sink,
                            const rt::SemanticPathCounters& paths,
                            const softnic::SemanticRegistry& registry);

/// Everything a run exposes: rx stats, semantic paths, throughput gauges,
/// and the sink's trace totals.
void publish_report(telemetry::Sink& sink, const EngineReport& report,
                    const softnic::SemanticRegistry& registry);

}  // namespace opendesc::engine
