#include "engine/publish.hpp"

#include <string>

#include "common/error.hpp"

namespace opendesc::engine {

namespace {

std::string semantic_label(const softnic::SemanticRegistry& registry,
                           std::uint32_t raw) {
  try {
    return registry.name(static_cast<softnic::SemanticId>(raw));
  } catch (const Error&) {
    return "id_" + std::to_string(raw);
  }
}

}  // namespace

void publish_rx_stats(telemetry::Sink& sink, const EngineReport& report) {
  telemetry::Registry& reg = sink.registry();
  const auto queue_counter = [&](const char* name, const char* help,
                                 std::size_t q, std::uint64_t delta) {
    reg.counter(name, help, {{"queue", std::to_string(q)}}).add(delta);
  };
  for (std::size_t q = 0; q < report.per_queue.size(); ++q) {
    const rt::RxLoopStats& s = report.per_queue[q];
    queue_counter("opendesc_rx_packets_total",
                  "Packets whose semantics were delivered (either path)", q,
                  s.packets);
    queue_counter("opendesc_rx_hw_consumed_total",
                  "Completion records that passed validation", q,
                  s.hw_consumed);
    queue_counter("opendesc_rx_quarantined_total",
                  "Malformed completion records dead-lettered", q,
                  s.quarantined);
    queue_counter("opendesc_rx_softnic_recovered_total",
                  "Packets recovered entirely in software", q,
                  s.softnic_recovered);
    queue_counter("opendesc_rx_lost_completions_total",
                  "Packets accepted by rx() whose completion never arrived",
                  q, s.lost_completions);
    queue_counter("opendesc_rx_rejected_total",
                  "Packets the device refused at rx (backpressure)", q,
                  s.rx_rejected);
    queue_counter("opendesc_rx_unrecoverable_values_total",
                  "Wanted semantics with no software equivalent (w(s)=inf)",
                  q, s.unrecoverable_values);
    queue_counter("opendesc_rx_drops_total", "Packets dropped device-side",
                  q, s.drops);
    queue_counter(
        "opendesc_offered_packets_total",
        "Packets steered to this queue by the RSS dispatch thread", q,
        q < report.offered.size() ? report.offered[q] : 0);
    reg.gauge("opendesc_rx_host_ns",
              "Host-side CPU nanoseconds this queue's worker spent consuming",
              {{"queue", std::to_string(q)}})
        .set(s.host_ns);
  }
}

void publish_semantic_paths(telemetry::Sink& sink,
                            const rt::SemanticPathCounters& paths,
                            const softnic::SemanticRegistry& registry) {
  telemetry::Registry& reg = sink.registry();
  for (const auto& [raw, counts] : paths.snapshot()) {
    const std::string semantic = semantic_label(registry, raw);
    const auto path_counter = [&](const char* path, std::uint64_t delta) {
      reg.counter("opendesc_semantic_reads_total",
                  "Metadata reads by semantic and serving path; per "
                  "semantic, the three paths sum to packets processed",
                  {{"semantic", semantic}, {"path", path}})
          .add(delta);
    };
    path_counter("nic_path", counts.nic_path);
    path_counter("softnic_shim", counts.softnic_shim);
    path_counter("unavailable", counts.unavailable);
  }
}

void publish_report(telemetry::Sink& sink, const EngineReport& report,
                    const softnic::SemanticRegistry& registry,
                    bool rx_published_live) {
  if (!rx_published_live) {
    publish_rx_stats(sink, report);
  }
  publish_semantic_paths(sink, report.semantic_paths, registry);

  telemetry::Registry& reg = sink.registry();
  reg.gauge("opendesc_engine_queues", "Worker queues in the last run")
      .set(static_cast<double>(report.per_queue.size()));
  reg.gauge("opendesc_engine_wall_ns", "Real elapsed time of the last run")
      .set(report.wall_ns);
  reg.gauge("opendesc_engine_steering_ns",
            "Dispatch-thread classify+handoff CPU time of the last run")
      .set(report.steering_ns);
  reg.gauge("opendesc_engine_packets_per_second",
            "Host-datapath capacity: packets over the critical-path shard")
      .set(report.packets_per_second());
  reg.gauge("opendesc_engine_wall_packets_per_second",
            "Throughput against real elapsed time")
      .set(report.wall_packets_per_second());

  sink.publish_trace_counters();
}

void publish_tenant_report(telemetry::Sink& sink, const EngineReport& report,
                           const std::string& tenant) {
  telemetry::Registry& reg = sink.registry();
  const telemetry::Labels labels{{"tenant", tenant}};
  reg.counter("opendesc_tenant_goodput_packets_total",
              "Packets whose semantics were delivered, by tenant", labels)
      .add(report.total.packets);
  reg.counter("opendesc_tenant_offered_packets_total",
              "Packets steered into this tenant's queues", labels)
      .add(report.offered_total);
  reg.counter("opendesc_tenant_drops_total",
              "Packets dropped device-side, by tenant", labels)
      .add(report.total.drops);
}

LivePublisher::LivePublisher(telemetry::Sink& sink, const StatsRegistry& stats)
    : stats_(&stats) {
  // Resolve every per-queue series once here — registration is idempotent
  // (same names/help/labels as publish_rx_stats), and the tick path must
  // never take the registry's registration lock.
  telemetry::Registry& reg = sink.registry();
  counters_.reserve(stats.shards());
  for (std::size_t q = 0; q < stats.shards(); ++q) {
    const telemetry::Labels labels{{"queue", std::to_string(q)}};
    QueueCounters c;
    c.packets = &reg.counter(
        "opendesc_rx_packets_total",
        "Packets whose semantics were delivered (either path)", labels);
    c.hw_consumed =
        &reg.counter("opendesc_rx_hw_consumed_total",
                     "Completion records that passed validation", labels);
    c.quarantined =
        &reg.counter("opendesc_rx_quarantined_total",
                     "Malformed completion records dead-lettered", labels);
    c.softnic_recovered =
        &reg.counter("opendesc_rx_softnic_recovered_total",
                     "Packets recovered entirely in software", labels);
    c.lost_completions = &reg.counter(
        "opendesc_rx_lost_completions_total",
        "Packets accepted by rx() whose completion never arrived", labels);
    c.rx_rejected = &reg.counter(
        "opendesc_rx_rejected_total",
        "Packets the device refused at rx (backpressure)", labels);
    c.unrecoverable_values = &reg.counter(
        "opendesc_rx_unrecoverable_values_total",
        "Wanted semantics with no software equivalent (w(s)=inf)", labels);
    c.drops = &reg.counter("opendesc_rx_drops_total",
                           "Packets dropped device-side", labels);
    c.offered = &reg.counter(
        "opendesc_offered_packets_total",
        "Packets steered to this queue by the RSS dispatch thread", labels);
    c.host_ns = &reg.gauge(
        "opendesc_rx_host_ns",
        "Host-side CPU nanoseconds this queue's worker spent consuming",
        labels);
    counters_.push_back(c);
  }
  last_.assign(stats.shards(), rt::RxLoopStats{});
}

void LivePublisher::add_delta(std::size_t q, const rt::RxLoopStats& current) {
  const rt::RxLoopStats& prev = last_[q];
  const auto delta = [](std::uint64_t now, std::uint64_t before) {
    return now >= before ? now - before : 0;
  };
  const QueueCounters& c = counters_[q];
  c.packets->add(delta(current.packets, prev.packets));
  c.hw_consumed->add(delta(current.hw_consumed, prev.hw_consumed));
  c.quarantined->add(delta(current.quarantined, prev.quarantined));
  c.softnic_recovered->add(
      delta(current.softnic_recovered, prev.softnic_recovered));
  c.lost_completions->add(
      delta(current.lost_completions, prev.lost_completions));
  c.rx_rejected->add(delta(current.rx_rejected, prev.rx_rejected));
  c.unrecoverable_values->add(
      delta(current.unrecoverable_values, prev.unrecoverable_values));
  c.drops->add(delta(current.drops, prev.drops));
  last_[q] = current;
}

void LivePublisher::begin_run() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // The engine zeroed the stats shards for the new run; restart the delta
  // baseline so the first tick publishes exactly what the new run did.
  last_.assign(counters_.size(), rt::RxLoopStats{});
  in_run_ = true;
}

void LivePublisher::tick() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!in_run_) {
    return;  // between runs: shards hold the previous run's stale totals
  }
  for (std::size_t q = 0; q < counters_.size(); ++q) {
    add_delta(q, stats_->snapshot(q));
  }
}

void LivePublisher::finish_run(const EngineReport& report) {
  const std::lock_guard<std::mutex> lock(mutex_);
  in_run_ = false;
  // Workers have quiesced: square up against the report's exact per-queue
  // totals (the stats registry may be a hair behind its final publication).
  for (std::size_t q = 0; q < counters_.size(); ++q) {
    if (q < report.per_queue.size()) {
      add_delta(q, report.per_queue[q]);
      counters_[q].host_ns->set(report.per_queue[q].host_ns);
    }
    if (q < report.offered.size()) {
      counters_[q].offered->add(report.offered[q]);
    }
  }
}

}  // namespace opendesc::engine
