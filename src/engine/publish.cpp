#include "engine/publish.hpp"

#include <string>

#include "common/error.hpp"

namespace opendesc::engine {

namespace {

std::string semantic_label(const softnic::SemanticRegistry& registry,
                           std::uint32_t raw) {
  try {
    return registry.name(static_cast<softnic::SemanticId>(raw));
  } catch (const Error&) {
    return "id_" + std::to_string(raw);
  }
}

}  // namespace

void publish_rx_stats(telemetry::Sink& sink, const EngineReport& report) {
  telemetry::Registry& reg = sink.registry();
  const auto queue_counter = [&](const char* name, const char* help,
                                 std::size_t q, std::uint64_t delta) {
    reg.counter(name, help, {{"queue", std::to_string(q)}}).add(delta);
  };
  for (std::size_t q = 0; q < report.per_queue.size(); ++q) {
    const rt::RxLoopStats& s = report.per_queue[q];
    queue_counter("opendesc_rx_packets_total",
                  "Packets whose semantics were delivered (either path)", q,
                  s.packets);
    queue_counter("opendesc_rx_hw_consumed_total",
                  "Completion records that passed validation", q,
                  s.hw_consumed);
    queue_counter("opendesc_rx_quarantined_total",
                  "Malformed completion records dead-lettered", q,
                  s.quarantined);
    queue_counter("opendesc_rx_softnic_recovered_total",
                  "Packets recovered entirely in software", q,
                  s.softnic_recovered);
    queue_counter("opendesc_rx_lost_completions_total",
                  "Packets accepted by rx() whose completion never arrived",
                  q, s.lost_completions);
    queue_counter("opendesc_rx_rejected_total",
                  "Packets the device refused at rx (backpressure)", q,
                  s.rx_rejected);
    queue_counter("opendesc_rx_unrecoverable_values_total",
                  "Wanted semantics with no software equivalent (w(s)=inf)",
                  q, s.unrecoverable_values);
    queue_counter("opendesc_rx_drops_total", "Packets dropped device-side",
                  q, s.drops);
    queue_counter(
        "opendesc_offered_packets_total",
        "Packets steered to this queue by the RSS dispatch thread", q,
        q < report.offered.size() ? report.offered[q] : 0);
    reg.gauge("opendesc_rx_host_ns",
              "Host-side CPU nanoseconds this queue's worker spent consuming",
              {{"queue", std::to_string(q)}})
        .set(s.host_ns);
  }
}

void publish_semantic_paths(telemetry::Sink& sink,
                            const rt::SemanticPathCounters& paths,
                            const softnic::SemanticRegistry& registry) {
  telemetry::Registry& reg = sink.registry();
  for (const auto& [raw, counts] : paths.snapshot()) {
    const std::string semantic = semantic_label(registry, raw);
    const auto path_counter = [&](const char* path, std::uint64_t delta) {
      reg.counter("opendesc_semantic_reads_total",
                  "Metadata reads by semantic and serving path; per "
                  "semantic, the three paths sum to packets processed",
                  {{"semantic", semantic}, {"path", path}})
          .add(delta);
    };
    path_counter("nic_path", counts.nic_path);
    path_counter("softnic_shim", counts.softnic_shim);
    path_counter("unavailable", counts.unavailable);
  }
}

void publish_report(telemetry::Sink& sink, const EngineReport& report,
                    const softnic::SemanticRegistry& registry) {
  publish_rx_stats(sink, report);
  publish_semantic_paths(sink, report.semantic_paths, registry);

  telemetry::Registry& reg = sink.registry();
  reg.gauge("opendesc_engine_queues", "Worker queues in the last run")
      .set(static_cast<double>(report.per_queue.size()));
  reg.gauge("opendesc_engine_wall_ns", "Real elapsed time of the last run")
      .set(report.wall_ns);
  reg.gauge("opendesc_engine_steering_ns",
            "Dispatch-thread classify+handoff CPU time of the last run")
      .set(report.steering_ns);
  reg.gauge("opendesc_engine_packets_per_second",
            "Host-datapath capacity: packets over the critical-path shard")
      .set(report.packets_per_second());
  reg.gauge("opendesc_engine_wall_packets_per_second",
            "Throughput against real elapsed time")
      .set(report.wall_packets_per_second());

  sink.publish_trace_counters();
}

}  // namespace opendesc::engine
