// Shard statistics with epoch-consistent snapshots.
//
// Each engine worker owns one registry slot and republishes its running
// RxLoopStats after every completion batch; the dispatch thread (or an
// operator thread, or a test) can snapshot any slot at any time without
// stopping the workers.  The protocol is a seqlock over *atomic* words:
//
//   writer:  epoch -> odd, payload words, epoch -> even   (one writer/slot)
//   reader:  e1 = epoch; payload words; e2 = epoch;
//            retry while e1 odd or e1 != e2
//
// Every access is a std::atomic operation, so the scheme is free of data
// races by construction (ThreadSanitizer-clean) while the hot path takes no
// lock: workers never wait on readers, readers never block workers, and a
// retired snapshot is guaranteed to be one the worker actually published —
// counters stay exact, never torn.  Publishing is once per batch, not per
// packet, so even the seq_cst stores amortize to well under a nanosecond of
// overhead per packet.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/rxloop.hpp"

namespace opendesc::engine {

/// Number of 64-bit words a serialized RxLoopStats occupies.
inline constexpr std::size_t kStatsWords = 15;

/// Lossless RxLoopStats <-> word-array conversion (host_ns via bit_cast).
[[nodiscard]] std::array<std::uint64_t, kStatsWords> encode_stats(
    const rt::RxLoopStats& stats) noexcept;
[[nodiscard]] rt::RxLoopStats decode_stats(
    const std::array<std::uint64_t, kStatsWords>& words) noexcept;

class StatsRegistry {
 public:
  explicit StatsRegistry(std::size_t shards);

  // Slots hold atomics; the registry is pinned in place.
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return slots_.size(); }

  /// Publishes `stats` as shard `shard`'s current totals.  Must only be
  /// called from the single thread owning that shard.
  void publish(std::size_t shard, const rt::RxLoopStats& stats) noexcept;

  /// Epoch-consistent copy of one shard's last published totals.
  [[nodiscard]] rt::RxLoopStats snapshot(std::size_t shard) const noexcept;

  /// Sum of all shard snapshots (RxLoopStats::operator+= semantics: counts
  /// add, checksums xor-fold).  Each shard is individually consistent; the
  /// cross-shard sum is exact once the workers have quiesced.
  [[nodiscard]] rt::RxLoopStats aggregate() const noexcept;

  /// Publication count for a shard (even = stable; monotone).
  [[nodiscard]] std::uint64_t epoch(std::size_t shard) const noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::array<std::atomic<std::uint64_t>, kStatsWords> words{};
  };

  std::vector<Slot> slots_;
};

}  // namespace opendesc::engine
