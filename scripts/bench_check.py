#!/usr/bin/env python3
"""Validate committed BENCH_*.json artifacts (and optionally fresh runs).

Committed bench artifacts at the repo root are the performance record of
the tree: every file must parse, its bars must be internally consistent
(a bar's `pass` flag must agree with re-evaluating `value cmp bar`,
`all_pass` must be the conjunction of the bars), and a committed artifact
must represent a passing run — committing a red benchmark is a merge
mistake, not a record.

With --fresh DIR the checker also cross-validates each committed artifact
against the same-named file a smoke run just produced (scripts/ci.sh
points this at build-ci/bench).  The fresh comparison is *structural*:
same bench name, same bar names, same thresholds and comparators — it
catches a bench whose bars were renamed or retightened without the
committed artifact being refreshed.  Fresh *measurements* are not
re-asserted here; smoke populations are noise for ns-scale perf bars, and
each bench already asserts its own bars via its exit code.

Exit code 0 when everything holds, 1 with one line per violation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Artifact sidecars that are bench *output dumps*, not bar records.
SKIP_SUFFIXES = ("_spans.json",)

CMP = {
    "<=": lambda value, bar: value <= bar,
    ">=": lambda value, bar: value >= bar,
    "<": lambda value, bar: value < bar,
    ">": lambda value, bar: value > bar,
    "==": lambda value, bar: value == bar,
}


def check_bar(path: pathlib.Path, bar: dict, errors: list[str]) -> None:
    name = bar.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{path.name}: bar without a name: {bar!r}")
        return
    ok = bar.get("pass")
    if not isinstance(ok, bool):
        errors.append(f"{path.name}: bar {name}: 'pass' must be a bool")
        return
    # Bars may be pure predicates (name + pass only, e.g. zero-loss flags);
    # numeric bars must re-evaluate consistently.
    if "value" in bar or "bar" in bar or "cmp" in bar:
        for key in ("value", "bar", "cmp"):
            if key not in bar:
                errors.append(f"{path.name}: bar {name}: missing '{key}'")
                return
        cmp = bar["cmp"]
        if cmp not in CMP:
            errors.append(f"{path.name}: bar {name}: unknown cmp {cmp!r}")
            return
        value, threshold = bar["value"], bar["bar"]
        if not isinstance(value, (int, float)) or not isinstance(
            threshold, (int, float)
        ):
            errors.append(f"{path.name}: bar {name}: non-numeric value/bar")
            return
        if CMP[cmp](value, threshold) != ok:
            errors.append(
                f"{path.name}: bar {name}: pass={ok} disagrees with "
                f"{value} {cmp} {threshold}"
            )


def check_file(path: pathlib.Path, errors: list[str]) -> dict | None:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path.name}: unreadable: {exc}")
        return None
    if not isinstance(data, dict) or not isinstance(data.get("bench"), str):
        errors.append(f"{path.name}: missing string 'bench' key")
        return None
    bars = data.get("bars")
    if bars is None:
        return data  # informational artifact (rows/tables only): fine
    if not isinstance(bars, list) or not bars:
        errors.append(f"{path.name}: 'bars' must be a non-empty list")
        return data
    for bar in bars:
        check_bar(path, bar, errors)
    names = [b.get("name") for b in bars]
    if len(set(names)) != len(names):
        errors.append(f"{path.name}: duplicate bar names: {names}")
    conjunction = all(b.get("pass") is True for b in bars)
    if data.get("all_pass") != conjunction:
        errors.append(
            f"{path.name}: all_pass={data.get('all_pass')!r} but the bars "
            f"conjoin to {conjunction}"
        )
    return data


def check_fresh(
    committed_path: pathlib.Path,
    committed: dict,
    fresh_dir: pathlib.Path,
    errors: list[str],
) -> None:
    fresh_path = fresh_dir / committed_path.name
    if not fresh_path.is_file():
        return  # bench not part of the smoke set: nothing to compare
    fresh = check_file(fresh_path, errors)
    if fresh is None:
        return
    if fresh.get("bench") != committed.get("bench"):
        errors.append(
            f"{committed_path.name}: fresh run names bench "
            f"{fresh.get('bench')!r}, committed says "
            f"{committed.get('bench')!r}"
        )
    committed_bars = {
        b["name"]: b for b in committed.get("bars", []) if "name" in b
    }
    fresh_bars = {b["name"]: b for b in fresh.get("bars", []) if "name" in b}
    if set(committed_bars) != set(fresh_bars):
        errors.append(
            f"{committed_path.name}: bar set drifted — committed "
            f"{sorted(committed_bars)} vs fresh {sorted(fresh_bars)}; "
            f"refresh the committed artifact from a full run"
        )
        return
    # Numeric thresholds may legitimately scale with the run's population
    # (smoke runs shrink both the workload and the bar), so the threshold
    # value is only compared when both artifacts came from the same mode;
    # the comparator is load-independent and always compared.
    same_mode = committed.get("smoke") == fresh.get("smoke")
    for name, fresh_bar in fresh_bars.items():
        committed_bar = committed_bars[name]
        keys = ("bar", "cmp") if same_mode else ("cmp",)
        for key in keys:
            if committed_bar.get(key) != fresh_bar.get(key):
                errors.append(
                    f"{committed_path.name}: bar {name}: threshold drifted "
                    f"({key}: committed {committed_bar.get(key)!r} vs fresh "
                    f"{fresh_bar.get(key)!r}); refresh the committed artifact"
                )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=pathlib.Path,
        help="artifacts to check (default: BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        metavar="DIR",
        help="directory holding freshly produced BENCH_*.json to "
        "cross-validate structurally (e.g. build-ci/bench)",
    )
    args = parser.parse_args()

    files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    files = [f for f in files if not f.name.endswith(SKIP_SUFFIXES)]
    if not files:
        print("bench_check: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1

    errors: list[str] = []
    checked = 0
    for path in files:
        data = check_file(path, errors)
        if data is None:
            continue
        checked += 1
        if data.get("bars") is not None and data.get("all_pass") is not True:
            errors.append(
                f"{path.name}: committed artifact records a failing run "
                f"(all_pass={data.get('all_pass')!r})"
            )
        if args.fresh is not None:
            check_fresh(path, data, args.fresh, errors)

    for line in errors:
        print(f"bench_check: {line}", file=sys.stderr)
    if errors:
        print(
            f"bench_check: FAILED — {len(errors)} violation(s) across "
            f"{checked} artifact(s)",
            file=sys.stderr,
        )
        return 1
    suffix = f", fresh-compared against {args.fresh}" if args.fresh else ""
    print(f"bench_check OK: {checked} artifact(s) validated{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
