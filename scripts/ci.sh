#!/bin/sh
# One-invocation CI tier: the tier-1 suite (default toolchain, own binary
# dir so a developer's build/ is never clobbered), then the ASan+UBSan
# whole-tree build, then the TSan whole-tree build — each via its CMake
# preset, each running the full ctest suite.
#
#   scripts/ci.sh              # all three presets
#   scripts/ci.sh ci tsan      # a subset
#   JOBS=8 scripts/ci.sh       # override parallelism
set -eu
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}
PRESETS=${*:-"ci sanitize tsan"}

for preset in $PRESETS; do
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$JOBS"
    echo "=== [$preset] test ==="
    ctest --preset "$preset" -j "$JOBS"
done
echo "ci.sh: all presets green ($PRESETS)"
