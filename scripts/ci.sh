#!/bin/sh
# One-invocation CI tier: the tier-1 suite (default toolchain, own binary
# dir so a developer's build/ is never clobbered), then the ASan+UBSan
# whole-tree build, then the TSan whole-tree build — each via its CMake
# preset, each running the full ctest suite.
#
#   scripts/ci.sh              # all three presets
#   scripts/ci.sh ci tsan      # a subset
#   JOBS=8 scripts/ci.sh       # override parallelism
set -eu
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}
PRESETS=${*:-"ci sanitize tsan"}

for preset in $PRESETS; do
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$JOBS"
    echo "=== [$preset] test ==="
    ctest --preset "$preset" -j "$JOBS"
    if [ "$preset" = ci ]; then
        # Bench smoke: shrunken populations, bars still asserted (a bar
        # failure fails the tier-1 job).  BENCH_*.json land in
        # build-ci/bench for the workflow's artifact upload.  The
        # no-match filter skips the google-benchmark BM_ loops — the
        # structured sections each bench runs from main() are the smoke.
        echo "=== [$preset] bench smoke ==="
        (cd build-ci/bench &&
            OPENDESC_BENCH_SMOKE=1 ./bench_flowtable --benchmark_filter=__sections_only__ &&
            OPENDESC_BENCH_SMOKE=1 ./bench_swap_downtime &&
            OPENDESC_BENCH_SMOKE=1 ./bench_scrape_storm &&
            OPENDESC_BENCH_SMOKE=1 ./bench_hotpath --benchmark_filter=__sections_only__ &&
            OPENDESC_BENCH_SMOKE=1 ./bench_tracing --benchmark_filter=__sections_only__ &&
            ./bench_engine_scaling --benchmark_filter=__sections_only__)
        # Committed BENCH_*.json must be internally consistent and
        # structurally in sync with what the smoke runs just produced.
        echo "=== [$preset] bench_check ==="
        python3 scripts/bench_check.py --fresh build-ci/bench
    fi
done
echo "ci.sh: all presets green ($PRESETS)"
